"""A small explainability study: agreement, stability and concentration.

Goes beyond single-instance explanation: runs four methods over a panel of
instances and asks the questions a practitioner would before trusting an
explainer in production —

* do the methods agree with each other? (agreement matrix)
* is each method stable under its own randomness? (seed stability)
* how concentrated are the explanations? (mass on top-k edges)
* how much explanation mass flows through the known ground truth?

Run:  python examples/method_comparison_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    agreement_matrix,
    explanation_concentration,
    mass_through_nodes,
    seed_stability,
)
from repro.core import Revelio
from repro.explain import make_explainer
from repro.nn import get_model

METHODS = ("gradcam", "gnnexplainer", "flowx", "revelio")
CONFIG = {
    "gnnexplainer": {"epochs": 150},
    "flowx": {"samples": 3, "finetune_epochs": 60},
    "revelio": {"epochs": 150},
}


def main() -> None:
    model, dataset, _ = get_model("tree_cycles", "gcn", scale=0.4, seed=0)
    graph = dataset.graph
    predictions = model.predict(graph)
    panel = [int(v) for v in dataset.motif_nodes
             if predictions[v] == graph.y[v]][:5]
    print(f"instance panel: {panel}\n")

    # ------------------------------------------------------------------
    # 1. Method agreement on one instance.
    # ------------------------------------------------------------------
    node = panel[0]
    explanations = []
    for method in METHODS:
        explainer = make_explainer(method, model, seed=0, **CONFIG.get(method, {}))
        explanations.append(explainer.explain(graph, target=node))
    matrix, names = agreement_matrix(explanations, k=10)
    print("top-10 edge agreement (Jaccard):")
    header = " " * 14 + " ".join(f"{n[:9]:>9}" for n in names)
    print(header)
    for name, row in zip(names, matrix):
        print(f"{name:<14}" + " ".join(f"{v:>9.2f}" for v in row))
    print()

    # ------------------------------------------------------------------
    # 2. Seed stability of the learning-based methods.
    # ------------------------------------------------------------------
    print("seed stability (3 seeds, same instance):")
    for method in ("gnnexplainer", "revelio"):
        report = seed_stability(
            lambda seed: make_explainer(method, model, seed=seed,
                                        **CONFIG.get(method, {})),
            graph, target=node, num_seeds=3)
        print(f"  {method:<14} {report}")
    print()

    # ------------------------------------------------------------------
    # 3. Concentration and ground-truth mass across the panel.
    # ------------------------------------------------------------------
    motif_nodes = set(dataset.motif_nodes.tolist())
    revelio = Revelio(model, epochs=150, seed=0)
    concentrations, masses = [], []
    for v in panel:
        e = revelio.explain(graph, target=v)
        concentrations.append(explanation_concentration(e, k=10))
        masses.append(mass_through_nodes(e, motif_nodes))
    print("revelio across the panel:")
    print(f"  mean top-10 concentration: {np.mean(concentrations):.2f}")
    print(f"  mean flow mass through motif nodes: {np.mean(masses):.2f}")


if __name__ == "__main__":
    main()
