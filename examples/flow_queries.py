"""Working with message flows directly: enumeration, wildcard queries and
method comparison.

Shows the lower-level flow API the explainers are built on — the paper's
§III notation (``F_{i*j}``, ``F_{?{2}ij*}``) as executable queries — and
compares how the three flow-based methods (GNN-LRP, FlowX, Revelio) score
the same flows, mirroring the paper's Table VI analysis.

Run:  python examples/flow_queries.py
"""

from __future__ import annotations

import numpy as np

from repro import Revelio, count_flows, enumerate_flows, match_flows
from repro.explain import FlowX, GNNLRP
from repro.nn import get_model
from repro.viz import format_flow_comparison


def main() -> None:
    model, dataset, _ = get_model("ba_shapes", "gcn", scale=0.3, seed=0)
    graph = dataset.graph

    predictions = model.predict(graph)
    node = next(int(v) for v in dataset.motif_nodes
                if predictions[v] == graph.y[v])

    # ------------------------------------------------------------------
    # 1. Enumerate the flows behind this prediction.
    # ------------------------------------------------------------------
    explainer = Revelio(model, epochs=200, seed=0)
    context = explainer.node_context(graph, node)
    flows = enumerate_flows(context.subgraph, model.num_layers,
                            target=context.local_target)
    print(f"node {node}: {flows.num_flows} message flows reach it through a "
          f"{model.num_layers}-layer GNN")
    print(f"(oracle count via adjacency powers: "
          f"{count_flows(context.subgraph, model.num_layers, target=context.local_target)})")

    # ------------------------------------------------------------------
    # 2. Wildcard queries in the paper's notation.
    # ------------------------------------------------------------------
    local_target = context.local_target
    self_loop_flows = match_flows(flows, f"{local_target} * {local_target}")
    print(f"flows that start at the target itself (F_{{t*t}}): {self_loop_flows.size}")

    in_neighbors = sorted(set(
        int(context.subgraph.src[e]) for e in range(context.subgraph.num_edges)
        if context.subgraph.dst[e] == local_target
    ))
    if in_neighbors:
        v = in_neighbors[0]
        last_step = match_flows(flows, f"?{{{model.num_layers - 1}}} {v} {local_target}")
        print(f"flows taking their final step on edge {v}->{local_target} "
              f"(F_{{?{{{model.num_layers - 1}}}vt}}): {last_step.size}")

    # ------------------------------------------------------------------
    # 3. Compare the three flow-based methods on the same instance.
    # ------------------------------------------------------------------
    explanations = []
    for explainer in (GNNLRP(model),
                      FlowX(model, samples=4, finetune_epochs=60, seed=0),
                      Revelio(model, epochs=200, seed=0)):
        explanations.append(explainer.explain(graph, target=node))
    print()
    print(format_flow_comparison(explanations, k=10))

    # Agreement between the rankings (paper: scales differ wildly — LRP's
    # Gradient×Input values, FlowX's tiny Shapley values, Revelio's tanh —
    # but the top flows should overlap).
    tops = [set(tuple(seq) for seq, _ in e.top_flows(10)) for e in explanations]
    names = [e.method for e in explanations]
    print()
    for i in range(len(tops)):
        for j in range(i + 1, len(tops)):
            overlap = len(tops[i] & tops[j])
            print(f"top-10 overlap {names[i]} vs {names[j]}: {overlap}/10")


if __name__ == "__main__":
    main()
