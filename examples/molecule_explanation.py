"""Graph classification: why did the GNN call this molecule mutagenic?

The paper motivates flow explanations with domains like drug discovery,
where *reasoning about the candidates* matters as much as the prediction.
This example trains a GIN on the MUTAG surrogate (molecules labelled by
the presence of a nitro-like group), explains a positive prediction with
both Revelio and GNNExplainer, and checks whether the explanations
recover the planted functional group — including comparing flow-level vs
edge-level views of the same prediction.

Run:  python examples/molecule_explanation.py
"""

from __future__ import annotations

import numpy as np

from repro import Revelio
from repro.explain import GNNExplainer
from repro.nn import get_model
from repro.viz import explanation_summary, format_top_flows, render_explanation

ATOMS = ("C", "N", "O", "halogen", "S", "P", "misc")


def describe_molecule(graph) -> str:
    types = graph.x.argmax(axis=1)
    counts = {ATOMS[t]: int((types == t).sum()) for t in set(types.tolist())}
    formula = " ".join(f"{a}{n}" for a, n in sorted(counts.items()))
    return f"{graph.num_nodes} atoms ({formula}), {graph.num_edges // 2} bonds"


def main() -> None:
    model, dataset, trained = get_model("mutag", "gin", scale=0.5, seed=0)
    if trained is not None:
        print(f"trained target model: {trained}")

    # A mutagenic molecule the model classifies correctly.
    molecule = next(g for g in dataset.graphs
                    if int(g.y) == 1 and model.predict(g)[0] == 1)
    proba = model.predict_proba(molecule)[0]
    print(f"molecule: {describe_molecule(molecule)}")
    print(f"model prediction: mutagenic with p={proba[1]:.3f}")
    print(f"planted nitro group edges: {sorted(molecule.motif_edges)}")
    print()

    # Flow-level explanation.
    revelio = Revelio(model, epochs=300, lr=1e-2, alpha=0.02, seed=0)
    flow_explanation = revelio.explain(molecule)
    print(format_top_flows(flow_explanation, k=8,
                           title="Revelio: top-8 message flows"))
    print()

    # Edge-level baseline for comparison.
    gnnexplainer = GNNExplainer(model, epochs=300, seed=0)
    edge_explanation = gnnexplainer.explain(molecule)

    for exp in (flow_explanation, edge_explanation):
        summary = explanation_summary(molecule, exp, k=8)
        print(f"{exp.method:>13}: {summary['top_in_motif']}/{summary['motif_size']} "
              f"nitro-group edges in its top-8")
    print()
    print(render_explanation(molecule, flow_explanation, k=8))

    # Flow view adds information the edge view cannot express: which
    # multi-hop paths carry the nitro signal to the readout.
    nitro_atoms = {u for u, v in molecule.motif_edges} | {v for _, v in molecule.motif_edges}
    through_nitro = [
        (seq, score) for seq, score in flow_explanation.top_flows(20)
        if any(v in nitro_atoms for v in seq)
    ]
    print(f"\n{len(through_nitro)} of the top-20 flows pass through the nitro group.")


if __name__ == "__main__":
    main()
