"""Quickstart: explain one GNN prediction with Revelio in ~30 lines.

Trains (or loads from cache) a 3-layer GCN on the BA-Shapes synthetic
benchmark, explains one motif node's prediction at message-flow
granularity, and prints the top flows and the transferred edge importance.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Revelio
from repro.nn import get_model
from repro.viz import format_top_flows, render_explanation


def main() -> None:
    # 1. A pretrained target model (trained on first call, cached after).
    model, dataset, trained = get_model("ba_shapes", "gcn", scale=0.3, seed=0)
    if trained is not None:
        print(f"trained target model: {trained}")
    graph = dataset.graph

    # 2. Pick a motif node the model classifies correctly.
    predictions = model.predict(graph)
    node = next(int(v) for v in dataset.motif_nodes
                if predictions[v] == graph.y[v])
    print(f"explaining node {node} "
          f"(label={graph.y[node]}, predicted={predictions[node]})")

    # 3. Explain it: Revelio learns one mask per message flow.
    explainer = Revelio(model, epochs=300, lr=1e-2, alpha=0.05, seed=0)
    explanation = explainer.explain(graph, target=node)

    # 4. The result, at both granularities.
    print()
    print(format_top_flows(explanation, k=10,
                           title=f"top-10 message flows into node {node}:"))
    print()
    print(render_explanation(graph, explanation, k=8))


if __name__ == "__main__":
    main()
