"""Explaining link predictions — the recommender-system use case.

The paper motivates flow explanations with "understanding the
decision-making processes and user behaviors in a recommender knowledge
graph" (§I). This example builds that scenario end to end on a synthetic
co-interaction graph: train a link predictor, pick a strongly-predicted
link, and ask Revelio *which message flows make the model believe these
two nodes should connect* — and which flows, if removed, would break the
recommendation.

Run:  python examples/link_prediction_explained.py
"""

from __future__ import annotations

import numpy as np

from repro.core import LinkRevelio
from repro.graph import Graph, sbm_edges
from repro.nn import LinkPredictor, train_link_predictor
from repro.viz import format_top_flows


def build_interaction_graph(seed: int = 0) -> Graph:
    """Two user communities with dense within-community interaction."""
    rng = np.random.default_rng(seed)
    edges = sbm_edges([25, 25], 0.3, 0.02, rng=rng)
    communities = np.array([0] * 25 + [1] * 25)
    x = rng.normal(size=(50, 8)) + communities[:, None] * 1.5
    return Graph(edge_index=edges, x=x, y=communities)


def main() -> None:
    graph = build_interaction_graph()
    model = LinkPredictor("gcn", graph.num_features, 16, rng=0)
    result = train_link_predictor(model, graph, epochs=100, rng=0)
    print(f"link predictor trained: {result}\n")

    # Find the strongest predicted *missing* link (the recommendation).
    from repro.nn import sample_negative_edges

    candidates = sample_negative_edges(graph, 200, rng=1)
    probs = model.predict_proba(graph, candidates)
    u, v = (int(x) for x in candidates[int(np.argmax(probs))])
    same = "same" if graph.y[u] == graph.y[v] else "different"
    print(f"strongest recommendation: {u} -> {v} "
          f"(p={probs.max():.3f}, {same} community)\n")

    explainer = LinkRevelio(model, epochs=250, lr=1e-2, alpha=0.05, seed=0)

    factual = explainer.explain(graph, u, v)
    print(format_top_flows(
        factual, k=8,
        title=f"why the model recommends {u} -> {v} (factual flows):"))
    print()

    counterfactual = explainer.explain(graph, u, v, mode="counterfactual")
    print(format_top_flows(
        counterfactual, k=8,
        title="flows whose removal would break the recommendation:"))

    # How much of the explanation passes through the shared community?
    from repro.analysis import mass_through_nodes

    community = {int(n) for n in np.flatnonzero(graph.y == graph.y[u])}
    mass = mass_through_nodes(factual, community)
    print(f"\n{mass:.0%} of the factual flow mass stays inside node {u}'s community.")


if __name__ == "__main__":
    main()
