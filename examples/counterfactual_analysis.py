"""Counterfactual explanation: which message flows, if removed, flip the
prediction?

The paper's traffic-network framing: factual explanations answer "which
flows are sufficient to trigger the jam?", counterfactual explanations
answer "which flows, if removed, would prevent it?". This example runs
both modes of Revelio on the same Tree-Cycles node, verifies the learned
counterfactual mask actually destroys the prediction (Eq. 2 doing its
job), and sweeps Fidelity± across sparsity levels.

Run:  python examples/counterfactual_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import Revelio
from repro.eval import Instance, class_probability, fidelity_minus, fidelity_plus
from repro.eval.sparsity import unexplanatory_subgraph
from repro.nn import get_model
from repro.viz import format_top_flows


def main() -> None:
    model, dataset, trained = get_model("tree_cycles", "gcn", scale=0.4, seed=0)
    if trained is not None:
        print(f"trained target model: {trained}")
    graph = dataset.graph

    predictions = model.predict(graph)
    node = next(int(v) for v in dataset.motif_nodes
                if predictions[v] == graph.y[v] == 1)
    p_original = class_probability(model, graph, 1, target=node)
    print(f"node {node} is on a cycle motif; P(cycle) = {p_original:.3f}\n")

    explainer = Revelio(model, epochs=300, lr=1e-2, alpha=0.05, seed=0)

    factual = explainer.explain(graph, target=node, mode="factual")
    counterfactual = explainer.explain(graph, target=node, mode="counterfactual")

    print(format_top_flows(factual, k=6,
                           title="factual: flows SUFFICIENT for the prediction"))
    print()
    print(format_top_flows(counterfactual, k=6,
                           title="counterfactual: flows NECESSARY for the prediction"))
    print()

    # Demonstrate the counterfactual semantics end to end: remove the
    # counterfactual explanation's top edges and watch P(cycle) drop.
    instance = [Instance(graph, node)]
    print(f"{'sparsity':>9} {'Fidelity-':>10} {'Fidelity+':>10}")
    for sparsity in (0.5, 0.6, 0.7, 0.8, 0.9):
        fm = fidelity_minus(model, instance, [factual], sparsity)
        fp = fidelity_plus(model, instance, [counterfactual], sparsity)
        print(f"{sparsity:>9.1f} {fm:>+10.3f} {fp:>+10.3f}")

    perturbed = unexplanatory_subgraph(graph, counterfactual.edge_scores, 0.7,
                                       candidate_edges=counterfactual.context_edge_positions)
    p_after = class_probability(model, perturbed, 1, target=node)
    print(f"\nafter removing the top counterfactual edges: "
          f"P(cycle) {p_original:.3f} -> {p_after:.3f}")


if __name__ == "__main__":
    main()
