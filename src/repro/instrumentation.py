"""Deprecated shim: performance counters moved to :mod:`repro.obs`.

The counters now live in :mod:`repro.obs.counters` as the counter half of
the observability subsystem (the tracer in :mod:`repro.obs.trace` is the
other half). Import from :mod:`repro.obs` in new code; this module keeps
``from repro.instrumentation import PERF`` working but warns on import —
no internal code imports it anymore, so the warning reaches exactly the
external callers who need to migrate.
"""

from __future__ import annotations

import warnings

from .obs.counters import PERF, PerfCounters, perf_snapshot, reset_perf

__all__ = ["PerfCounters", "PERF", "perf_snapshot", "reset_perf"]

warnings.warn(  # repro: sunset[2.0]
    "repro.instrumentation is deprecated; import PERF/PerfCounters/"
    "perf_snapshot/reset_perf from repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)
