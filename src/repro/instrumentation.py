"""Backward-compat shim: performance counters moved to :mod:`repro.obs`.

The counters now live in :mod:`repro.obs.counters` as the counter half of
the observability subsystem (the tracer in :mod:`repro.obs.trace` is the
other half). Import from :mod:`repro.obs` in new code; this module keeps
``from repro.instrumentation import PERF`` working.
"""

from __future__ import annotations

from .obs.counters import PERF, PerfCounters, perf_snapshot, reset_perf

__all__ = ["PerfCounters", "PERF", "perf_snapshot", "reset_perf"]
