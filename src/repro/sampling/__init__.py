"""Receptive-field sampled explanation (`ISSUE 9` tentpole).

``repro.sampling`` decouples explanation cost from graph size: a
:class:`ReceptiveField` extracts the L-hop in-subgraph of one or more
targets as a compact relabeled :class:`~repro.graph.sampled.SampledSubgraph`
(exact for L-layer GNNs by the locality argument in DESIGN.md §13), and a
:class:`SampledExplainRuntime` runs any registered explainer on that
subgraph and lifts the scores back to global ids — numerically identical
to the full-graph path, at receptive-field cost.
"""

from .receptive_field import ReceptiveField
from .runtime import SampledExplainRuntime, lift_explanation

__all__ = ["ReceptiveField", "SampledExplainRuntime", "lift_explanation"]
