"""Route any registered explainer through a sampled receptive field.

:class:`SampledExplainRuntime` makes graph size and explanation cost
independent: instead of handing an explainer the full graph (whose
``predict_proba`` forward, feature hashing and neighborhood scans are all
O(N + E)), it extracts the target's L-hop receptive field once, runs the
*unchanged* explainer on the compact relabeled subgraph, and lifts every
score space of the resulting :class:`~repro.explain.base.Explanation`
back to global ids. By the locality argument (DESIGN.md §13) the result
is numerically identical to the full-graph path — a property the test
suite asserts per explainer and the ``sampled_explain`` benchmark gates.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExplainerError
from ..explain.base import Explanation
from ..explain.target import ExplainTarget
from ..graph import Graph, SampledSubgraph
from .receptive_field import ReceptiveField

__all__ = ["SampledExplainRuntime", "lift_explanation"]


def lift_explanation(field: SampledSubgraph, explanation: Explanation) -> Explanation:
    """Map a subgraph-local :class:`Explanation` back to global ids.

    Rewrites, in place, every score space that refers to the sampled
    graph's id spaces: data-edge scores scatter through the edge map,
    context node ids / edge positions compose with the sample's maps
    (both relabelings are monotone, so composition preserves order), and
    the target returns to its global id. Flow indices need no rewrite —
    their node sequences are context-local and translate through the
    lifted ``context_node_ids`` exactly as in the dense path.
    """
    explanation.edge_scores = field.lift_edge_scores(explanation.edge_scores)
    if explanation.target is not None:
        explanation.target = int(field.to_global_nodes(explanation.target))
    if explanation.context_node_ids is not None:
        explanation.context_node_ids = field.to_global_nodes(
            explanation.context_node_ids)
    if explanation.context_edge_positions is not None:
        explanation.context_edge_positions = field.edge_positions[
            np.asarray(explanation.context_edge_positions, dtype=np.int64)]
    link = explanation.meta.get("link")
    if link is not None:
        u, v = link
        explanation.meta["link"] = (int(field.to_global_nodes(u)),
                                    int(field.to_global_nodes(v)))
    explanation.meta["sampled"] = {
        "num_hops": field.num_hops,
        "num_nodes": field.num_nodes,
        "num_edges": field.num_edges,
        "targets": [int(t) for t in field.targets],
    }
    return explanation


class SampledExplainRuntime:
    """Sample-then-explain driver around one explainer instance.

    Parameters
    ----------
    explainer:
        Any node-task :class:`~repro.explain.base.Explainer` (or a
        :class:`~repro.core.link.LinkRevelio` for link targets). The
        explainer is used as-is — it sees an ordinary ``Graph`` and never
        learns it is looking at a sample.
    num_hops:
        Extraction depth; defaults to the wrapped model's ``num_layers``,
        the exactness horizon.
    """

    def __init__(self, explainer, num_hops: int | None = None):
        self.explainer = explainer
        self.receptive_field = ReceptiveField(
            int(explainer.model.num_layers if num_hops is None else num_hops))

    def explain(self, graph: Graph, target: ExplainTarget | int | None = None,
                mode: str = "factual") -> Explanation:
        """Explain ``target`` through its receptive field.

        Accepts the same target shapes as the wrapped explainer; graph
        kinds are rejected — a whole-graph explanation has no receptive
        field smaller than the instance itself.
        """
        target = ExplainTarget.coerce(target, task="node",
                                      where="SampledExplainRuntime.explain")
        if target is None or target.kind == "graph":
            raise ExplainerError(
                "sampled explanation requires a node or link target; "
                "whole-graph instances are already their own context")
        field = self.receptive_field.extract(graph, list(target.ids))
        if target.kind == "link":
            lu, lv = (int(i) for i in field.local_targets)
            local = self.explainer.explain(field.graph,
                                           ExplainTarget.link(lu, lv), mode=mode)
        else:
            local_node = int(field.local_index(target.node_id))
            local = self.explainer.explain(field.graph,
                                           ExplainTarget.node(local_node), mode=mode)
        return lift_explanation(field, local)

    def __repr__(self) -> str:
        return (f"SampledExplainRuntime(explainer={self.explainer.name}, "
                f"num_hops={self.receptive_field.num_hops})")
