"""Batched receptive-field extraction with exact-forward guarantees.

:class:`ReceptiveField` wraps :func:`~repro.graph.sampled.extract_receptive_field`
with the one correction that makes a *forward pass on the sampled
subgraph* agree with the full graph at every target row: GCN's symmetric
renormalization reads node degrees, and nodes on the boundary of the
extracted cone (distance exactly L from every target) have lost in-edges.
Their degrees do not matter for the targets' predictions — a boundary
node's *output* never reaches a target within L layers, only its layer-0
features do — but presetting the sampled graph's
:class:`~repro.sparse.cache.GraphSparseCache` with the full graph's
``deg_inv_sqrt`` sliced to the kept nodes makes every kept row's
coefficients identical to the dense path, so the parity claim needs no
per-architecture reasoning: any conv that reads the cache's degree
vectors sees exactly the numbers the full graph would produce.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import GraphError
from ..explain.target import ExplainTarget
from ..graph import Graph, SampledSubgraph, extract_receptive_field
from ..obs import span
from ..obs.names import SPAN_SAMPLED_EXTRACT
from ..sparse import sparse_cache

__all__ = ["ReceptiveField"]


class ReceptiveField:
    """Extractor of L-hop in-subgraphs whose local forward is exact.

    Parameters
    ----------
    num_hops:
        Extraction depth; use the model's ``num_layers`` — an L-layer
        network's prediction at a node is a function of its L-hop
        incoming neighborhood only.
    """

    def __init__(self, num_hops: int):
        if num_hops < 1:
            raise GraphError(f"num_hops must be >= 1, got {num_hops}")
        self.num_hops = int(num_hops)

    def extract(self, graph: Graph,
                targets: Sequence[ExplainTarget | int]) -> SampledSubgraph:
        """Extract the union receptive field of ``targets``.

        ``targets`` mixes node ids and :class:`ExplainTarget` values
        freely; link targets contribute both endpoints. Returns a
        :class:`~repro.graph.sampled.SampledSubgraph` whose ``.graph``
        carries a sparse cache preloaded with the full graph's degree
        normalization, so a model forward over it reproduces the
        full-graph output at every target row to machine precision.
        """
        nodes: list[int] = []
        for t in targets:
            if isinstance(t, ExplainTarget):
                if t.kind == "graph":
                    raise GraphError(f"{t} has no receptive field to extract")
                nodes.extend(int(i) for i in t.ids)
            else:
                nodes.append(int(t))
        with span(SPAN_SAMPLED_EXTRACT, num_hops=self.num_hops) as sp:
            field = extract_receptive_field(graph, nodes, self.num_hops)
            subgraph = field.graph
            # dst_plan.counts is the augmented in-degree, so the slice of
            # the full-graph vector is exactly D̂^{-1/2} of each kept node
            # as the dense path sees it.
            full = sparse_cache(graph)
            local = sparse_cache(subgraph)
            local._deg_inv_sqrt = np.ascontiguousarray(
                full.deg_inv_sqrt[field.node_ids])
            if sp is not None:
                sp.set(num_targets=len(field.targets),
                       num_nodes=field.num_nodes,
                       num_edges=field.num_edges)
        return field

    def __repr__(self) -> str:
        return f"ReceptiveField(num_hops={self.num_hops})"
