"""A reverse-mode automatic differentiation engine on numpy.

This module provides the :class:`Tensor` class used throughout the library.
It is a deliberately small but complete tape-based autograd implementation:
each differentiable operation records its parents and a backward closure;
:meth:`Tensor.backward` topologically sorts the tape and accumulates
gradients.

The op set covers everything message-passing GNNs and mask-learning
explainers need: dense linear algebra, elementwise nonlinearities,
reductions, row gather/scatter (the message-passing primitives),
concatenation and basic indexing. Gradients are verified against central
finite differences in ``tests/autograd``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import AutogradError, ShapeError
from ..sparse import SegmentPlan, kernel, plan_for

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled", "concat", "stack", "where"]

_GRAD_ENABLED = [True]

# Backward closures receive (upstream_grad, grads_dict) and route
# contributions to parents via Tensor._receive.
BackwardFn = Callable[[np.ndarray, dict], None]


class no_grad:
    """Context manager that disables gradient recording.

    Inside the context, new operations do not build the tape. Mirrors
    ``torch.no_grad`` semantics for the subset we need (inference, metric
    computation, perturbation-based explainers).
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_ENABLED[0] = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED[0]


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, array or scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64), requires_grad=requires_grad)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`. Ignored inside a :class:`no_grad` block.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_retain", "_csr", "name")

    # Make numpy defer binary ops (np.ndarray * Tensor) to Tensor.
    __array_priority__ = 100.0

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: BackwardFn | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._retain = False
        self._csr = None
        self.name = name

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar payload of a single-element tensor."""
        if self.data.size != 1:
            raise AutogradError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def annotate_sparse(self, matrix, matrix_t) -> "Tensor":
        """Attach a CSR twin of :attr:`data` for constant-operand matmuls.

        ``matrix`` must equal :attr:`data` and ``matrix_t`` its transpose
        (see :func:`repro.sparse.feature_csr`). While this tensor does not
        require grad, ``self @ other`` then runs ``matrix @ other`` forward
        and ``matrix_t @ g`` for the weight adjoint — turning the
        first-layer GEMM over bag-of-words features into a sparse matvec
        stack. Returns ``self``.
        """
        self._csr = (matrix, matrix_t)
        return self

    def retain_grad(self) -> "Tensor":
        """Request that :attr:`grad` be populated even for interior nodes.

        Needed by gradient-based explainers (e.g. GradCAM) that inspect the
        gradient of intermediate node embeddings. Returns ``self``.
        """
        self._retain = True
        return self

    # ------------------------------------------------------------------
    # tape construction & backward
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], backward: BackwardFn | None) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _unary_op(self, data: np.ndarray, backward: BackwardFn) -> "Tensor":
        return Tensor._make(data, (self,), backward)

    def _binary_op(self, other: "Tensor", data: np.ndarray, backward: BackwardFn) -> "Tensor":
        return Tensor._make(data, (self, other), backward)

    def _receive(self, grad: np.ndarray, grads: dict) -> None:
        """Accumulate an upstream gradient contribution during backward."""
        if not self.requires_grad:
            return
        key = id(self)
        if key in grads:
            # Out-of-place add: entries may alias upstream gradients (or
            # views of them), so never accumulate with ``+=``.
            grads[key] = grads[key] + grad
        else:
            grads[key] = np.asarray(grad, dtype=np.float64)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Upstream gradient. Defaults to 1 for scalar tensors; required
            otherwise.
        """
        if not self.requires_grad:
            raise AutogradError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise AutogradError(
                    f"backward() without a gradient requires a scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.broadcast_to(np.asarray(grad, dtype=np.float64), self.data.shape)

        # Topological order via iterative DFS: deep tapes (hundreds of mask
        # learning epochs over multi-layer GNNs) would overflow recursion.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): np.array(grad, copy=True)}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None or node._retain:
                node._accumulate(node_grad)
            if node._backward is not None:
                node._backward(node_grad, grads)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(g, grads):
            self._receive(_unbroadcast(g, self.shape), grads)
            other._receive(_unbroadcast(g, other.shape), grads)

        return self._binary_op(other, self.data + other.data, backward)

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(g, grads):
            self._receive(_unbroadcast(g, self.shape), grads)
            other._receive(_unbroadcast(-g, other.shape), grads)

        return self._binary_op(other, self.data - other.data, backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(g, grads):
            self._receive(_unbroadcast(g * other.data, self.shape), grads)
            other._receive(_unbroadcast(g * self.data, other.shape), grads)

        return self._binary_op(other, self.data * other.data, backward)

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(g, grads):
            self._receive(_unbroadcast(g / other.data, self.shape), grads)
            other._receive(_unbroadcast(-g * self.data / (other.data**2), other.shape), grads)

        return self._binary_op(other, self.data / other.data, backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self._unary_op(-self.data, lambda g, grads: self._receive(-g, grads))

    def __pow__(self, exponent) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise AutogradError("tensor exponents are unsupported; compose exp/log instead")
        exponent = float(exponent)

        def backward(g, grads):
            self._receive(g * exponent * self.data ** (exponent - 1), grads)

        return self._unary_op(self.data**exponent, backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        if self.ndim != 2 or other.ndim != 2:
            raise ShapeError(f"matmul expects 2-D tensors, got {self.shape} @ {other.shape}")

        if self._csr is not None and not self.requires_grad:
            # Sparse-feature fast path (annotate_sparse): the left operand
            # is a constant sparse matrix, so forward and the weight
            # adjoint are CSR matvec stacks over its nonzeros.
            matrix, matrix_t = self._csr

            def sparse_backward(g, grads):
                if other.requires_grad:
                    other._receive(matrix_t @ g, grads)

            return self._binary_op(other, matrix @ other.data, sparse_backward)

        def backward(g, grads):
            # Guard each GEMM on the parent actually needing it: the first
            # GNN layer multiplies a constant feature matrix (N, F) with
            # F ≫ hidden, and the unused dX = g @ W.T would be the single
            # most expensive allocation of the whole backward pass.
            if self.requires_grad:
                self._receive(g @ other.data.T, grads)
            if other.requires_grad:
                other._receive(self.data.T @ g, grads)

        return self._binary_op(other, self.data @ other.data, backward)

    # Comparisons yield plain numpy boolean arrays (non-differentiable).
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        return self._unary_op(data, lambda g, grads: self._receive(g * data, grads))

    def log(self) -> "Tensor":
        return self._unary_op(np.log(self.data), lambda g, grads: self._receive(g / self.data, grads))

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        return self._unary_op(data, lambda g, grads: self._receive(g * 0.5 / data, grads))

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        return self._unary_op(data, lambda g, grads: self._receive(g * (1.0 - data**2), grads))

    def sigmoid(self) -> "Tensor":
        clipped = np.clip(self.data, -500, 500)
        data = np.where(
            clipped >= 0,
            1.0 / (1.0 + np.exp(-clipped)),
            np.exp(clipped) / (1.0 + np.exp(clipped)),
        )
        return self._unary_op(data, lambda g, grads: self._receive(g * data * (1.0 - data), grads))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return self._unary_op(self.data * mask, lambda g, grads: self._receive(g * mask, grads))

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        factor = np.where(self.data > 0, 1.0, negative_slope)
        return self._unary_op(self.data * factor, lambda g, grads: self._receive(g * factor, grads))

    def softplus(self) -> "Tensor":
        data = np.logaddexp(0.0, self.data)
        sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))
        return self._unary_op(data, lambda g, grads: self._receive(g * sig, grads))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return self._unary_op(np.abs(self.data), lambda g, grads: self._receive(g * sign, grads))

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)
        return self._unary_op(np.clip(self.data, lo, hi), lambda g, grads: self._receive(g * mask, grads))

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g, grads):
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._receive(np.broadcast_to(grad, self.shape), grads)

        return self._unary_op(data, backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g, grads):
            expanded = data if (keepdims or axis is None) else np.expand_dims(data, axis=axis)
            mask = self.data == expanded
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            grad = g if (keepdims or axis is None) else np.expand_dims(g, axis=axis)
            self._receive(mask * grad / counts, grads)

        return self._unary_op(data, backward)

    # ------------------------------------------------------------------
    # shape manipulation & indexing
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        return self._unary_op(
            self.data.reshape(shape),
            lambda g, grads: self._receive(g.reshape(original), grads),
        )

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        inverse = None if axes is None else tuple(np.argsort(axes))
        return self._unary_op(
            self.data.transpose(axes),
            lambda g, grads: self._receive(g.transpose(inverse), grads),
        )

    def __getitem__(self, index) -> "Tensor":
        def backward(g, grads):
            full = np.zeros_like(self.data)
            # Generic fancy indexing (slices, boolean masks, multi-axis
            # tuples) has no SegmentPlan form; row gathers that do should
            # use gather_rows instead.
            np.add.at(full, index, g)  # repro: noqa[RPR050]
            self._receive(full, grads)

        return self._unary_op(self.data[index], backward)

    # ------------------------------------------------------------------
    # message-passing primitives (plan-backed: forward and adjoint both
    # dispatch through the repro.sparse kernel registry)
    # ------------------------------------------------------------------
    def gather_rows(self, index: np.ndarray,
                    plan: SegmentPlan | None = None) -> "Tensor":
        """Select rows ``self[index]`` along axis 0 (``torch.index_select``).

        The backward pass scatter-adds gradients back to the source rows —
        the adjoint needed for per-edge message construction (``x[src]``).
        That scatter dispatches through the active ``repro.sparse`` kernel
        backend; pass ``plan`` (a :class:`SegmentPlan` over
        ``(index, self.shape[0])``, e.g. ``sparse_cache(graph).src_plan``)
        to reuse a per-graph compiled structure, or omit it and the
        identity-keyed ``plan_for`` memo compiles one per index array.
        """
        index = np.asarray(index, dtype=np.int64)
        num_rows = self.shape[0]
        if plan is not None:
            plan.check_shape(index.shape[0], num_rows)

        def backward(g, grads):
            self._receive(_scatter_rows(g, index, num_rows, plan), grads)

        return self._unary_op(self.data[index], backward)

    def scatter_add(self, index: np.ndarray, num_rows: int,
                    plan: SegmentPlan | None = None) -> "Tensor":
        """Sum rows of ``self`` into ``num_rows`` output slots by ``index``.

        ``out[index[i]] += self[i]`` — the aggregation step of message
        passing; its adjoint is a row gather. The forward scatter runs as
        a compiled CSR segment sum on the active ``repro.sparse`` backend;
        pass ``plan`` (e.g. ``sparse_cache(graph).dst_plan``) to skip even
        the memoized plan lookup.
        """
        index = np.asarray(index, dtype=np.int64)
        if index.shape[0] != self.shape[0]:
            raise ShapeError(
                f"scatter_add index length {index.shape[0]} != leading dim {self.shape[0]}"
            )
        if plan is not None:
            plan.check_shape(index.shape[0], int(num_rows))
        data = _scatter_rows(self.data, index, int(num_rows), plan)
        return self._unary_op(data, lambda g, grads: self._receive(g[index], grads))


def _scatter_rows(values: np.ndarray, index: np.ndarray, num_rows: int,
                  plan: SegmentPlan | None) -> np.ndarray:
    """Segment-sum ``values`` rows by ``index`` via the kernel registry.

    Kernels operate on 2-D ``(A, W)`` payloads, so trailing axes are
    flattened around the dispatch and restored after. ``plan`` falls back
    to the identity-keyed ``plan_for`` memo, so repeated calls with the
    same index array (every epoch of a training loop) compile it once.
    """
    if plan is None:
        plan = plan_for(index, num_rows)
    tail = values.shape[1:]
    width = int(np.prod(tail)) if tail else 1
    flat = values.reshape(values.shape[0], width)
    out = kernel("scatter_add")(plan, flat)
    return np.ascontiguousarray(out).reshape((num_rows,) + tail)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0, *sizes])

    def backward(grad, grads):
        slicer: list = [slice(None)] * grad.ndim
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer[axis] = slice(int(start), int(stop))
            tensor._receive(grad[tuple(slicer)], grads)

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad, grads):
        for i, tensor in enumerate(tensors):
            tensor._receive(np.take(grad, i, axis=axis), grads)

    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Differentiable selection ``condition ? a : b`` (condition is data)."""
    a = as_tensor(a)
    b = as_tensor(b)
    condition = np.asarray(condition, dtype=bool)

    def backward(grad, grads):
        a._receive(_unbroadcast(grad * condition, a.shape), grads)
        b._receive(_unbroadcast(grad * (~condition), b.shape), grads)

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)
