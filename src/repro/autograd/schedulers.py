"""Learning-rate schedulers.

Small, composable schedules for the long constant-feature training runs
(the synthetic targets in :mod:`repro.nn.zoo` benefit from decay once the
small-margin signal is found) and for mask-learning explainers.
"""

from __future__ import annotations

import math

from ..errors import AutogradError
from .optim import Optimizer

__all__ = ["Scheduler", "StepLR", "CosineAnnealingLR", "LinearWarmup"]


class Scheduler:
    """Base class: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.compute_lr(self.epoch)
        self.optimizer.lr = lr
        return lr

    def compute_lr(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise AutogradError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(Scheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise AutogradError("total_epochs must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def compute_lr(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class LinearWarmup(Scheduler):
    """Linear ramp from 0 to the base rate over ``warmup_epochs``, then flat.

    Optionally wraps another scheduler applied after warm-up finishes.
    """

    def __init__(self, optimizer: Optimizer, warmup_epochs: int,
                 after: Scheduler | None = None):
        super().__init__(optimizer)
        if warmup_epochs <= 0:
            raise AutogradError("warmup_epochs must be positive")
        self.warmup_epochs = warmup_epochs
        self.after = after

    def compute_lr(self, epoch: int) -> float:
        if epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        if self.after is not None:
            return self.after.compute_lr(epoch - self.warmup_epochs)
        return self.base_lr
