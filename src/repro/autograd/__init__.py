"""Reverse-mode automatic differentiation on numpy.

This subpackage replaces the PyTorch dependency of the original Revelio
implementation: a tape-based :class:`Tensor`, dense layers, optimizers and
functional ops sufficient for message-passing GNNs and mask-learning
explainers. See ``DESIGN.md`` §2 for the substitution rationale.
"""

from .functional import (
    binary_cross_entropy,
    cross_entropy,
    dropout,
    log_softmax,
    nll_loss,
    one_hot,
    segment_softmax,
    softmax,
    spmm,
)
from .grad_check import check_gradients, numerical_grad
from .layers import MLP, LayerNorm, Linear, ReLU, Sequential, Sigmoid, Tanh
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer
from .schedulers import CosineAnnealingLR, LinearWarmup, Scheduler, StepLR
from .tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack, where

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "LayerNorm",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "Scheduler",
    "StepLR",
    "CosineAnnealingLR",
    "LinearWarmup",
    "softmax",
    "log_softmax",
    "nll_loss",
    "cross_entropy",
    "binary_cross_entropy",
    "segment_softmax",
    "spmm",
    "dropout",
    "one_hot",
    "numerical_grad",
    "check_gradients",
]
