"""Dense neural-network building blocks (Linear, MLP, activations).

These are the non-graph layers used inside GNN convolutions (GIN's MLP,
GAT's attention projections) and inside the parameterized explainers
(PGExplainer's edge-scoring MLP, GraphMask's gate networks).
"""

from __future__ import annotations

import numpy as np

from ..errors import AutogradError
from ..rng import ensure_rng
from .init import glorot_uniform, zeros
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "ReLU", "Tanh", "Sigmoid", "Sequential", "MLP", "LayerNorm"]


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Seed or generator for Glorot initialization.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: int | np.random.Generator | None = None):
        super().__init__()
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class ReLU(Module):
    """Elementwise rectifier."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Elementwise logistic function."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Run modules in order, feeding each output into the next."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """Multi-layer perceptron with ReLU between hidden layers.

    Parameters
    ----------
    dims:
        Layer widths including input and output, e.g. ``[16, 32, 1]``.
    rng:
        Seed or generator shared across the layers.
    final_activation:
        Optional module applied after the last linear layer.
    """

    def __init__(self, dims: list[int], rng: int | np.random.Generator | None = None,
                 final_activation: Module | None = None):
        super().__init__()
        if len(dims) < 2:
            raise AutogradError("MLP needs at least input and output dims")
        rng = ensure_rng(rng)
        layers: list[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
            if i < len(dims) - 2:
                layers.append(ReLU())
        if final_activation is not None:
            layers.append(final_activation)
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), name="gamma")
        self.beta = Parameter(np.zeros(dim), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta
