"""Functional neural-network operations built on :class:`~repro.autograd.Tensor`.

Everything here composes the primitive ops from :mod:`repro.autograd.tensor`
(so gradients come for free) except where a fused implementation is clearer
or numerically safer (softmax family, segment softmax for GAT attention).
"""

from __future__ import annotations

import numpy as np

from ..errors import AutogradError, ShapeError
from ..sparse import SegmentPlan, kernel, plan_for
from .tensor import Tensor, as_tensor

__all__ = [
    "softmax",
    "log_softmax",
    "nll_loss",
    "cross_entropy",
    "binary_cross_entropy",
    "segment_softmax",
    "spmm",
    "dropout",
    "one_hot",
]


def spmm(x: Tensor, matrix, matrix_t) -> Tensor:
    """Sparse aggregation ``matrix @ x`` on the tape.

    The fused fast path for unmasked message passing: with a cached
    ``(N, N)`` aggregation operator (e.g. ``sparse_cache(graph).adj_norm``)
    the whole gather → edge-scale → scatter chain of a conv layer collapses
    into one sparse matmul, and its adjoint into another — no per-edge
    ``(E+N, F)`` intermediate is ever materialized. Both directions
    dispatch through the active :mod:`repro.sparse` kernel backend's
    ``spmm`` op, so the numpy backend still reproduces the dense-scatter
    (``np.add.at``) reference semantics for oracle comparisons.

    Parameters
    ----------
    x:
        ``(N, F)`` dense operand.
    matrix:
        Sparse ``(M, N)`` forward operator.
    matrix_t:
        Its precompiled transpose — the backward pass is
        ``dX = matrix.T @ g`` and a cached transpose keeps the adjoint as
        cheap as the forward (``sparse_cache`` exposes ``adj_t`` /
        ``adj_norm_t`` for exactly this).
    """
    x = as_tensor(x)

    def backward(g, grads):
        x._receive(kernel("spmm")(matrix_t, g), grads)

    return x._unary_op(kernel("spmm")(matrix, x.data), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    log_sum = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_sum


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense ``(n, num_classes)`` one-hot encoding (plain numpy)."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def nll_loss(log_probs: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer ``labels`` under ``log_probs``.

    Parameters
    ----------
    log_probs:
        ``(n, C)`` log-probabilities (e.g. from :func:`log_softmax`).
    labels:
        ``(n,)`` integer class labels.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if log_probs.ndim != 2:
        raise ShapeError(f"nll_loss expects (n, C) log-probs, got {log_probs.shape}")
    picked = log_probs[np.arange(labels.shape[0]), labels]
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise AutogradError(f"unknown reduction {reduction!r}")


def cross_entropy(logits: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy on raw ``logits``."""
    return nll_loss(log_softmax(logits, axis=-1), labels, reduction=reduction)


def binary_cross_entropy(probs: Tensor, targets: np.ndarray, eps: float = 1e-12) -> Tensor:
    """Mean binary cross-entropy between probabilities and 0/1 targets."""
    probs = as_tensor(probs)
    targets = np.asarray(targets, dtype=np.float64)
    clipped = probs.clip(eps, 1.0 - eps)
    loss = -(Tensor(targets) * clipped.log() + Tensor(1.0 - targets) * (1.0 - clipped).log())
    return loss.mean()


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int,
                    plan: SegmentPlan | None = None) -> Tensor:
    """Softmax over groups of rows sharing a segment id.

    This is the attention normalization of GAT: for each destination node,
    the attention logits of its incoming edges are softmax-normalized.

    Every segment reduction inside — the stabilizing per-segment max, the
    denominator scatter-add, and both ops' adjoints — dispatches through
    the active :mod:`repro.sparse` kernel backend over one shared plan.

    Parameters
    ----------
    scores:
        ``(n,)`` or ``(n, H)`` logits (one column per attention head).
    segment_ids:
        ``(n,)`` integer segment assignment (the destination node of each
        edge).
    num_segments:
        Total number of segments (number of nodes).
    plan:
        Optional precompiled :class:`SegmentPlan` over
        ``(segment_ids, num_segments)`` — e.g. a per-graph
        ``sparse_cache(graph).dst_plan``. Defaults to the identity-keyed
        ``plan_for`` memo.
    """
    scores = as_tensor(scores)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if plan is None:
        plan = plan_for(segment_ids, num_segments)
    else:
        plan.check_shape(segment_ids.shape[0], int(num_segments))
    # Per-segment max for stability (data-level; constant w.r.t. autograd,
    # which is valid because subtracting any constant leaves softmax fixed).
    tail = scores.shape[1:]
    width = int(np.prod(tail)) if tail else 1
    flat = scores.data.reshape(scores.shape[0], width)
    seg_max = kernel("segment_max")(plan, flat).reshape((num_segments,) + tail)
    seg_max[~np.isfinite(seg_max)] = 0.0  # empty segments

    shifted = scores - Tensor(seg_max[segment_ids])
    exp = shifted.exp()
    denom = exp.scatter_add(segment_ids, num_segments, plan=plan)
    return exp / denom.gather_rows(segment_ids, plan=plan)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` and rescale."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise AutogradError("dropout probability must be < 1")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)
