"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is reproducible without touching global state.
"""

from __future__ import annotations

import numpy as np

# The full palette stays exported even where the zoo only reaches for
# glorot/zeros today: initializers are user-facing model-building API.
__all__ = ["glorot_uniform", "kaiming_uniform", "zeros",  # repro: noqa[RPR110]
           "ones", "uniform", "normal"]


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He uniform for ReLU networks: U(-a, a), a = sqrt(6 / fan_in)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Plain uniform initializer."""
    return rng.uniform(low, high, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.1) -> np.ndarray:
    """Zero-mean Gaussian initializer."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initializer (biases)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-ones initializer."""
    return np.ones(shape, dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
