"""First-order optimizers (SGD with momentum, Adam).

Both the GNN trainer and every mask-learning explainer (Revelio,
GNNExplainer, PGExplainer, GraphMask, FlowX stage 2) drive these. The paper
uses Adam with the learning rates recorded in its Section V-A.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import AutogradError
from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer tracking a list of tensors with gradients."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params = [p for p in params]
        if not self.params:
            raise AutogradError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on all tracked tensors."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one SGD update using accumulated gradients."""
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with decoupled weight decay off.

    Matches the defaults used by PyTorch: betas (0.9, 0.999), eps 1e-8.
    """

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update using accumulated gradients."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
