"""Module / Parameter abstractions mirroring the ``torch.nn`` surface.

:class:`Module` discovers parameters and sub-modules by attribute
inspection, supports ``train()``/``eval()`` modes, ``state_dict`` round
trips and recursive parameter iteration — everything the trainer and the
mask-learning explainers rely on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ModelError
from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable model state."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)

    def __repr__(self) -> str:
        label = f", name={self.name!r}" if self.name else ""
        return f"Parameter(shape={self.shape}{label})"


class Module:
    """Base class for neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`named_parameters` discover
    them recursively, including through plain lists of modules.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters (recursively)."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all sub-modules recursively."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # training state
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Set training mode recursively (enables dropout etc.)."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients on all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> "Module":
        """Disable gradient tracking on all parameters.

        Used on pretrained models before explanation so mask optimization
        never perturbs model weights.
        """
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        """Re-enable gradient tracking on all parameters."""
        for param in self.parameters():
            param.requires_grad = True
        return self

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a name → array copy of all parameters."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ModelError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            param = params[name]
            value = np.asarray(value, dtype=np.float64)
            if value.shape != param.shape:
                raise ModelError(
                    f"shape mismatch for {name!r}: expected {param.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
