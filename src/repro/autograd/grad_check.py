"""Numerical gradient checking.

Used by the autograd test suite (and available to downstream users) to
verify that every backward closure matches a central finite-difference
estimate.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_grad", "check_gradients"]


def numerical_grad(fn: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn()`` w.r.t. ``tensor``.

    ``fn`` must recompute the scalar output from ``tensor.data`` each call
    (i.e. close over ``tensor``, not over a cached forward result).
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn().item()
        flat[i] = original - eps
        minus = fn().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[[], Tensor], tensors: list[Tensor],
                    atol: float = 1e-5, rtol: float = 1e-4, eps: float = 1e-6) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    Raises ``AssertionError`` with a per-tensor report on mismatch.
    """
    for tensor in tensors:
        tensor.zero_grad()
    out = fn()
    out.backward()
    failures = []
    for i, tensor in enumerate(tensors):
        numeric = numerical_grad(fn, tensor, eps=eps)
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            diff = np.abs(analytic - numeric).max()
            failures.append(f"tensor {i} (shape {tensor.shape}): max abs diff {diff:.3e}")
    if failures:
        raise AssertionError("gradient check failed:\n" + "\n".join(failures))
