"""Sharded, fault-tolerant experiment orchestration with checkpointed resume.

The paper's grid artifacts decompose into independent ``(method,
instance-chunk)`` work units; this package plans them
(:mod:`~repro.runner.plan`), executes them inline or across a
crash-isolated worker pool with per-job timeout and bounded retry
(:mod:`~repro.runner.pool`), checkpoints every outcome to an append-only
JSONL journal for ``--resume`` (:mod:`~repro.runner.journal`) and folds
the records back into the serial runners' exact row structures
(:mod:`~repro.runner.aggregate`). See ``DESIGN.md`` §7 for the job model.

Typical use goes through :mod:`repro.eval.experiments`::

    run_fidelity_experiment("mutag", "gin", ALL_METHODS,
                            config=cfg, jobs=4, resume="runs/fid.jsonl")

or the CLI::

    repro experiment fidelity -d mutag -m gin --jobs 4 --resume runs/fid.jsonl
"""

from .aggregate import (
    aggregate_auc,
    aggregate_experiment,
    aggregate_fidelity,
    aggregate_runtime,
)
from .driver import plan_artifact, run_planned_experiment
from .execute import EXECUTORS, execute_job, experiment_context, register_executor
from .journal import Journal, load_journal
from .plan import (
    DEFAULT_CHUNKS,
    GROUP_FIT_METHODS,
    ExperimentPlan,
    JobSpec,
    derive_seed,
    plan_experiment,
    plan_sampled_explain,
)
from .pool import run_jobs

__all__ = [
    "JobSpec",
    "ExperimentPlan",
    "plan_experiment",
    "plan_sampled_explain",
    "derive_seed",
    "GROUP_FIT_METHODS",
    "DEFAULT_CHUNKS",
    "run_jobs",
    "Journal",
    "load_journal",
    "register_executor",
    "execute_job",
    "experiment_context",
    "EXECUTORS",
    "aggregate_experiment",
    "aggregate_fidelity",
    "aggregate_auc",
    "aggregate_runtime",
    "plan_artifact",
    "run_planned_experiment",
]
