"""Experiment decomposition into serializable, order-independent jobs.

The paper's grid artifacts (fidelity curves, the AUC table, the runtime
table) are embarrassingly parallel across ``(method, instance-chunk)``
cells. :func:`plan_experiment` turns one artifact request into an
:class:`ExperimentPlan` whose :class:`JobSpec` work units are

* **serializable** — a ``JobSpec`` round-trips through a plain JSON dict,
  so it can cross process boundaries and live in a journal file;
* **stable** — job ids are a pure function of the experiment coordinates
  (``fidelity:mutag:gin:factual:flowx:003``), so a resumed run recognizes
  which units are already done;
* **order-independent** — every job carries its own RNG seed derived from
  the config seed and the job id (:func:`derive_seed`), so results do not
  depend on which worker runs a job or in what order jobs complete.

Chunking is deterministic and independent of the worker count: the same
plan is produced for ``workers=1`` and ``workers=8``, which is what makes
their aggregated results byte-identical. Group-fit methods (PGExplainer,
GraphMask — they train once over the whole instance set) are planned as a
single chunk; per-instance methods default to ``DEFAULT_CHUNKS`` chunks.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from ..errors import RunnerError

__all__ = ["JobSpec", "ExperimentPlan", "derive_seed", "plan_experiment",
           "GROUP_FIT_METHODS", "DEFAULT_CHUNKS"]

# Methods whose fit() trains one shared network over the instance group;
# splitting their instances across jobs would change semantics, so they
# always get exactly one chunk.
GROUP_FIT_METHODS = frozenset({"pgexplainer", "graphmask"})

# Per-instance methods are split into this many chunks (independent of the
# worker count, so plans — and therefore aggregates — never depend on it).
DEFAULT_CHUNKS = 4


def derive_seed(base_seed: int, job_id: str) -> int:
    """Stable per-job seed: hash of the config seed and the job id.

    Deterministic across processes and Python versions (sha256, not
    ``hash()``), and decoupled from execution order by construction.
    """
    digest = hashlib.sha256(f"{base_seed}:{job_id}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass
class JobSpec:
    """One self-contained unit of experiment work.

    ``kind`` selects the executor (see :mod:`repro.runner.execute`);
    ``payload`` must stay JSON-serializable end to end.
    """

    id: str
    kind: str
    payload: dict = field(default_factory=dict)
    seed: int = 0
    retries: int | None = None      # None → pool default
    timeout: float | None = None    # None → pool default

    def to_dict(self) -> dict:
        return {"id": self.id, "kind": self.kind, "payload": self.payload,
                "seed": self.seed, "retries": self.retries, "timeout": self.timeout}

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls(id=data["id"], kind=data["kind"],
                   payload=data.get("payload", {}), seed=data.get("seed", 0),
                   retries=data.get("retries"), timeout=data.get("timeout"))


@dataclass
class ExperimentPlan:
    """A planned artifact: shared metadata plus the ordered job list.

    ``meta`` carries everything aggregation needs to rebuild the exact row
    structures the serial runners return (method roster order, sparsity
    grid, instance count); ``jobs`` is in deterministic plan order, which
    fixes the float summation order during aggregation.
    """

    artifact: str
    meta: dict
    jobs: list[JobSpec] = field(default_factory=list)

    def jobs_for_method(self, method: str) -> list[JobSpec]:
        return [j for j in self.jobs if j.payload.get("method") == method]


def _chunk_indices(n: int, num_chunks: int) -> list[list[int]]:
    """Split ``range(n)`` into at most ``num_chunks`` contiguous chunks."""
    num_chunks = max(1, min(num_chunks, n))
    size = math.ceil(n / num_chunks)
    return [list(range(i, min(i + size, n))) for i in range(0, n, size)]


def plan_experiment(artifact: str, dataset_name: str, conv: str,
                    methods: tuple[str, ...], mode: str = "factual",
                    config=None, num_instances: int | None = None,
                    chunks: int | None = None) -> ExperimentPlan:
    """Decompose one artifact into jobs.

    Parameters
    ----------
    artifact:
        ``"fidelity"``, ``"auc"`` or ``"runtime"``.
    num_instances:
        The *effective* instance count (after any ``correct_only``
        filtering) — the caller measures it once on the materialized
        instance list so every job agrees on the index space. Jobs still
        carry the *requested* count, which is what reproduces the same
        instance list in every process.
    chunks:
        Chunks per per-instance method (default :data:`DEFAULT_CHUNKS`).
        Must not depend on the worker count.
    """
    from ..eval.experiments import ExperimentConfig, method_applicable

    if artifact not in ("fidelity", "auc", "runtime"):
        raise RunnerError(f"unplannable artifact {artifact!r}")
    config = config or ExperimentConfig()
    chunks = chunks if chunks is not None else DEFAULT_CHUNKS
    requested = config.resolved_instances()
    n = num_instances if num_instances is not None else requested
    scale = config.scale
    if scale is None:
        from ..datasets import default_scale
        scale = default_scale()

    planned_methods = [m for m in methods if method_applicable(m, dataset_name, conv)]
    base_payload = {
        "artifact": artifact,
        "dataset": dataset_name,
        "conv": conv,
        "mode": mode,
        "scale": scale,
        "config_seed": config.seed,
        "num_instances": requested,
        "effort": config.resolved_effort(),
        "alpha": config.alpha,
        "sparsities": [float(s) for s in config.sparsities],
        "motif_only": artifact == "auc",
        "correct_only": artifact == "auc",
    }

    jobs: list[JobSpec] = []
    for method in planned_methods:
        method_chunks = 1 if method in GROUP_FIT_METHODS else chunks
        for ci, indices in enumerate(_chunk_indices(n, method_chunks)):
            job_id = f"{artifact}:{dataset_name}:{conv}:{mode}:{method}:{ci:03d}"
            payload = dict(base_payload, method=method, chunk=ci, instances=indices)
            jobs.append(JobSpec(id=job_id, kind=f"{artifact}_chunk", payload=payload,
                                seed=derive_seed(config.seed, job_id)))

    meta = dict(base_payload)
    meta["num_instances"] = n  # effective count (post-filtering), as reported
    meta["methods"] = planned_methods
    meta["chunks"] = chunks
    return ExperimentPlan(artifact=artifact, meta=meta, jobs=jobs)
