"""Experiment decomposition into serializable, order-independent jobs.

The paper's grid artifacts (fidelity curves, the AUC table, the runtime
table) are embarrassingly parallel across ``(method, instance-chunk)``
cells. :func:`plan_experiment` turns one artifact request into an
:class:`ExperimentPlan` whose :class:`JobSpec` work units are

* **serializable** — a ``JobSpec`` round-trips through a plain JSON dict,
  so it can cross process boundaries and live in a journal file;
* **stable** — job ids are a pure function of the experiment coordinates
  (``fidelity:mutag:gin:factual:flowx:003``), so a resumed run recognizes
  which units are already done;
* **order-independent** — every job carries its own RNG seed derived from
  the config seed and the job id (:func:`derive_seed`), so results do not
  depend on which worker runs a job or in what order jobs complete.

Chunking is deterministic and independent of the worker count: the same
plan is produced for ``workers=1`` and ``workers=8``, which is what makes
their aggregated results byte-identical. Group-fit methods (PGExplainer,
GraphMask — they train once over the whole instance set) are planned as a
single chunk; per-instance methods default to ``DEFAULT_CHUNKS`` chunks.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from ..errors import RunnerError

__all__ = ["JobSpec", "ExperimentPlan", "derive_seed", "plan_experiment",
           "plan_sampled_explain", "GROUP_FIT_METHODS", "DEFAULT_CHUNKS"]

# Methods whose fit() trains one shared network over the instance group;
# splitting their instances across jobs would change semantics, so they
# always get exactly one chunk.
GROUP_FIT_METHODS = frozenset({"pgexplainer", "graphmask"})

# Per-instance methods are split into this many chunks (independent of the
# worker count, so plans — and therefore aggregates — never depend on it).
DEFAULT_CHUNKS = 4


def derive_seed(base_seed: int, job_id: str) -> int:
    """Stable per-job seed: hash of the config seed and the job id.

    Deterministic across processes and Python versions (sha256, not
    ``hash()``), and decoupled from execution order by construction.
    """
    digest = hashlib.sha256(f"{base_seed}:{job_id}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


#: Marker key wrapping an :class:`~repro.explain.target.ExplainTarget` in a
#: journaled payload. Targets are first-class values in job payloads but a
#: journal line is plain JSON, so ``to_dict`` wraps each one as
#: ``{"__explain_target__": target.to_wire()}`` and ``from_dict`` unwraps it.
TARGET_MARKER = "__explain_target__"


def _encode_payload_value(value):
    """JSON-encode one payload value, wrapping ExplainTargets recursively."""
    from ..explain.target import ExplainTarget

    if isinstance(value, ExplainTarget):
        return {TARGET_MARKER: value.to_wire()}
    if isinstance(value, (list, tuple)):
        return [_encode_payload_value(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode_payload_value(v) for k, v in value.items()}
    return value


def _decode_payload_value(value):
    """Inverse of :func:`_encode_payload_value`."""
    if isinstance(value, dict):
        if set(value) == {TARGET_MARKER}:
            from ..explain.target import ExplainTarget

            return ExplainTarget.from_wire(value[TARGET_MARKER])
        return {k: _decode_payload_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_payload_value(v) for v in value]
    return value


@dataclass
class JobSpec:
    """One self-contained unit of experiment work.

    ``kind`` selects the executor (see :mod:`repro.runner.execute`);
    ``payload`` must round-trip through plain JSON end to end.
    :class:`~repro.explain.target.ExplainTarget` values (anywhere in the
    payload, including inside lists) are supported directly — ``to_dict``
    encodes them behind a marker key and ``from_dict`` restores them.
    """

    id: str
    kind: str
    payload: dict = field(default_factory=dict)
    seed: int = 0
    retries: int | None = None      # None → pool default
    timeout: float | None = None    # None → pool default

    def to_dict(self) -> dict:
        return {"id": self.id, "kind": self.kind,
                "payload": _encode_payload_value(self.payload),
                "seed": self.seed, "retries": self.retries, "timeout": self.timeout}

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls(id=data["id"], kind=data["kind"],
                   payload=_decode_payload_value(data.get("payload", {})),
                   seed=data.get("seed", 0),
                   retries=data.get("retries"), timeout=data.get("timeout"))


@dataclass
class ExperimentPlan:
    """A planned artifact: shared metadata plus the ordered job list.

    ``meta`` carries everything aggregation needs to rebuild the exact row
    structures the serial runners return (method roster order, sparsity
    grid, instance count); ``jobs`` is in deterministic plan order, which
    fixes the float summation order during aggregation.
    """

    artifact: str
    meta: dict
    jobs: list[JobSpec] = field(default_factory=list)

    def jobs_for_method(self, method: str) -> list[JobSpec]:
        return [j for j in self.jobs if j.payload.get("method") == method]


def _chunk_indices(n: int, num_chunks: int) -> list[list[int]]:
    """Split ``range(n)`` into at most ``num_chunks`` contiguous chunks."""
    num_chunks = max(1, min(num_chunks, n))
    size = math.ceil(n / num_chunks)
    return [list(range(i, min(i + size, n))) for i in range(0, n, size)]


def plan_experiment(artifact: str, dataset_name: str, conv: str,
                    methods: tuple[str, ...], mode: str = "factual",
                    config=None, num_instances: int | None = None,
                    chunks: int | None = None) -> ExperimentPlan:
    """Decompose one artifact into jobs.

    Parameters
    ----------
    artifact:
        ``"fidelity"``, ``"auc"`` or ``"runtime"``.
    num_instances:
        The *effective* instance count (after any ``correct_only``
        filtering) — the caller measures it once on the materialized
        instance list so every job agrees on the index space. Jobs still
        carry the *requested* count, which is what reproduces the same
        instance list in every process.
    chunks:
        Chunks per per-instance method (default :data:`DEFAULT_CHUNKS`).
        Must not depend on the worker count.
    """
    from ..eval.experiments import ExperimentConfig, method_applicable

    if artifact not in ("fidelity", "auc", "runtime"):
        raise RunnerError(f"unplannable artifact {artifact!r}")
    config = config or ExperimentConfig()
    chunks = chunks if chunks is not None else DEFAULT_CHUNKS
    requested = config.resolved_instances()
    n = num_instances if num_instances is not None else requested
    scale = config.scale
    if scale is None:
        from ..datasets import default_scale
        scale = default_scale()

    planned_methods = [m for m in methods if method_applicable(m, dataset_name, conv)]
    base_payload = {
        "artifact": artifact,
        "dataset": dataset_name,
        "conv": conv,
        "mode": mode,
        "scale": scale,
        "config_seed": config.seed,
        "num_instances": requested,
        "effort": config.resolved_effort(),
        "alpha": config.alpha,
        "sparsities": [float(s) for s in config.sparsities],
        "motif_only": artifact == "auc",
        "correct_only": artifact == "auc",
    }

    jobs: list[JobSpec] = []
    for method in planned_methods:
        method_chunks = 1 if method in GROUP_FIT_METHODS else chunks
        for ci, indices in enumerate(_chunk_indices(n, method_chunks)):
            job_id = f"{artifact}:{dataset_name}:{conv}:{mode}:{method}:{ci:03d}"
            payload = dict(base_payload, method=method, chunk=ci, instances=indices)
            jobs.append(JobSpec(id=job_id, kind=f"{artifact}_chunk", payload=payload,
                                seed=derive_seed(config.seed, job_id)))

    meta = dict(base_payload)
    meta["num_instances"] = n  # effective count (post-filtering), as reported
    meta["methods"] = planned_methods
    meta["chunks"] = chunks
    return ExperimentPlan(artifact=artifact, meta=meta, jobs=jobs)


def plan_sampled_explain(dataset_name: str, conv: str, explainer: str,
                         targets, *, mode: str = "factual",
                         scale: float | None = None, config_seed: int = 0,
                         params: dict | None = None,
                         chunk_size: int = 8) -> ExperimentPlan:
    """Decompose a large-graph explanation sweep into streamed shards.

    Each job carries an explicit slice of ``targets`` (as
    :class:`~repro.explain.target.ExplainTarget` values — bare ints are
    promoted to node targets here, once, so every downstream consumer sees
    the typed form). The ``sampled_explain_chunk`` executor streams its
    shard one target at a time through
    :class:`~repro.sampling.SampledExplainRuntime`, so a worker's peak
    memory is bounded by the largest single receptive field, never by the
    shard — the property that lets the plan scale to graphs whose full
    explanation contexts would not fit.
    """
    from ..explain.target import ExplainTarget

    if not targets:
        raise RunnerError("plan_sampled_explain requires at least one target")
    if chunk_size < 1:
        raise RunnerError(f"chunk_size must be >= 1, got {chunk_size}")
    typed = [ExplainTarget.resolve(t, task="node") for t in targets]
    if any(t is None or t.kind == "graph" for t in typed):
        raise RunnerError("sampled explanation targets must be node or link targets")
    if scale is None:
        from ..datasets import default_scale
        scale = default_scale()

    base_payload = {
        "artifact": "sampled_explain",
        "dataset": dataset_name,
        "conv": conv,
        "explainer": explainer,
        "mode": mode,
        "scale": scale,
        "config_seed": config_seed,
        "params": dict(params or {}),
    }
    jobs: list[JobSpec] = []
    for ci in range(0, len(typed), chunk_size):
        shard = typed[ci:ci + chunk_size]
        index = ci // chunk_size
        job_id = f"sampled:{dataset_name}:{conv}:{explainer}:{mode}:{index:03d}"
        payload = dict(base_payload, chunk=index, targets=shard)
        jobs.append(JobSpec(id=job_id, kind="sampled_explain_chunk",
                            payload=payload,
                            seed=derive_seed(config_seed, job_id)))

    meta = dict(base_payload)
    meta["num_targets"] = len(typed)
    meta["chunk_size"] = chunk_size
    return ExperimentPlan(artifact="sampled_explain", meta=meta, jobs=jobs)
