"""Job executors: the code a worker runs for each :class:`JobSpec` kind.

The registry maps ``JobSpec.kind`` to a callable ``fn(payload, seed) ->
json-serializable dict``. Experiment chunk executors rebuild their context
(dataset, trained model, instance list) deterministically from the payload
— every process derives the *same* instance index space from the config
seed, so a chunk's ``instances`` indices mean the same thing everywhere.

Contexts are memoized per process: a pool worker pays the dataset/model
load once and then streams through its share of the chunks. Under the
``fork`` start method the memo warmed by the planner is inherited for
free.
"""

from __future__ import annotations

import importlib
import time

from ..errors import RunnerError

__all__ = ["EXECUTORS", "register_executor", "execute_job",
           "experiment_context", "clear_context_cache"]

EXECUTORS: dict = {}


def register_executor(kind: str, fn) -> None:
    """Register ``fn(payload, seed) -> dict`` as the executor for ``kind``."""
    EXECUTORS[kind] = fn


def execute_job(job) -> dict:
    """Dispatch one job to its executor; raises on unknown kind."""
    try:
        fn = EXECUTORS[job.kind]
    except KeyError:
        raise RunnerError(f"no executor registered for job kind {job.kind!r}") from None
    return fn(job.payload, job.seed)


# ----------------------------------------------------------------------
# experiment context (memoized per process)
# ----------------------------------------------------------------------
_CONTEXT_CACHE: dict = {}


def experiment_context(payload: dict):
    """``(model, dataset, instances)`` for an experiment-chunk payload.

    Deterministic given the payload: the model comes from the zoo cache
    (or is retrained with the same recipe/seed) and the instance list is
    rebuilt with the config seed, so chunk indices are stable across
    processes and runs.
    """
    key = (payload["dataset"], payload["conv"], payload["scale"],
           payload["config_seed"], payload["num_instances"],
           payload.get("motif_only", False), payload.get("correct_only", False))
    if key in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[key]
    from ..eval.experiments import build_instances
    from ..nn.zoo import get_model

    model, dataset, _ = get_model(payload["dataset"], payload["conv"],
                                  scale=payload["scale"], seed=payload["config_seed"])
    instances = build_instances(
        dataset, payload["num_instances"], seed=payload["config_seed"],
        motif_only=payload.get("motif_only", False),
        correct_only=payload.get("correct_only", False),
        model=model if payload.get("correct_only") else None,
    )
    _CONTEXT_CACHE[key] = (model, dataset, instances)
    return _CONTEXT_CACHE[key]


def clear_context_cache() -> None:
    """Drop memoized experiment contexts (tests / memory pressure)."""
    _CONTEXT_CACHE.clear()


def _run_chunk(payload: dict, seed: int):
    """Common front half of every experiment executor."""
    from ..eval.experiments import run_explainer

    model, dataset, instances = experiment_context(payload)
    subset = [instances[i] for i in payload["instances"]]
    result = run_explainer(payload["method"], model, subset, mode=payload["mode"],
                           effort=payload["effort"], alpha=payload["alpha"],
                           seed=seed)
    return model, subset, result


def run_fidelity_chunk(payload: dict, seed: int) -> dict:
    """Fidelity− / Fidelity+ partial: per-sparsity means over the chunk."""
    from ..eval.fidelity import fidelity_curve

    model, subset, result = _run_chunk(payload, seed)
    metric = "minus" if payload["mode"] == "factual" else "plus"
    curve = fidelity_curve(model, subset, result.explanations,
                           list(payload["sparsities"]), metric=metric)
    return {"method": payload["method"], "n": len(subset),
            "sparsities": list(payload["sparsities"]),
            "values": [curve[float(s)] for s in payload["sparsities"]]}


def run_auc_chunk(payload: dict, seed: int) -> dict:
    """Motif-AUC partial: one AUC per non-degenerate instance, in order."""
    from ..errors import EvaluationError
    from ..eval.auc import explanation_auc

    _, subset, result = _run_chunk(payload, seed)
    values = []
    for inst, exp in zip(subset, result.explanations):
        try:
            values.append(explanation_auc(inst.graph, exp))
        except EvaluationError:
            continue  # degenerate instance (all-pos/neg), skipped as in serial path
    return {"method": payload["method"], "n": len(subset), "values": values}


def run_runtime_chunk(payload: dict, seed: int) -> dict:
    """Table V partial: per-instance wall-clock for the chunk."""
    _, subset, result = _run_chunk(payload, seed)
    train_s = (result.explanations[0].meta.get("perf", {}).get("train_seconds")
               if result.explanations else None)
    return {"method": payload["method"], "n": len(subset),
            "per_instance": [float(t) for t in result.per_instance],
            "total_seconds": float(result.total_seconds),
            "train_seconds": float(train_s) if train_s else None}


# ----------------------------------------------------------------------
# generic executors (benchmarks, tests, ad-hoc fan-out)
# ----------------------------------------------------------------------
def run_sleep(payload: dict, seed: int) -> dict:
    """Block for ``payload["seconds"]`` — isolates pool orchestration cost."""
    time.sleep(float(payload.get("seconds", 0.0)))
    return {"slept": float(payload.get("seconds", 0.0))}


def run_pycall(payload: dict, seed: int) -> dict:
    """Import ``module:attr`` and call it with ``kwargs`` (plus the seed).

    Importable-path indirection keeps custom jobs usable under the
    ``spawn`` start method, where workers do not inherit runtime
    :func:`register_executor` calls.
    """
    module, _, attr = payload["func"].partition(":")
    fn = getattr(importlib.import_module(module), attr)
    out = fn(seed=seed, **payload.get("kwargs", {}))
    return out if isinstance(out, dict) else {"value": out}


register_executor("fidelity_chunk", run_fidelity_chunk)
register_executor("auc_chunk", run_auc_chunk)
register_executor("runtime_chunk", run_runtime_chunk)
register_executor("sleep", run_sleep)
register_executor("pycall", run_pycall)
