"""Job executors: the code a worker runs for each :class:`JobSpec` kind.

The registry maps ``JobSpec.kind`` to a callable ``fn(payload, seed) ->
json-serializable dict``. Experiment chunk executors rebuild their context
(dataset, trained model, instance list) deterministically from the payload
— every process derives the *same* instance index space from the config
seed, so a chunk's ``instances`` indices mean the same thing everywhere.

Contexts are memoized per process: a pool worker pays the dataset/model
load once and then streams through its share of the chunks. Under the
``fork`` start method the memo warmed by the planner is inherited for
free.
"""

from __future__ import annotations

import importlib
import time

from ..errors import RunnerError

__all__ = ["EXECUTORS", "register_executor", "execute_job",
           "experiment_context"]

EXECUTORS: dict = {}


def register_executor(kind: str, fn) -> None:
    """Register ``fn(payload, seed) -> dict`` as the executor for ``kind``."""
    EXECUTORS[kind] = fn


def execute_job(job) -> dict:
    """Dispatch one job to its executor; raises on unknown kind."""
    try:
        fn = EXECUTORS[job.kind]
    except KeyError:
        raise RunnerError(f"no executor registered for job kind {job.kind!r}") from None
    return fn(job.payload, job.seed)


# ----------------------------------------------------------------------
# experiment context (memoized per process)
# ----------------------------------------------------------------------
_CONTEXT_CACHE: dict = {}


def experiment_context(payload: dict):
    """``(model, dataset, instances)`` for an experiment-chunk payload.

    Deterministic given the payload: the model comes from the zoo cache
    (or is retrained with the same recipe/seed) and the instance list is
    rebuilt with the config seed, so chunk indices are stable across
    processes and runs.
    """
    key = (payload["dataset"], payload["conv"], payload["scale"],
           payload["config_seed"], payload["num_instances"],
           payload.get("motif_only", False), payload.get("correct_only", False))
    if key in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[key]
    from ..eval.experiments import build_instances
    from ..nn.zoo import get_model

    model, dataset, _ = get_model(payload["dataset"], payload["conv"],
                                  scale=payload["scale"], seed=payload["config_seed"])
    instances = build_instances(
        dataset, payload["num_instances"], seed=payload["config_seed"],
        motif_only=payload.get("motif_only", False),
        correct_only=payload.get("correct_only", False),
        model=model if payload.get("correct_only") else None,
    )
    _CONTEXT_CACHE[key] = (model, dataset, instances)
    return _CONTEXT_CACHE[key]


def clear_context_cache() -> None:
    """Drop memoized experiment contexts (tests / memory pressure)."""
    _CONTEXT_CACHE.clear()


def _run_chunk(payload: dict, seed: int):
    """Common front half of every experiment executor."""
    from ..eval.experiments import run_explainer

    model, dataset, instances = experiment_context(payload)
    subset = [instances[i] for i in payload["instances"]]
    result = run_explainer(payload["method"], model, subset, mode=payload["mode"],
                           effort=payload["effort"], alpha=payload["alpha"],
                           seed=seed)
    return model, subset, result


def run_fidelity_chunk(payload: dict, seed: int) -> dict:
    """Fidelity− / Fidelity+ partial: per-sparsity means over the chunk."""
    from ..eval.fidelity import fidelity_curve

    model, subset, result = _run_chunk(payload, seed)
    metric = "minus" if payload["mode"] == "factual" else "plus"
    curve = fidelity_curve(model, subset, result.explanations,
                           list(payload["sparsities"]), metric=metric)
    return {"method": payload["method"], "n": len(subset),
            "sparsities": list(payload["sparsities"]),
            "values": [curve[float(s)] for s in payload["sparsities"]]}


def run_auc_chunk(payload: dict, seed: int) -> dict:
    """Motif-AUC partial: one AUC per non-degenerate instance, in order."""
    from ..errors import EvaluationError
    from ..eval.auc import explanation_auc

    _, subset, result = _run_chunk(payload, seed)
    values = []
    for inst, exp in zip(subset, result.explanations):
        try:
            values.append(explanation_auc(inst.graph, exp))
        except EvaluationError:
            continue  # degenerate instance (all-pos/neg), skipped as in serial path
    return {"method": payload["method"], "n": len(subset), "values": values}


def run_runtime_chunk(payload: dict, seed: int) -> dict:
    """Table V partial: per-instance wall-clock for the chunk."""
    _, subset, result = _run_chunk(payload, seed)
    train_s = (result.explanations[0].meta.get("perf", {}).get("train_seconds")
               if result.explanations else None)
    return {"method": payload["method"], "n": len(subset),
            "per_instance": [float(t) for t in result.per_instance],
            "total_seconds": float(result.total_seconds),
            "train_seconds": float(train_s) if train_s else None}


def run_sampled_explain_chunk(payload: dict, seed: int) -> dict:
    """Explain one shard of targets through the sampled runtime, streamed.

    Targets are explained **one at a time** and reduced to compact summary
    rows immediately, so the worker's peak memory is bounded by the largest
    single receptive field — never by the shard size or the full graph's
    edge count. This is the property that lets a pool chew through a
    target list on a graph whose full explanation contexts would not fit.
    """
    import numpy as np

    from ..explain import make_explainer
    from ..nn.zoo import get_model
    from ..sampling import SampledExplainRuntime

    model, dataset, _ = get_model(payload["dataset"], payload["conv"],
                                  scale=payload["scale"],
                                  seed=payload["config_seed"])
    explainer = make_explainer(payload["explainer"], model,
                               seed=seed, **payload.get("params", {}))
    runtime = SampledExplainRuntime(explainer)
    rows = []
    digest = 0
    for target in payload["targets"]:
        explanation = runtime.explain(dataset.graph, target,
                                      mode=payload["mode"])
        sampled = explanation.meta["sampled"]
        scores = explanation.edge_scores
        top = explanation.top_edges(10)
        digest = (digest * 1000003
                  + int(np.abs(scores).sum() * 1e6)) % (1 << 62)
        rows.append({
            "target": target.to_wire(),
            "predicted_class": int(explanation.predicted_class),
            "num_nodes": int(sampled["num_nodes"]),
            "num_edges": int(sampled["num_edges"]),
            "num_hops": int(sampled["num_hops"]),
            "top_edges": [int(e) for e in top],
            "top_scores": [float(scores[e]) for e in top],
        })
        del explanation, scores  # keep the streamed-shard memory bound honest
    return {"explainer": payload["explainer"], "mode": payload["mode"],
            "n": len(rows), "rows": rows, "checksum": digest}


# ----------------------------------------------------------------------
# generic executors (benchmarks, tests, ad-hoc fan-out)
# ----------------------------------------------------------------------
def run_sleep(payload: dict, seed: int) -> dict:
    """Block for ``payload["seconds"]`` — isolates pool orchestration cost."""
    time.sleep(float(payload.get("seconds", 0.0)))
    return {"slept": float(payload.get("seconds", 0.0))}


def run_pycall(payload: dict, seed: int) -> dict:
    """Import ``module:attr`` and call it with ``kwargs`` (plus the seed).

    Importable-path indirection keeps custom jobs usable under the
    ``spawn`` start method, where workers do not inherit runtime
    :func:`register_executor` calls.
    """
    module, _, attr = payload["func"].partition(":")
    fn = getattr(importlib.import_module(module), attr)
    out = fn(seed=seed, **payload.get("kwargs", {}))
    return out if isinstance(out, dict) else {"value": out}


register_executor("fidelity_chunk", run_fidelity_chunk)
register_executor("sampled_explain_chunk", run_sampled_explain_chunk)
register_executor("auc_chunk", run_auc_chunk)
register_executor("runtime_chunk", run_runtime_chunk)
register_executor("sleep", run_sleep)
register_executor("pycall", run_pycall)
