"""Fold job records back into the serial runners' exact row structures.

Aggregation consumes only the plan (for deterministic ordering) and the
job records (in-memory or journal-loaded — JSON round-trips floats
exactly, so the two are interchangeable). Partial sums always run in plan
order, never completion order, which is what makes rows byte-identical
across ``workers=1``, ``workers=N`` and resumed runs.

Methods with failed chunks are aggregated over their surviving chunks and
reported under ``"failures"``; a method whose every chunk failed is
omitted from the curves rather than aborting the artifact.
"""

from __future__ import annotations

import numpy as np

from .plan import ExperimentPlan

__all__ = ["aggregate_experiment", "aggregate_fidelity", "aggregate_auc",
           "aggregate_runtime"]


def aggregate_experiment(plan: ExperimentPlan, records: dict[str, dict]) -> dict:
    """Dispatch on the plan's artifact kind."""
    fn = {"fidelity": aggregate_fidelity, "auc": aggregate_auc,
          "runtime": aggregate_runtime}[plan.artifact]
    return fn(plan, records)


def _collect(plan: ExperimentPlan, records: dict[str, dict], method: str):
    """(ok result payloads in plan order, failure summaries) for a method."""
    oks, failures = [], []
    for job in plan.jobs_for_method(method):
        rec = records.get(job.id)
        if rec is not None and rec.get("status") == "ok":
            oks.append(rec["result"])
        else:
            error = (rec or {}).get("error") or {"type": "Missing",
                                                 "message": "no record for job"}
            failures.append({"job": job.id, "attempts": (rec or {}).get("attempt", 0),
                             "error": {"type": error.get("type"),
                                       "message": error.get("message")}})
    return oks, failures


def _job_stats(plan: ExperimentPlan, records: dict[str, dict]) -> dict:
    done = sum(1 for j in plan.jobs
               if records.get(j.id, {}).get("status") == "ok")
    return {"total": len(plan.jobs), "ok": done, "failed": len(plan.jobs) - done}


def aggregate_fidelity(plan: ExperimentPlan, records: dict[str, dict]) -> dict:
    """Rebuild :func:`repro.eval.experiments.run_fidelity_experiment`'s dict."""
    meta = plan.meta
    sparsities = [float(s) for s in meta["sparsities"]]
    curves: dict[str, dict[float, float]] = {}
    failures: dict[str, list] = {}
    rows: list[str] = []
    for method in meta["methods"]:
        oks, failed = _collect(plan, records, method)
        if failed:
            failures[method] = failed
        if not oks:
            continue
        sums = np.zeros(len(sparsities))
        n_total = 0
        for result in oks:
            sums += np.asarray(result["values"], dtype=np.float64) * result["n"]
            n_total += result["n"]
        curve = {s: float(v / n_total) for s, v in zip(sparsities, sums)}
        curves[method] = curve
        values = "  ".join(f"{curve[s]:+.3f}" for s in sparsities)
        rows.append(f"{method:<14} {values}")
    header = f"{'method':<14} " + "  ".join(f"s={s:.1f}" for s in sparsities)
    return {"dataset": meta["dataset"], "conv": meta["conv"], "mode": meta["mode"],
            "sparsities": sparsities, "curves": curves,
            "rows": [header, *rows], "failures": failures,
            "jobs": _job_stats(plan, records)}


def aggregate_auc(plan: ExperimentPlan, records: dict[str, dict]) -> dict:
    """Rebuild :func:`repro.eval.experiments.run_auc_experiment`'s dict."""
    meta = plan.meta
    aucs: dict[str, float] = {}
    failures: dict[str, list] = {}
    for method in meta["methods"]:
        oks, failed = _collect(plan, records, method)
        if failed:
            failures[method] = failed
        values = [v for result in oks for v in result["values"]]
        if values:
            aucs[method] = float(np.mean(np.asarray(values, dtype=np.float64)))
    rows = [f"{m:<14} {v:.3f}" for m, v in aucs.items()]
    return {"dataset": meta["dataset"], "conv": meta["conv"], "mode": meta["mode"],
            "num_instances": meta["num_instances"], "auc": aucs, "rows": rows,
            "failures": failures, "jobs": _job_stats(plan, records)}


def aggregate_runtime(plan: ExperimentPlan, records: dict[str, dict]) -> dict:
    """Rebuild :func:`repro.eval.experiments.run_runtime_experiment`'s dict."""
    meta = plan.meta
    times: dict[str, float] = {}
    details: dict[str, dict] = {}
    failures: dict[str, list] = {}
    for method in meta["methods"]:
        oks, failed = _collect(plan, records, method)
        if failed:
            failures[method] = failed
        per_instance = [t for result in oks for t in result["per_instance"]]
        if not per_instance:
            continue
        arr = np.asarray(per_instance, dtype=np.float64)
        times[method] = float(arr.mean())
        details[method] = {"total": float(sum(r["total_seconds"] for r in oks)),
                           "std": float(arr.std())}
        train = next((r["train_seconds"] for r in oks if r.get("train_seconds")), None)
        if train:
            details[method]["train_seconds"] = train
    rows = []
    for m, v in times.items():
        extra = details[m].get("train_seconds")
        label = f"{v:.3f}" + (f" (train {extra:.1f})" if extra else "")
        rows.append(f"{m:<14} {label}")
    return {"dataset": meta["dataset"], "conv": meta["conv"], "mean_seconds": times,
            "details": details, "rows": rows, "failures": failures,
            "jobs": _job_stats(plan, records)}
