"""High-level entry: plan → (pool | inline) → aggregate, with resume.

:func:`run_planned_experiment` is what :mod:`repro.eval.experiments`
delegates to when a runner is called with ``jobs=``: it warms the
dataset/model context once in the parent (so forked workers inherit it
and concurrent workers never race to train the same checkpoint), plans
the job grid, executes it fault-tolerantly and folds the records back
into the serial runner's exact return structure.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import EvaluationError
from .aggregate import aggregate_experiment
from .execute import experiment_context
from .plan import ExperimentPlan, plan_experiment
from .pool import run_jobs

__all__ = ["run_planned_experiment", "plan_artifact"]


def plan_artifact(artifact: str, dataset_name: str, conv: str,
                  methods: tuple[str, ...], mode: str = "factual",
                  config=None, chunks: int | None = None) -> ExperimentPlan:
    """Warm the experiment context and plan the job grid.

    Materializing the instance list here (in the parent) pins the
    effective instance count — for AUC artifacts ``correct_only``
    filtering can return fewer instances than requested — and leaves a
    trained model in the zoo cache for workers to load.
    """
    from ..eval.experiments import ExperimentConfig

    config = config or ExperimentConfig()
    scale = config.scale
    if scale is None:
        from ..datasets import default_scale
        scale = default_scale()
    probe = {"dataset": dataset_name, "conv": conv, "scale": scale,
             "config_seed": config.seed,
             "num_instances": config.resolved_instances(),
             "motif_only": artifact == "auc", "correct_only": artifact == "auc"}
    _, _, instances = experiment_context(probe)
    if not instances:
        raise EvaluationError(
            f"{dataset_name}/{conv}: no instances available for {artifact}")
    return plan_experiment(artifact, dataset_name, conv, methods, mode=mode,
                           config=config, num_instances=len(instances),
                           chunks=chunks)


def run_planned_experiment(artifact: str, dataset_name: str, conv: str,
                           methods: tuple[str, ...], mode: str = "factual",
                           config=None, workers: int = 1,
                           resume: str | Path | None = None,
                           chunks: int | None = None,
                           timeout: float | None = None, retries: int = 1,
                           on_record=None) -> dict:
    """Run one artifact through the sharded runner.

    Parameters
    ----------
    workers:
        ``1`` executes inline (deterministic, debuggable); ``N > 1`` uses
        the crash-isolated worker pool.
    resume:
        Journal path. Every job outcome is checkpointed there; if the
        file already holds successful records for some jobs (a previous
        run, killed or partial), only the remaining/failed jobs execute.
    timeout, retries:
        Per-job limits, see :func:`repro.runner.pool.run_jobs`.
    """
    plan = plan_artifact(artifact, dataset_name, conv, methods, mode=mode,
                         config=config, chunks=chunks)
    records = run_jobs(plan.jobs, workers=workers, timeout=timeout,
                       retries=retries, journal_path=resume,
                       resume=resume is not None, on_record=on_record)
    return aggregate_experiment(plan, records)
