"""High-level entry: plan → (pool | inline) → aggregate, with resume.

:func:`run_planned_experiment` is what :mod:`repro.eval.experiments`
delegates to when a runner is called with sharding options: it warms the
dataset/model context once in the parent (so forked workers inherit it
and concurrent workers never race to train the same checkpoint), plans
the job grid, executes it fault-tolerantly and folds the records back
into the serial runner's exact return structure. When
``ExecutionConfig.trace`` is set, the whole run is wrapped in a
:class:`repro.obs.TraceSession`: worker spans are shipped back with each
result envelope and merged into one trace, and a ``RunManifest`` is
written next to the exported trace JSONL.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import EvaluationError
from ..execution import ExecutionConfig, resolve_trace_path
from .aggregate import aggregate_experiment
from .execute import experiment_context
from .plan import ExperimentPlan, plan_experiment
from .pool import run_jobs

__all__ = ["run_planned_experiment", "plan_artifact"]


def plan_artifact(artifact: str, dataset_name: str, conv: str,
                  methods: tuple[str, ...], mode: str = "factual",
                  config=None, chunks: int | None = None) -> ExperimentPlan:
    """Warm the experiment context and plan the job grid.

    Materializing the instance list here (in the parent) pins the
    effective instance count — for AUC artifacts ``correct_only``
    filtering can return fewer instances than requested — and leaves a
    trained model in the zoo cache for workers to load. The dataset's
    content fingerprint is stashed in ``plan.meta`` for run manifests.
    """
    from ..eval.experiments import ExperimentConfig

    config = config or ExperimentConfig()
    scale = config.scale
    if scale is None:
        from ..datasets import default_scale
        scale = default_scale()
    probe = {"dataset": dataset_name, "conv": conv, "scale": scale,
             "config_seed": config.seed,
             "num_instances": config.resolved_instances(),
             "motif_only": artifact == "auc", "correct_only": artifact == "auc"}
    _, dataset, instances = experiment_context(probe)
    if not instances:
        raise EvaluationError(
            f"{dataset_name}/{conv}: no instances available for {artifact}")
    plan = plan_experiment(artifact, dataset_name, conv, methods, mode=mode,
                           config=config, num_instances=len(instances),
                           chunks=chunks)
    from ..obs import dataset_fingerprint

    plan.meta["dataset_fingerprint"] = dataset_fingerprint(dataset)
    return plan


def run_planned_experiment(artifact: str, dataset_name: str, conv: str,
                           methods: tuple[str, ...], mode: str = "factual",
                           config=None, workers: int = 1,
                           resume: str | Path | None = None,
                           chunks: int | None = None,
                           timeout: float | None = None, retries: int = 1,
                           on_record=None,
                           execution: ExecutionConfig | None = None) -> dict:
    """Run one artifact through the sharded runner.

    Parameters
    ----------
    execution:
        When given, its ``jobs``/``resume``/``chunk_size``/``timeout``/
        ``retries``/``trace`` fields override the corresponding flat
        parameters (the flat forms remain for internal callers).
    workers:
        ``1`` executes inline (deterministic, debuggable); ``N > 1`` uses
        the crash-isolated worker pool.
    resume:
        Journal path. Every job outcome is checkpointed there; if the
        file already holds successful records for some jobs (a previous
        run, killed or partial), only the remaining/failed jobs execute.
    timeout, retries:
        Per-job limits, see :func:`repro.runner.pool.run_jobs`.
    """
    trace = None
    if execution is not None:
        workers = execution.workers
        resume = execution.resume if execution.resume is not None else resume
        chunks = execution.chunk_size if execution.chunk_size is not None else chunks
        timeout = execution.timeout if execution.timeout is not None else timeout
        retries = execution.retries
        trace = execution.trace

    def execute() -> dict:
        plan = plan_artifact(artifact, dataset_name, conv, methods, mode=mode,
                             config=config, chunks=chunks)
        records = run_jobs(plan.jobs, workers=workers, timeout=timeout,
                           retries=retries, journal_path=resume,
                           resume=resume is not None, on_record=on_record)
        result = aggregate_experiment(plan, records)
        return plan, result

    trace_target = resolve_trace_path(
        trace, str(resume) if resume is not None else None,
        f"trace_{artifact}_{dataset_name}_{conv}.jsonl")
    if trace_target is None:
        _, result = execute()
        return result

    from ..obs import TraceSession

    session = TraceSession(trace_target)
    with session:
        plan, result = execute()
    session.fingerprint = plan.meta.get("dataset_fingerprint")
    session.finalize(result, run_meta=dict(plan.meta, jobs=workers))
    return result
