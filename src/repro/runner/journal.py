"""Append-only JSONL checkpoint of job outcomes.

Every completed (or terminally failed) job is streamed to the journal as
one JSON line, flushed and fsynced, so a run killed at any point loses at
most the in-flight jobs. :func:`load_journal` tolerates a truncated final
line — exactly what a mid-write kill leaves behind — and keeps the *last*
record per job id, so re-run outcomes supersede earlier failures.

Python's ``json`` round-trips floats exactly (shortest-repr encoding), so
aggregating from journaled records is bit-identical to aggregating from
in-memory ones — the property the resume tests pin down.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["Journal", "load_journal"]


class Journal:
    """Append-only writer; one JSON object per line, durable per append."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        # A journal killed mid-write ends in a torn line without a newline;
        # start on a fresh line so the first resumed record isn't glued to it.
        if self.path.stat().st_size > 0:
            with open(self.path, "rb") as fh:
                fh.seek(-1, 2)
                if fh.read(1) != b"\n":
                    self._fh.write("\n")

    def append(self, record: dict) -> None:
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_journal(path: str | Path) -> dict[str, dict]:
    """Records by job id (last record per id wins).

    Unparseable lines — a truncated tail from a killed writer, or stray
    garbage — are skipped rather than fatal: the corresponding job simply
    re-runs.
    """
    path = Path(path)
    records: dict[str, dict] = {}
    if not path.exists():
        return records
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "id" in record:
                records[record["id"]] = record
    return records
