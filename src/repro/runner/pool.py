"""Fault-tolerant job execution: inline or across a worker-process pool.

:func:`run_jobs` executes a list of :class:`~repro.runner.plan.JobSpec`
and returns ``{job_id: record}``. Guarantees:

* **Crash isolation** — a worker that dies hard (segfault, OOM-kill,
  ``os._exit``) marks only its in-flight job as failed; the worker is
  respawned and the run continues.
* **Per-job timeout** — a job past its deadline has its worker terminated
  (the only way to preempt arbitrary Python) and is marked failed; the
  pool respawns and moves on.
* **Bounded retry with backoff** — failed jobs are re-queued up to
  ``retries`` extra attempts, delayed by ``backoff * 2**(attempt-1)``.
* **Checkpointed resume** — with a journal path every attempt outcome is
  streamed to JSONL; ``resume=True`` loads it first, keeps successful
  records verbatim and re-runs only the rest.
* **Deterministic inline fallback** — ``workers=1`` executes everything
  in-process (same executors, same records, same journal) so a run is
  debuggable under pdb. Timeouts are *not* enforced inline: preempting
  arbitrary in-process Python is not possible; use ``workers >= 2``.
* **Truthful instrumentation** — each worker ships the delta of its
  :data:`repro.obs.PERF` counters with every result and the parent
  merges it, so engine counters and stage timings reflect the whole run,
  not just the parent process. When the parent's tracer is enabled, each
  task additionally carries the active trace id; workers record spans
  under a per-job ``job`` span, :meth:`~repro.obs.Tracer.drain` their
  buffer into the result envelope, and the parent
  :meth:`~repro.obs.Tracer.absorb`\\ s it — so a ``--jobs N`` run yields
  one merged trace spanning every worker process.

Workers are started with the ``fork`` method when the platform offers it
(inheriting warmed dataset/model contexts and runtime-registered
executors); otherwise ``spawn``, where custom jobs must use the importable
``pycall`` kind.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from pathlib import Path

from ..obs import PERF, TRACER, span
from ..obs.names import SPAN_JOB
from .execute import execute_job
from .journal import Journal, load_journal
from .plan import JobSpec

__all__ = ["run_jobs"]

RETRYABLE_DEFAULTS = {"retries": 1, "backoff": 0.1}

_TRACEBACK_LIMIT = 2000  # chars kept per journaled traceback


def _error_info(exc: BaseException) -> dict:
    tb = traceback.format_exc()
    return {"type": type(exc).__name__, "message": str(exc),
            "traceback": tb[-_TRACEBACK_LIMIT:]}


def _job_span_attrs(job: JobSpec) -> dict:
    attrs = {"job_id": job.id}
    method = job.payload.get("method")
    if method:
        attrs["method"] = method
    return attrs


def _worker_main(task_q, result_q) -> None:
    """Worker loop: pull job dicts, execute, push result envelopes.

    The attempt number is echoed back so the parent can discard stale
    envelopes (a job that finished just as its timeout kill landed, then
    got re-queued). Tasks carrying a ``trace`` config enable this
    process's tracer under the parent's trace id; the buffer is drained
    into every envelope so spans ship incrementally, like PERF deltas.
    """
    # A forked worker inherits the parent tracer's buffered spans; drop
    # them or they would ship back and duplicate the parent's records.
    TRACER.reset()
    while True:
        item = task_q.get()
        if item is None:
            return
        job = JobSpec.from_dict(item["job"])
        trace_cfg = item.get("trace")
        if trace_cfg:
            if not TRACER.enabled or TRACER.trace_id != trace_cfg["trace_id"]:
                TRACER.reset()
                TRACER.enable(trace_id=trace_cfg["trace_id"])
        elif TRACER.enabled:  # fork-inherited enable with tracing now off
            TRACER.disable()
        before = PERF.snapshot()
        t0 = time.perf_counter()
        try:
            if trace_cfg:
                with TRACER.start_span(SPAN_JOB, _job_span_attrs(job)):
                    result = execute_job(job)
            else:
                result = execute_job(job)
            envelope = {"job_id": job.id, "ok": True, "result": result}
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            envelope = {"job_id": job.id, "ok": False, "error": _error_info(exc)}
        envelope["attempt"] = item["attempt"]
        envelope["seconds"] = time.perf_counter() - t0
        envelope["perf"] = PERF.delta(before, PERF.snapshot())
        if trace_cfg:
            envelope["trace"] = TRACER.drain()
        result_q.put(envelope)


class _WorkerSlot:
    """One managed worker process plus its private task queue."""

    def __init__(self, ctx, result_q):
        self.task_q = ctx.Queue()
        self.process = ctx.Process(target=_worker_main,
                                   args=(self.task_q, result_q), daemon=True)
        self.process.start()
        self.job: JobSpec | None = None
        self.attempt = 0
        self.deadline: float | None = None
        self.started: float = 0.0

    @property
    def busy(self) -> bool:
        return self.job is not None

    def assign(self, job: JobSpec, attempt: int, timeout: float | None) -> None:
        self.job = job
        self.attempt = attempt
        self.started = time.monotonic()
        self.deadline = (self.started + timeout) if timeout else None
        item = {"job": job.to_dict(), "attempt": attempt}
        if TRACER.enabled:
            item["trace"] = {"trace_id": TRACER.trace_id}
        self.task_q.put(item)

    def release(self) -> None:
        self.job = None
        self.attempt = 0
        self.deadline = None
        self.started = 0.0

    def stop(self, grace: float = 1.0) -> None:
        if not self.process.is_alive():
            return
        try:
            self.task_q.put(None)
            self.process.join(grace)
        except (ValueError, OSError):
            pass
        if self.process.is_alive():
            self.kill()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(1.0)


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def run_jobs(jobs: list[JobSpec], workers: int = 1,
             timeout: float | None = None, retries: int = 1,
             backoff: float = 0.1, journal_path: str | Path | None = None,
             resume: bool = False,
             on_record=None) -> dict[str, dict]:
    """Execute ``jobs``; return ``{job_id: record}`` for every job.

    A record is ``{"id", "status": "ok"|"failed", "attempt", "seconds",
    "result" | "error", "perf"}``. With ``resume=True`` and an existing
    journal, jobs whose last journaled record is ``"ok"`` are not re-run —
    their journaled records are returned verbatim (their ``perf`` deltas
    are *not* re-merged, so counters stay truthful).

    ``on_record(record)`` is called for each newly produced record
    (progress reporting).
    """
    records: dict[str, dict] = {}
    todo = list(jobs)
    if resume and journal_path is not None:
        previous = load_journal(journal_path)
        todo = []
        for job in jobs:
            rec = previous.get(job.id)
            if rec is not None and rec.get("status") == "ok":
                records[job.id] = rec
            else:
                todo.append(job)

    journal = Journal(journal_path) if journal_path is not None else None

    def emit(record: dict) -> None:
        records[record["id"]] = record
        if journal is not None:
            journal.append(record)
        if on_record is not None:
            on_record(record)

    try:
        if workers <= 1:
            _run_inline(todo, retries, backoff, emit)
        else:
            _run_pool(todo, workers, timeout, retries, backoff, emit)
    finally:
        if journal is not None:
            journal.close()
    return records


# ----------------------------------------------------------------------
# inline (workers=1)
# ----------------------------------------------------------------------
def _run_inline(jobs: list[JobSpec], retries: int, backoff: float, emit) -> None:
    for job in jobs:
        allowed = (job.retries if job.retries is not None else retries) + 1
        for attempt in range(1, allowed + 1):
            before = PERF.snapshot()
            t0 = time.perf_counter()
            try:
                with span(SPAN_JOB, **_job_span_attrs(job)):
                    result = execute_job(job)
            except Exception as exc:  # noqa: BLE001 — capture, don't abort the run
                record = {"id": job.id, "status": "failed", "attempt": attempt,
                          "seconds": time.perf_counter() - t0,
                          "error": _error_info(exc),
                          "perf": PERF.delta(before, PERF.snapshot())}
                emit(record)
                if attempt < allowed:
                    time.sleep(backoff * 2 ** (attempt - 1))
                continue
            emit({"id": job.id, "status": "ok", "attempt": attempt,
                  "seconds": time.perf_counter() - t0, "result": result,
                  "perf": PERF.delta(before, PERF.snapshot())})
            break


# ----------------------------------------------------------------------
# worker pool
# ----------------------------------------------------------------------
def _run_pool(jobs: list[JobSpec], workers: int, timeout: float | None,
              retries: int, backoff: float, emit) -> None:
    ctx = _mp_context()
    result_q = ctx.Queue()
    pool = [_WorkerSlot(ctx, result_q) for _ in range(min(workers, max(1, len(jobs))))]
    # (ready_time, plan_order, attempt, job) — sorted pops keep plan order
    # among ready jobs, with backoff delaying retries.
    pending: list[tuple[float, int, int, JobSpec]] = [
        (0.0, i, 1, job) for i, job in enumerate(jobs)
    ]

    def job_allowed(job: JobSpec) -> int:
        return (job.retries if job.retries is not None else retries) + 1

    def job_timeout(job: JobSpec) -> float | None:
        return job.timeout if job.timeout is not None else timeout

    def fail(slot: _WorkerSlot, error: dict, seconds: float) -> None:
        job, attempt = slot.job, slot.attempt
        emit({"id": job.id, "status": "failed", "attempt": attempt,
              "seconds": seconds, "error": error})
        if attempt < job_allowed(job):
            ready = time.monotonic() + backoff * 2 ** (attempt - 1)
            pending.append((ready, len(jobs) + attempt, attempt + 1, job))
        slot.release()

    try:
        while pending or any(s.busy for s in pool):
            now = time.monotonic()

            # 1) dispatch ready jobs to idle, live workers
            pending.sort(key=lambda item: (item[0], item[1]))
            for slot in pool:
                if not pending or pending[0][0] > now:
                    break
                if slot.busy:
                    continue
                if not slot.process.is_alive():  # died while idle — replace
                    slot.kill()
                    pool[pool.index(slot)] = slot = _WorkerSlot(ctx, result_q)
                _, order, attempt, job = pending.pop(0)
                slot.assign(job, attempt, job_timeout(job))

            # 2) collect one result (short poll keeps deadline checks live)
            try:
                envelope = result_q.get(timeout=0.05)
            except queue_mod.Empty:
                envelope = None
            if envelope is not None:
                slot = next((s for s in pool
                             if s.job is not None and s.job.id == envelope["job_id"]
                             and s.attempt == envelope.get("attempt")), None)
                if slot is not None:
                    PERF.merge(envelope.get("perf", {}))
                    TRACER.absorb(envelope.get("trace"))
                    if envelope["ok"]:
                        emit({"id": slot.job.id, "status": "ok",
                              "attempt": slot.attempt,
                              "seconds": envelope["seconds"],
                              "result": envelope["result"],
                              "perf": envelope.get("perf", {})})
                        slot.release()
                    else:
                        fail(slot, envelope["error"], envelope["seconds"])

            # 3) reap timed-out or crashed busy workers
            for i, slot in enumerate(pool):
                if not slot.busy:
                    continue
                timed_out = slot.deadline is not None and time.monotonic() > slot.deadline
                crashed = not slot.process.is_alive()
                if not (timed_out or crashed):
                    continue
                if crashed:
                    code = slot.process.exitcode
                    error = {"type": "WorkerCrashed",
                             "message": f"worker exited with code {code} "
                                        f"while running {slot.job.id}"}
                else:
                    error = {"type": "JobTimeout",
                             "message": f"{slot.job.id} exceeded "
                                        f"{job_timeout(slot.job):.3g}s"}
                slot.kill()
                fail(slot, error, time.monotonic() - slot.started)
                pool[i] = _WorkerSlot(ctx, result_q)
                pool[i].job = None
    finally:
        for slot in pool:
            slot.stop()
