"""ExecutionConfig: one object for every execution-mode option.

Execution options grew organically across the batched-inference and
runner PRs — ``batched=`` on evaluation helpers, ``jobs=``/``resume=``/
``timeout=``/``retries=`` on the experiment drivers, each accepted by a
different subset of entry points. :class:`ExecutionConfig` consolidates
them: every public driver (``run_fidelity_experiment``,
``run_auc_experiment``, ``run_runtime_experiment``) and the CLI accept
the same ``execution=`` object, and the old flat kwargs keep working for
one release through a :func:`DeprecationWarning` shim
(:func:`coerce_execution`).
"""

from __future__ import annotations

import difflib
import warnings
from dataclasses import dataclass, fields, replace
from pathlib import Path

from .errors import ReproError

__all__ = ["ExecutionConfig", "coerce_execution", "reject_unknown_kwargs",
           "accept_legacy_positionals", "resolve_trace_path"]

#: Old flat keyword names accepted (with a DeprecationWarning) by the
#: experiment drivers, mapped to their ExecutionConfig field.
_LEGACY_FIELDS = {
    "batched": "batched",
    "jobs": "jobs",
    "resume": "resume",
    "chunk_size": "chunk_size",
    "timeout": "timeout",
    "retries": "retries",
    "trace": "trace",
}


@dataclass(frozen=True)
class ExecutionConfig:
    """How an explain/experiment request is executed (not *what* it computes).

    Attributes
    ----------
    batched:
        Use the batched masked-forward engine where applicable.
    jobs:
        Worker processes for sharded runs; ``None`` (or 1 with no other
        sharding option) keeps the serial in-process path.
    resume:
        Artifact directory for checkpointed resume (implies the sharded
        path even when ``jobs`` is unset).
    chunk_size:
        Instances per shard job; ``None`` uses the planner default.
    timeout:
        Per-job timeout in seconds (sharded path only).
    retries:
        Per-job retry budget on worker failure.
    trace:
        Trace output: ``True`` writes a trace JSONL + RunManifest next to
        the resume artifact (or a default path), a string/path writes to
        that file, falsy disables tracing.
    """

    batched: bool = True
    jobs: int | None = None
    resume: str | None = None
    chunk_size: int | None = None
    timeout: float | None = None
    retries: int = 1
    trace: bool | str | None = None

    @property
    def sharded(self) -> bool:
        """Whether this config routes through the sharded runner."""
        return self.jobs is not None or self.resume is not None

    @property
    def workers(self) -> int:
        """Worker-process count for the sharded path (defaults to 1)."""
        return self.jobs if self.jobs is not None else 1

    def runner_kwargs(self) -> dict:
        """Keyword arguments for :func:`repro.runner.run_planned_experiment`."""
        return {
            "workers": self.workers,
            "resume": self.resume,
            "chunks": self.chunk_size,
            "timeout": self.timeout,
            "retries": self.retries,
        }


def reject_unknown_kwargs(func_name: str, kwargs: dict,
                          valid: tuple[str, ...]) -> None:
    """Raise :class:`ReproError` naming the nearest valid option.

    ``kwargs`` is whatever remains in a ``**kwargs`` catch-all after the
    recognised names were popped; empty means the call was clean.
    """
    if not kwargs:
        return
    name = next(iter(kwargs))
    close = difflib.get_close_matches(name, valid, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else \
        f" (valid options: {', '.join(sorted(valid))})"
    raise ReproError(f"{func_name}() got an unexpected keyword argument "
                     f"{name!r}{hint}")


def coerce_execution(func_name: str, execution: ExecutionConfig | None,
                     kwargs: dict, *,
                     extra_valid: tuple[str, ...] = ()) -> ExecutionConfig:
    """Fold legacy flat execution kwargs into an :class:`ExecutionConfig`.

    Pops any of ``batched``/``jobs``/``resume``/``chunk_size``/``timeout``/
    ``retries``/``trace`` out of ``kwargs`` with a single
    :class:`DeprecationWarning`, overlaying them on ``execution`` (or a
    default config). Anything left in ``kwargs`` afterwards raises
    :class:`ReproError` via :func:`reject_unknown_kwargs`.
    """
    legacy = {}
    for old, field_name in _LEGACY_FIELDS.items():
        if old in kwargs:
            value = kwargs.pop(old)
            if value is not None:
                legacy[field_name] = value
    if legacy:
        warnings.warn(  # repro: sunset[2.0]
            f"passing {', '.join(sorted(legacy))} directly to {func_name}() "
            f"is deprecated; pass execution=ExecutionConfig(...) instead",
            DeprecationWarning, stacklevel=3,
        )
    valid = tuple(f.name for f in fields(ExecutionConfig)) + \
        ("execution",) + extra_valid
    reject_unknown_kwargs(func_name, kwargs, valid)
    config = execution if execution is not None else ExecutionConfig()
    if legacy:
        config = replace(config, **legacy)
    return config


def accept_legacy_positionals(func_name: str, legacy_args: tuple,
                              names: tuple[str, ...]) -> dict:
    """Map extra positional args to their old parameter names, warning once.

    The keyword-only redesign moved everything after the leading
    positionals behind ``*``; callers still passing them positionally get
    one release of grace with a :class:`DeprecationWarning`.
    """
    if not legacy_args:
        return {}
    if len(legacy_args) > len(names):
        # Mirrors Python's own too-many-positionals TypeError (pinned by
        # tests/obs/test_api_compat.py).
        raise TypeError(  # repro: noqa[RPR012]
            f"{func_name}() takes at most {len(names)} optional positional "
            f"argument{'s' if len(names) != 1 else ''} "
            f"({', '.join(names)}); got {len(legacy_args)}")
    taken = names[:len(legacy_args)]
    warnings.warn(  # repro: sunset[2.0]
        f"passing {', '.join(taken)} positionally to {func_name}() is "
        f"deprecated; pass them as keyword arguments",
        DeprecationWarning, stacklevel=3,
    )
    return dict(zip(taken, legacy_args))


def resolve_trace_path(trace: bool | str | None, resume: str | None,
                       default_name: str) -> Path | None:
    """Where a run's trace JSONL goes, or ``None`` when tracing is off.

    ``trace=True`` lands next to the resume journal when one exists,
    else ``default_name`` in the working directory; a string/path value
    is used verbatim.
    """
    if not trace:
        return None
    if trace is True:
        base = Path(resume).parent if resume else Path(".")
        return base / default_name
    return Path(trace)
