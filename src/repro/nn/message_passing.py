"""Message-passing base layer with per-layer-edge mask support.

The paper's Eq. (6) rewrites message calculation as

    m_ij^l = MSG(h_i^{l-1}, h_j^{l-1}, e_ij^l) * omega[e_ij^l]

i.e. every layer edge carries a scalar multiplier. All convolutions in this
package therefore accept an optional ``edge_mask`` tensor applied to
messages *before* aggregation.

Layer-edge convention
---------------------
GNN layers pass a node's own representation forward as well (GCN's
renormalized self-loop, GIN's ``(1+eps)·h_j`` term, GAT's self-attention).
Flow-based explanation must treat these self-contributions as first-class
layer edges — the paper's qualitative results (Tables VI/VII) contain flows
such as ``31→31→31→28``. We therefore define the layer-edge id space as::

    ids [0, E)      the graph's directed data edges, in edge_index order
    ids [E, E+N)    one self-loop per node, id E+v for node v

Every conv consumes masks of length ``E + N`` in this order, and
:mod:`repro.flows` enumerates flows over the same augmented edge set.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Module, Tensor
from ..errors import ShapeError

# The layer-edge id helpers live with the sparse core (repro.graph builds
# scatter caches from them without importing repro.nn); re-exported here
# because this module documents — and historically owned — the convention.
from ..sparse.structure import augmented_edges as augment_edges  # noqa: F401
from ..sparse.structure import num_layer_edges  # noqa: F401

__all__ = ["GraphConv", "augment_edges", "num_layer_edges"]


class GraphConv(Module):
    """Base class for message-passing layers.

    Subclasses implement :meth:`forward` with the shared signature::

        forward(x, edge_index, num_nodes, edge_mask=None, cache=None) -> Tensor

    where ``edge_mask`` (if given) is a :class:`Tensor` of shape
    ``(E + N,)`` or ``(E + N, 1)`` holding a multiplier per layer edge in
    the convention documented above, and ``cache`` is an optional
    :class:`~repro.sparse.GraphSparseCache` whose compiled plans back
    every gather/scatter in the layer (forward and adjoint). When omitted
    the layer fetches one from the identity-keyed
    :func:`~repro.sparse.edge_cache` memo, so training loops that pass
    the same ``edge_index`` array each epoch never recompile.
    """

    def _check_mask(self, edge_mask: Tensor | None, num_edges: int, num_nodes: int) -> Tensor | None:
        if edge_mask is None:
            return None
        expected = num_layer_edges(num_edges, num_nodes)
        if edge_mask.ndim == 1:
            edge_mask = edge_mask.reshape(-1, 1)
        if edge_mask.shape[0] != expected:
            raise ShapeError(
                f"edge mask has {edge_mask.shape[0]} entries, expected {expected} "
                f"({num_edges} data edges + {num_nodes} self-loops)"
            )
        return edge_mask

    @staticmethod
    def _check_mask_np(edge_mask: np.ndarray | None, batch_size: int,
                       num_edges: int, num_nodes: int) -> np.ndarray | None:
        """Validate a batched ``(B, E+N)`` numpy mask for the fast path."""
        if edge_mask is None:
            return None
        edge_mask = np.asarray(edge_mask, dtype=np.float64)
        expected = num_layer_edges(num_edges, num_nodes)
        if edge_mask.shape != (batch_size, expected):
            raise ShapeError(
                f"batched edge mask has shape {edge_mask.shape}, expected "
                f"({batch_size}, {expected})"
            )
        return edge_mask

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                edge_mask: Tensor | None = None, cache=None) -> Tensor:
        raise NotImplementedError

    def forward_np_batch(self, x: np.ndarray, edge_index: np.ndarray, num_nodes: int,
                         edge_mask: np.ndarray | None = None,
                         structural: bool = False,
                         cache=None) -> np.ndarray:
        """Pure-numpy batched forward over a stack of edge-mask sets.

        Parameters
        ----------
        x:
            ``(N, B, F)`` *node-major* stacked features — the engine keeps
            the batch axis second so scatters reduce to zero-copy CSR
            matmuls and projections to single GEMMs (see
            :mod:`repro.nn.batched`). A zero-stride batch axis marks
            batch-shared features; implementations then compute the shared
            work once.
        edge_mask:
            Optional ``(B, E+N)`` per-layer-edge multipliers, one row per
            batch element (batch-major, as callers build them).
        structural:
            With binary masks, emulate edge *removal* instead of message
            down-weighting (see :mod:`repro.nn.batched`).
        cache:
            Optional :class:`~repro.sparse.GraphSparseCache` for
            ``(edge_index, num_nodes)`` — ``GNN.forward_masked_batch``
            fetches the per-graph cache once and threads it through every
            layer so no scatter structure is rebuilt. Compiled ad hoc when
            omitted.

        Returns ``(N, B, F_out)``. No Tensor/tape objects are allocated —
        this is the ``no_grad`` fast path the perturbation explainers
        batch over.
        """
        raise NotImplementedError
