"""GNN models used as explanation targets.

The paper evaluates 3-layer GCN, GIN and GAT models (GAT with 8 attention
heads) on node- and graph-classification tasks. :class:`GNN` packages the
convolution stack, an optional global pooling readout and a linear
classification head, and exposes the per-layer edge-mask hooks the
explainers drive.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Linear, Module, Tensor, log_softmax, no_grad, softmax
from ..errors import ModelError, ShapeError
from ..graph import Graph, GraphBatch
from ..obs import PERF, span
from ..obs.names import SPAN_MASKED_FORWARD_BATCH, STAGE_MASKED_FORWARD_BATCH
from ..rng import ensure_rng
from ..sparse import feature_csr, sparse_cache
from .gat import GATConv
from .gcn import GCNConv
from .gin import GINConv
from .message_passing import num_layer_edges
from .pooling import global_max_pool, global_mean_pool, global_sum_pool

__all__ = ["GNN", "build_model", "CONV_TYPES"]

CONV_TYPES = ("gcn", "gin", "gat")


class GNN(Module):
    """A multi-layer message-passing classifier.

    Parameters
    ----------
    conv:
        ``"gcn"``, ``"gin"`` or ``"gat"``.
    task:
        ``"node"`` (per-node logits) or ``"graph"`` (pooled logits).
    in_features, hidden, num_classes:
        Input width, hidden width and class count.
    num_layers:
        Number of message-passing layers (paper: 3).
    heads:
        Attention heads for GAT (paper: 8); per-head width is
        ``hidden // heads``.
    pool:
        Graph-task readout: ``"sum"`` (default; counts substructures, the
        GIN-paper recommendation), ``"mean"`` or ``"max"``.
    rng:
        Seed or generator for all weight initialization.
    """

    def __init__(self, conv: str, task: str, in_features: int, hidden: int,
                 num_classes: int, num_layers: int = 3, heads: int = 8,
                 pool: str = "sum",
                 rng: int | np.random.Generator | None = None):
        super().__init__()
        if conv not in CONV_TYPES:
            raise ModelError(f"unknown conv type {conv!r}; expected one of {CONV_TYPES}")
        if task not in ("node", "graph"):
            raise ModelError(f"unknown task {task!r}; expected 'node' or 'graph'")
        if num_layers < 1:
            raise ModelError("num_layers must be >= 1")
        if pool not in ("sum", "mean", "max"):
            raise ModelError(f"unknown pool {pool!r}; expected sum/mean/max")
        rng = ensure_rng(rng)

        self.conv_name = conv
        self.task = task
        self.pool = pool
        self.in_features = in_features
        self.hidden = hidden
        self.num_classes = num_classes
        self.num_layers = num_layers
        self.heads = heads

        self.convs = []
        dims = [in_features] + [hidden] * num_layers
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            if conv == "gcn":
                # Graph-level targets keep raw sum aggregation so degree
                # information survives pooling (see GCNConv docstring).
                self.convs.append(GCNConv(d_in, d_out, normalize=(task == "node"), rng=rng))
            elif conv == "gin":
                self.convs.append(GINConv(d_in, d_out, rng=rng))
            else:
                if hidden % heads != 0:
                    raise ModelError(f"hidden={hidden} must be divisible by heads={heads}")
                self.convs.append(
                    GATConv(d_in, hidden // heads, heads=heads, concat_heads=True, rng=rng)
                )
        self.head = Linear(hidden, num_classes, rng=rng)

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------
    def forward(self, x, edge_index: np.ndarray, num_nodes: int,
                edge_masks: list[Tensor] | None = None,
                batch: np.ndarray | None = None,
                num_graphs: int | None = None,
                cache=None) -> Tensor:
        """Compute logits.

        Parameters
        ----------
        x:
            ``(N, F)`` features (array or Tensor).
        edge_index:
            ``(2, E)`` directed edges (no self-loops; layers add their own).
        num_nodes:
            Node count ``N``.
        edge_masks:
            Optional per-layer masks, one Tensor of shape ``(E + N,)`` per
            layer (see :mod:`repro.nn.message_passing` for the id space).
        batch, num_graphs:
            For graph tasks, node→graph assignment and graph count.
        cache:
            Optional :class:`~repro.sparse.GraphSparseCache` shared by all
            layers — ``forward_graph``/``forward_batch`` thread the
            per-graph cache so every epoch of a training loop reuses one
            compiled scatter plan per direction.
        """
        PERF.single_forwards += 1
        if isinstance(x, Tensor):
            h = x
        else:
            h = Tensor(x)
            # Bag-of-words feature matrices get a memoized CSR twin so the
            # first layer's weight GEMM (and its adjoint) run sparse.
            twin = feature_csr(h.data)
            if twin is not None:
                h.annotate_sparse(*twin)
        if edge_masks is not None and len(edge_masks) != self.num_layers:
            raise ModelError(
                f"expected {self.num_layers} edge masks, got {len(edge_masks)}"
            )
        embeddings = []
        for l, conv in enumerate(self.convs):
            mask = edge_masks[l] if edge_masks is not None else None
            h = conv(h, edge_index, num_nodes, edge_mask=mask, cache=cache)
            h = h.relu()
            embeddings.append(h)
        self._last_embeddings = embeddings

        if self.task == "graph":
            if batch is None:
                batch = np.zeros(num_nodes, dtype=np.int64)
                num_graphs = 1
            if num_graphs is None:
                num_graphs = int(batch.max()) + 1
            pool_fn = {"sum": global_sum_pool, "mean": global_mean_pool,
                       "max": global_max_pool}[self.pool]
            h = pool_fn(h, batch, num_graphs)
        return self.head(h)

    def forward_graph(self, graph: Graph, edge_masks: list[Tensor] | None = None) -> Tensor:
        """Logits for a single :class:`Graph` (node or graph task)."""
        return self.forward(graph.x, graph.edge_index, graph.num_nodes,
                            edge_masks=edge_masks, cache=sparse_cache(graph))

    def forward_batch(self, batch: GraphBatch, edge_masks: list[Tensor] | None = None) -> Tensor:
        """Logits for a :class:`GraphBatch` (graph task)."""
        if self.task != "graph":
            raise ModelError("forward_batch is only valid for graph-classification models")
        return self.forward(
            batch.x, batch.edge_index, batch.num_nodes,
            edge_masks=edge_masks, batch=batch.batch, num_graphs=batch.num_graphs,
            cache=sparse_cache(batch),
        )

    # ------------------------------------------------------------------
    # batched masked inference (pure numpy, no tape)
    # ------------------------------------------------------------------
    def forward_masked_batch(self, graph: Graph, mask_stack: np.ndarray | None = None,
                             *, structural: bool = False,
                             x_stack: np.ndarray | None = None) -> np.ndarray:
        """Logits for a *stack* of per-layer edge-mask sets in one pass.

        Evaluates ``B`` mask (and/or feature) variations of ``graph`` under
        the shared frozen weights by broadcasting a leading batch axis —
        the vectorized equivalent of ``B`` calls to :meth:`forward_graph`,
        without allocating a single Tensor or tape node.

        Parameters
        ----------
        graph:
            The instance being perturbed.
        mask_stack:
            ``(B, L, E+N)`` per-layer edge masks (the layer-edge id space of
            :mod:`repro.nn.message_passing`), or ``None`` for unmasked
            forwards (then ``x_stack`` sets ``B``).
        structural:
            Treat binary masks as edge *removal* (recomputed GCN degree
            normalization, attention renormalized over surviving edges) —
            row ``b`` then equals
            ``forward_graph(graph.with_edges(mask_stack[b, 0, :E] > 0))``.
        x_stack:
            Optional ``(B, N, F)`` perturbed node-feature stacks (e.g.
            PGM-Explainer's perturbation tables). Defaults to broadcasting
            ``graph.x``.

        Returns
        -------
        ``(B, rows, C)`` logits; ``rows`` is ``N`` for node tasks and ``1``
        for graph tasks.
        """
        if mask_stack is None and x_stack is None:
            raise ModelError("forward_masked_batch needs mask_stack and/or x_stack")
        num_nodes = graph.num_nodes
        width = num_layer_edges(graph.num_edges, num_nodes)
        if mask_stack is not None:
            mask_stack = np.asarray(mask_stack, dtype=np.float64)
            if mask_stack.ndim != 3 or mask_stack.shape[1:] != (self.num_layers, width):
                raise ShapeError(
                    f"mask_stack must have shape (B, {self.num_layers}, {width}), "
                    f"got {mask_stack.shape}"
                )
        if x_stack is not None:
            x_stack = np.asarray(x_stack, dtype=np.float64)
            if x_stack.ndim != 3 or x_stack.shape[1:] != graph.x.shape:
                raise ShapeError(
                    f"x_stack must have shape (B, {num_nodes}, {graph.num_features}), "
                    f"got {x_stack.shape}"
                )
        if mask_stack is not None and x_stack is not None \
                and mask_stack.shape[0] != x_stack.shape[0]:
            raise ShapeError(
                f"mask_stack batch {mask_stack.shape[0]} != x_stack batch {x_stack.shape[0]}"
            )
        B = mask_stack.shape[0] if mask_stack is not None else x_stack.shape[0]
        PERF.batched_forwards += 1
        PERF.batched_rows += B

        with PERF.stage(STAGE_MASKED_FORWARD_BATCH), \
                span(SPAN_MASKED_FORWARD_BATCH, rows=B):
            # The engine runs node-major — hidden state (N, B, F) — so every
            # scatter is a zero-copy CSR matmul and every projection a single
            # GEMM (see repro.nn.batched). Only the final logits transpose
            # back to the caller's (B, rows, C) convention. The per-graph
            # scatter plan is compiled once (and cached on the graph across
            # calls); every layer and mask variant dispatches over it.
            cache = sparse_cache(graph)
            if x_stack is not None:
                h = np.ascontiguousarray(x_stack.transpose(1, 0, 2))  # (N, B, F)
            else:
                # Zero-stride batch axis: convs detect this and compute
                # batch-shared work once.
                h = np.broadcast_to(graph.x[:, None, :],
                                    (num_nodes, B, graph.x.shape[1]))
            for l, conv in enumerate(self.convs):
                mask = mask_stack[:, l, :] if mask_stack is not None else None
                h = conv.forward_np_batch(h, graph.edge_index, num_nodes,
                                          edge_mask=mask, structural=structural,
                                          cache=cache)
                h = np.maximum(h, 0.0)

            if self.task == "graph":
                pooled = {"sum": np.sum, "mean": np.mean, "max": np.max}[self.pool](
                    h, axis=0
                )  # (B, F) — the whole stack is one graph
                out = pooled @ self.head.weight.data
                if self.head.bias is not None:
                    out = out + self.head.bias.data
                return out[:, None, :]
            out = h.reshape(-1, h.shape[-1]) @ self.head.weight.data
            if self.head.bias is not None:
                out = out + self.head.bias.data
            out = out.reshape(num_nodes, B, -1).transpose(1, 0, 2)
        return out

    def predict_proba_batch(self, graph: Graph, mask_stack: np.ndarray | None = None,
                            *, structural: bool = False,
                            x_stack: np.ndarray | None = None) -> np.ndarray:
        """Class probabilities for a mask/feature stack: ``(B, rows, C)``."""
        logits = self.forward_masked_batch(graph, mask_stack, structural=structural,
                                           x_stack=x_stack)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    # ------------------------------------------------------------------
    # inference helpers
    # ------------------------------------------------------------------
    def predict_proba(self, graph: Graph) -> np.ndarray:
        """Class probabilities without touching the tape.

        Shape ``(N, C)`` for node tasks, ``(1, C)`` for graph tasks.
        """
        with no_grad():
            logits = self.forward_graph(graph)
            return softmax(logits, axis=-1).numpy()

    def predict(self, graph: Graph) -> np.ndarray:
        """Argmax class per node (node task) or per graph (graph task)."""
        return self.predict_proba(graph).argmax(axis=-1)

    def log_prob(self, graph: Graph, edge_masks: list[Tensor] | None = None) -> Tensor:
        """Differentiable log-probabilities (used by mask-learning losses)."""
        return log_softmax(self.forward_graph(graph, edge_masks=edge_masks), axis=-1)

    def node_embeddings(self, graph: Graph) -> list[np.ndarray]:
        """Per-layer node embeddings from a plain forward pass (no grad)."""
        with no_grad():
            self.forward_graph(graph)
            return [e.numpy().copy() for e in self._last_embeddings]

    def layer_edge_count(self, graph: Graph) -> int:
        """Size of the per-layer mask vector for ``graph``."""
        return num_layer_edges(graph.num_edges, graph.num_nodes)

    def clone(self) -> "GNN":
        """Deep-copied model with identical weights."""
        twin = GNN(self.conv_name, self.task, self.in_features, self.hidden,
                   self.num_classes, num_layers=self.num_layers, heads=self.heads,
                   pool=self.pool)
        twin.load_state_dict(self.state_dict())
        return twin

    def __repr__(self) -> str:
        return (
            f"GNN(conv={self.conv_name!r}, task={self.task!r}, layers={self.num_layers}, "
            f"in={self.in_features}, hidden={self.hidden}, classes={self.num_classes})"
        )


def build_model(conv: str, task: str, in_features: int, num_classes: int,
                hidden: int = 32, num_layers: int = 3,
                rng: int | np.random.Generator | None = None) -> GNN:
    """Factory with the paper's defaults (3 layers; GAT gets 8 heads)."""
    return GNN(conv, task, in_features, hidden, num_classes,
               num_layers=num_layers, heads=8 if conv == "gat" else 1, rng=rng)
