"""Graph Attention Network layer (Veličković et al., 2018).

Multi-head additive attention over the self-loop-augmented edge set. Layer
edge masks multiply the attention-weighted messages (Eq. 6), which keeps
the attention normalization itself intact — the mask controls how much of
each (already normalized) message is delivered.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Parameter, Tensor, concat, segment_softmax
from ..autograd.init import glorot_uniform, zeros
from ..rng import ensure_rng
from ..sparse import GraphSparseCache, edge_cache
from .message_passing import GraphConv

__all__ = ["GATConv"]


class GATConv(GraphConv):
    """One GAT layer with ``heads`` attention heads.

    Parameters
    ----------
    in_features:
        Input channel width.
    out_features:
        Output width *per head*.
    heads:
        Number of attention heads (the paper uses 8).
    concat_heads:
        Concatenate head outputs (hidden layers) or average them (output
        layer), as in the original architecture.
    negative_slope:
        LeakyReLU slope for attention logits.
    rng:
        Seed or generator for initialization.
    """

    def __init__(self, in_features: int, out_features: int, heads: int = 8,
                 concat_heads: bool = True, negative_slope: float = 0.2,
                 rng: int | np.random.Generator | None = None):
        super().__init__()
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.heads = heads
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        # One (in, out) projection per head, stored as a single matrix.
        self.weight = Parameter(
            glorot_uniform((in_features, heads * out_features), rng), name="weight"
        )
        self.att_src = Parameter(glorot_uniform((heads, out_features), rng), name="att_src")
        self.att_dst = Parameter(glorot_uniform((heads, out_features), rng), name="att_dst")
        bias_dim = heads * out_features if concat_heads else out_features
        self.bias = Parameter(zeros((bias_dim,)), name="bias")

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                edge_mask: Tensor | None = None,
                cache: GraphSparseCache | None = None) -> Tensor:
        if cache is None:
            cache = edge_cache(edge_index, num_nodes)
        src, dst = cache.src, cache.dst
        src_plan, dst_plan = cache.src_plan, cache.dst_plan
        edge_mask = self._check_mask(edge_mask, edge_index.shape[1], num_nodes)
        num_aug = src.shape[0]

        h = (x @ self.weight).reshape(num_nodes, self.heads, self.out_features)
        # Attention logits: a_src·h_i + a_dst·h_j per head.
        alpha_src = (h * self.att_src).sum(axis=-1)  # (N, H)
        alpha_dst = (h * self.att_dst).sum(axis=-1)  # (N, H)
        logits = (alpha_src.gather_rows(src, plan=src_plan)
                  + alpha_dst.gather_rows(dst, plan=dst_plan)).leaky_relu(
            self.negative_slope
        )  # (num_aug, H)
        attention = segment_softmax(logits, dst, num_nodes, plan=dst_plan)  # (num_aug, H)

        messages = h.gather_rows(src, plan=src_plan)  # (num_aug, H, F)
        messages = messages * attention.reshape(num_aug, self.heads, 1)
        if edge_mask is not None:
            messages = messages * edge_mask.reshape(num_aug, 1, 1)
        out = messages.scatter_add(dst, num_nodes, plan=dst_plan)  # (N, H, F)

        if self.concat_heads:
            out = out.reshape(num_nodes, self.heads * self.out_features)
        else:
            out = out.mean(axis=1)
        return out + self.bias

    def forward_np_batch(self, x: np.ndarray, edge_index: np.ndarray, num_nodes: int,
                         edge_mask: np.ndarray | None = None,
                         structural: bool = False,
                         cache: GraphSparseCache | None = None) -> np.ndarray:
        from .batched import scatter_edge_major, segment_softmax_edge_major

        if cache is None:
            cache = GraphSparseCache(edge_index, num_nodes)
        src, dst, plan = cache.src, cache.dst, cache.dst_plan
        B = x.shape[1]
        edge_mask = self._check_mask_np(edge_mask, B, edge_index.shape[1], num_nodes)
        mask_t = edge_mask.T if edge_mask is not None else None   # (A, B) view

        shared_x = x.strides[1] == 0
        if shared_x:
            # Batch-broadcast features: one projection / attention-logit
            # computation shared by all rows (batch axis kept at size 1;
            # the mask multiplies below re-expand it).
            h = (x[:, 0, :] @ self.weight.data).reshape(
                num_nodes, 1, self.heads, self.out_features
            )
        else:
            h = (x.reshape(-1, x.shape[-1]) @ self.weight.data).reshape(
                num_nodes, B, self.heads, self.out_features
            )
        alpha_src = (h * self.att_src.data).sum(axis=-1)   # (N, B', H)
        alpha_dst = (h * self.att_dst.data).sum(axis=-1)   # (N, B', H)
        logits = alpha_src[src] + alpha_dst[dst]           # (A, B', H)
        logits = np.where(logits > 0, logits, logits * self.negative_slope)
        # Structural removal renormalizes attention over surviving edges;
        # Eq. (6) masking keeps the normalization intact.
        weights = mask_t if (structural and edge_mask is not None) else None
        attention = segment_softmax_edge_major(logits, dst, num_nodes,
                                               weights=weights, plan=plan)

        messages = h[src] * attention[:, :, :, None]       # (A, B', H, F)
        if edge_mask is not None and not structural:
            messages = messages * mask_t[:, :, None, None]
        out = scatter_edge_major(messages, dst, num_nodes, plan=plan)  # (N, B', H, F)
        if out.shape[1] != B:
            out = np.broadcast_to(out, (num_nodes, B) + out.shape[2:])

        if self.concat_heads:
            out = out.reshape(num_nodes, B, self.heads * self.out_features)
        else:
            out = out.mean(axis=2)
        return out + self.bias.data

    def __repr__(self) -> str:
        return (
            f"GATConv({self.in_features}, {self.out_features}, heads={self.heads}, "
            f"concat={self.concat_heads})"
        )
