"""Link prediction substrate.

The paper positions message-passing GNNs as serving node classification,
graph classification *and link prediction* (§II, [55]); its evaluation
covers the first two. This module supplies the third task so flow
explanations of predicted links (see :class:`repro.core.LinkRevelio`) have
a target: a GNN encoder with a dot-product decoder, trained with negative
sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Adam, Module, Tensor, no_grad
from ..errors import ModelError
from ..graph import Graph
from ..rng import ensure_rng
from ..sparse import sparse_cache
from .gat import GATConv
from .gcn import GCNConv
from .gin import GINConv
from .models import CONV_TYPES

__all__ = ["LinkPredictor", "LinkTrainResult", "train_link_predictor",
           "sample_negative_edges"]


class LinkPredictor(Module):
    """GNN encoder + dot-product decoder for edge scoring.

    ``score(u, v) = σ(z_u · z_v)`` where ``z`` are the encoder's final
    node embeddings. The encoder layers accept the same per-layer edge
    masks as the classification models, which is what makes flow
    explanation of a link possible.

    Parameters
    ----------
    conv:
        ``"gcn"``, ``"gin"`` or ``"gat"``.
    in_features, hidden:
        Input width and embedding width.
    num_layers:
        Encoder depth (default 3, matching the paper's targets).
    """

    def __init__(self, conv: str, in_features: int, hidden: int,
                 num_layers: int = 3, heads: int = 4,
                 rng: int | np.random.Generator | None = None):
        super().__init__()
        if conv not in CONV_TYPES:
            raise ModelError(f"unknown conv type {conv!r}; expected one of {CONV_TYPES}")
        rng = ensure_rng(rng)
        self.conv_name = conv
        self.in_features = in_features
        self.hidden = hidden
        self.num_layers = num_layers
        self.task = "link"

        self.convs = []
        dims = [in_features] + [hidden] * num_layers
        for d_in, d_out in zip(dims[:-1], dims[1:]):
            if conv == "gcn":
                self.convs.append(GCNConv(d_in, d_out, rng=rng))
            elif conv == "gin":
                self.convs.append(GINConv(d_in, d_out, rng=rng))
            else:
                if hidden % heads != 0:
                    raise ModelError(f"hidden={hidden} must divide heads={heads}")
                self.convs.append(GATConv(d_in, hidden // heads, heads=heads, rng=rng))

    # ------------------------------------------------------------------
    def encode(self, graph: Graph, edge_masks: list[Tensor] | None = None) -> Tensor:
        """Node embeddings ``(N, hidden)`` under optional layer masks."""
        if edge_masks is not None and len(edge_masks) != self.num_layers:
            raise ModelError(f"expected {self.num_layers} edge masks, got {len(edge_masks)}")
        # Thread the graph-attached cache (like the classification models)
        # rather than letting each conv fall back to the bare-array memo:
        # sampled subgraphs preload this cache's degree vector with the
        # full graph's values, which is what makes the local forward exact.
        cache = sparse_cache(graph)
        h = Tensor(graph.x)
        for l, conv in enumerate(self.convs):
            mask = edge_masks[l] if edge_masks is not None else None
            h = conv(h, graph.edge_index, graph.num_nodes, edge_mask=mask,
                     cache=cache).relu()
        return h

    def link_logits(self, graph: Graph, pairs: np.ndarray,
                    edge_masks: list[Tensor] | None = None) -> Tensor:
        """Raw dot-product scores for node ``pairs`` of shape ``(P, 2)``."""
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        z = self.encode(graph, edge_masks=edge_masks)
        return (z.gather_rows(pairs[:, 0]) * z.gather_rows(pairs[:, 1])).sum(axis=1)

    def forward(self, graph: Graph, pairs: np.ndarray,
                edge_masks: list[Tensor] | None = None) -> Tensor:
        return self.link_logits(graph, pairs, edge_masks=edge_masks)

    def predict_proba(self, graph: Graph, pairs: np.ndarray) -> np.ndarray:
        """Link probabilities for ``pairs``, shape ``(P,)``."""
        with no_grad():
            return self.link_logits(graph, pairs).sigmoid().numpy().copy()

    def __repr__(self) -> str:
        return (f"LinkPredictor(conv={self.conv_name!r}, layers={self.num_layers}, "
                f"hidden={self.hidden})")


def sample_negative_edges(graph: Graph, num: int,
                          rng: int | np.random.Generator | None = 0) -> np.ndarray:
    """Sample ``num`` node pairs that are not edges (and not self-pairs)."""
    rng = ensure_rng(rng)
    existing = set(zip(graph.src.tolist(), graph.dst.tolist()))
    out = []
    attempts = 0
    while len(out) < num and attempts < 100 * (num + 1):
        attempts += 1
        u, v = rng.integers(graph.num_nodes, size=2)
        if u != v and (int(u), int(v)) not in existing:
            out.append((int(u), int(v)))
    return np.array(out, dtype=np.int64).reshape(-1, 2)


@dataclass
class LinkTrainResult:
    """Outcome of link-predictor training."""

    train_auc: float
    test_auc: float
    epochs_run: int

    def __repr__(self) -> str:
        return (f"LinkTrainResult(train_auc={self.train_auc:.3f}, "
                f"test_auc={self.test_auc:.3f}, epochs={self.epochs_run})")


def train_link_predictor(model: LinkPredictor, graph: Graph, epochs: int = 100,
                         lr: float = 0.01, test_fraction: float = 0.15,
                         rng: int | np.random.Generator | None = 0,
                         verbose: bool = False) -> LinkTrainResult:
    """Train with negative sampling; held-out positive edges score test AUC.

    Held-out edges are removed from the message-passing graph during both
    training and evaluation (the standard transductive split).
    """
    from ..eval.auc import roc_auc

    rng = ensure_rng(rng)
    num_test = max(1, int(graph.num_edges * test_fraction))
    order = rng.permutation(graph.num_edges)
    test_edges = order[:num_test]
    keep = np.ones(graph.num_edges, dtype=bool)
    keep[test_edges] = False
    train_graph = graph.with_edges(keep)

    test_pos = graph.edge_index[:, test_edges].T
    test_neg = sample_negative_edges(graph, num_test, rng=rng)

    train_pos_all = train_graph.edge_index.T
    optimizer = Adam(model.parameters(), lr=lr)
    epochs_run = 0
    for epoch in range(epochs):
        epochs_run = epoch + 1
        optimizer.zero_grad()
        n_pos = min(256, train_pos_all.shape[0])
        pos = train_pos_all[rng.choice(train_pos_all.shape[0], n_pos, replace=False)]
        neg = sample_negative_edges(train_graph, n_pos, rng=rng)
        pairs = np.concatenate([pos, neg])
        labels = np.concatenate([np.ones(len(pos)), np.zeros(len(neg))])

        logits = model.link_logits(train_graph, pairs)
        probs = logits.sigmoid().clip(1e-12, 1 - 1e-12)
        loss = -(Tensor(labels) * probs.log()
                 + Tensor(1.0 - labels) * (1.0 - probs).log()).mean()
        loss.backward()
        optimizer.step()
        if verbose and epoch % 20 == 0:
            print(f"epoch {epoch:4d}  loss {loss.item():.4f}")

    model.eval()
    n_tr = min(512, len(train_pos_all))
    train_pairs = np.concatenate([
        train_pos_all[:n_tr], sample_negative_edges(train_graph, n_tr, rng=rng)
    ])
    train_scores = model.predict_proba(train_graph, train_pairs)
    train_labels = np.concatenate([np.ones(n_tr), np.zeros(n_tr)])
    test_pairs = np.concatenate([test_pos, test_neg])
    test_labels = np.concatenate([np.ones(len(test_pos)), np.zeros(len(test_neg))])
    test_scores = model.predict_proba(train_graph, test_pairs)
    return LinkTrainResult(
        train_auc=roc_auc(train_labels.astype(bool), train_scores),
        test_auc=roc_auc(test_labels.astype(bool), test_scores),
        epochs_run=epochs_run,
    )
