"""Shared primitives for the batched masked-forward fast path.

The mask-perturbation explainers (FlowX's sampled-Shapley stage, GNN-LRP's
finite-difference stencils, SubgraphX rollouts, fidelity sparsity grids)
evaluate the *same frozen model* under hundreds of mask variations. The
serial path pays Tensor/tape construction per variation; the fast path here
broadcasts a leading batch axis ``B`` over shared weights and evaluates the
whole stack in a handful of BLAS / sparse-matmul calls, entirely in numpy
(no autograd objects are allocated).

Every scatter and segment reduction dispatches through the
:mod:`repro.sparse` kernel registry over a :class:`~repro.sparse.SegmentPlan`
— pass ``plan=`` (the convs pass the per-graph cached plan from
:func:`repro.sparse.sparse_cache`) to skip the per-call index compilation
that used to dominate these helpers; without it a throwaway plan is
compiled, which keeps the old signatures working.

Two masking semantics are supported, selected per call:

``structural=False`` (default)
    The paper's Eq. (6): masks multiply messages *after* any normalization
    — GCN renormalization and GAT attention are computed on the intact
    graph. This matches ``GNN.forward_graph(..., edge_masks=...)``.

``structural=True``
    Binary masks emulate *edge removal*: GCN degree normalization is
    recomputed from the masked adjacency and GAT attention is normalized
    over surviving edges only, so a 0/1 mask row reproduces
    ``Graph.with_edges(keep)`` bit-for-bit in expectation (≤ 1e-12 drift).
    This is what fidelity subgraph sweeps and SubgraphX coalitions need.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..sparse import SegmentPlan, kernel

__all__ = [
    "scatter_rows_np",
    "scatter_edge_major",
    "gather_scatter_edge_major",
    "segment_softmax_np",
    "segment_softmax_edge_major",
    "apply_dense_np",
]


def _resolve_plan(index: np.ndarray, num_rows: int,
                  plan: SegmentPlan | None) -> SegmentPlan:
    if plan is None:
        return SegmentPlan(index, num_rows)
    plan.check_shape(index.shape[0], num_rows)
    return plan


def scatter_rows_np(values: np.ndarray, index: np.ndarray, num_rows: int,
                    plan: SegmentPlan | None = None) -> np.ndarray:
    """Batched scatter-add: sum ``values[:, i]`` into row ``index[i]``.

    Parameters
    ----------
    values:
        ``(B, A, *tail)`` stacked per-edge payloads.
    index:
        ``(A,)`` destination row per payload (shared across the batch).
    num_rows:
        Output row count ``N``.
    plan:
        Optional precompiled :class:`SegmentPlan` for ``(index, num_rows)``.

    Returns
    -------
    ``(B, N, *tail)`` aggregated rows.

    Dispatches one ``scatter_add`` kernel call on the payloads flattened to
    ``(A, B·∏tail)`` — sparse-BLAS speed instead of ``np.add.at``'s
    per-element loop, but note the batch-major layout costs two transpose
    copies; the convs use :func:`scatter_edge_major` to avoid them.
    """
    index = np.asarray(index, dtype=np.int64)
    B, A = values.shape[0], values.shape[1]
    if index.shape[0] != A:
        raise ShapeError(f"scatter index length {index.shape[0]} != payload rows {A}")
    tail = values.shape[2:]
    width = int(np.prod(tail)) if tail else 1
    if A == 0:
        return np.zeros((B, num_rows) + tail)
    plan = _resolve_plan(index, num_rows, plan)
    flat = np.ascontiguousarray(values.reshape(B, A, width).transpose(1, 0, 2)).reshape(
        A, B * width
    )
    out = kernel("scatter_add")(plan, flat)  # (N, B*width)
    return np.ascontiguousarray(
        out.reshape(num_rows, B, width).transpose(1, 0, 2)
    ).reshape((B, num_rows) + tail)


def scatter_edge_major(values: np.ndarray, index: np.ndarray, num_rows: int,
                       plan: SegmentPlan | None = None) -> np.ndarray:
    """Edge-major scatter-add: sum ``values[i]`` into row ``index[i]``.

    The convs keep their hidden state node-major — ``(N, B, F)`` rather than
    ``(B, N, F)`` — precisely so this reduces to one ``scatter_add`` kernel
    call on a zero-copy ``(A, B·F)`` reshape. The batch-major layout needs
    two full transpose copies per scatter (see :func:`scatter_rows_np`),
    which dominates the engine's runtime at explainer batch sizes.

    Parameters
    ----------
    values:
        ``(A, *tail)`` per-edge payloads, edge axis leading.
    index:
        ``(A,)`` destination row per payload.
    num_rows:
        Output row count ``N``.
    plan:
        Optional precompiled :class:`SegmentPlan` for ``(index, num_rows)``
        — the cached per-graph plan makes this the no-setup hot path.

    Returns
    -------
    ``(N, *tail)`` aggregated rows.
    """
    index = np.asarray(index, dtype=np.int64)
    A = values.shape[0]
    if index.shape[0] != A:
        raise ShapeError(f"scatter index length {index.shape[0]} != payload rows {A}")
    tail = values.shape[1:]
    width = int(np.prod(tail)) if tail else 1
    if A == 0:
        return np.zeros((num_rows,) + tail)
    plan = _resolve_plan(index, num_rows, plan)
    flat = np.ascontiguousarray(values).reshape(A, width)  # view when contiguous
    out = kernel("scatter_add")(plan, flat)
    return out.reshape((num_rows,) + tail)


def gather_scatter_edge_major(dense: np.ndarray, cols: np.ndarray,
                              weights: np.ndarray, index: np.ndarray,
                              num_rows: int,
                              plan: SegmentPlan | None = None) -> np.ndarray:
    """Fused gather → edge-weight → scatter (the message-passing inner loop).

    ``out[r, b] = Σ_{i: index[i]=r} weights[i, b] · dense[cols[i], b]`` —
    i.e. gather source-node rows, scale each by its per-edge coefficient
    (normalization × mask), and sum into destination rows, without ever
    materializing the ``(A, B, K)`` message tensor. On the scipy backend
    this is one weighted CSR × dense product per mask row.

    Parameters
    ----------
    dense:
        ``(M, K)`` batch-shared node payloads, or ``(M, B, K)`` per-row
        payloads.
    cols:
        ``(A,)`` source row in ``dense`` per edge.
    weights:
        ``(A, Bw)`` per-edge coefficients; ``Bw`` may be 1 for batch-shared
        coefficients.
    index:
        ``(A,)`` destination row per edge.
    num_rows:
        Output row count ``N``.
    plan:
        Optional precompiled :class:`SegmentPlan` for ``(index, num_rows)``.

    Returns
    -------
    ``(N, max(Bw, B), K)`` aggregated rows.
    """
    cols = np.asarray(cols, dtype=np.int64)
    index = np.asarray(index, dtype=np.int64)
    A = index.shape[0]
    if cols.shape[0] != A:
        raise ShapeError(f"gather index length {cols.shape[0]} != scatter "
                         f"index length {A}")
    if weights.shape[0] != A:
        raise ShapeError(f"edge weights rows {weights.shape[0]} != edge count {A}")
    B = max(weights.shape[1], dense.shape[1] if dense.ndim == 3 else 1)
    if A == 0:
        return np.zeros((num_rows, B, dense.shape[-1]))
    plan = _resolve_plan(index, num_rows, plan)
    return kernel("gather_scatter")(plan, cols, weights, dense)


def _segment_max(plan: SegmentPlan, values: np.ndarray) -> np.ndarray:
    """Segment max with empty segments mapped to 0 (softmax shift semantics)."""
    seg_max = kernel("segment_max")(plan, values)
    seg_max[~np.isfinite(seg_max)] = 0.0
    return seg_max


def segment_softmax_np(scores: np.ndarray, segment_ids: np.ndarray, num_segments: int,
                       weights: np.ndarray | None = None) -> np.ndarray:
    """Batched per-segment softmax (GAT attention normalization).

    Parameters
    ----------
    scores:
        ``(B, A, H)`` attention logits.
    segment_ids:
        ``(A,)`` destination node per edge.
    num_segments:
        Node count ``N``.
    weights:
        Optional ``(B, A)`` multipliers applied to the *exponentials* before
        normalization — with binary weights this renormalizes attention over
        the surviving edges only (structural edge removal).
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    B, A, H = scores.shape
    # Per-segment max for numerical stability; computed over all edges
    # (subtracting any constant leaves softmax unchanged). The flat id
    # space is batch-dependent, so the plan is per-call here — the
    # node-major engine uses segment_softmax_edge_major instead.
    flat_ids = (np.arange(B)[:, None] * num_segments + segment_ids[None, :]).reshape(-1)
    flat_plan = SegmentPlan(flat_ids, B * num_segments)
    seg_max = _segment_max(flat_plan, scores.reshape(B * A, H))
    shifted = scores - seg_max.reshape(B, num_segments, H)[:, segment_ids, :]
    exp = np.exp(shifted)
    if weights is not None:
        exp = exp * weights[:, :, None]
    denom = scatter_rows_np(exp, segment_ids, num_segments)  # (B, N, H)
    denom = np.maximum(denom, 1e-300)  # isolated segments: avoid 0/0
    return exp / denom[:, segment_ids, :]


def segment_softmax_edge_major(scores: np.ndarray, segment_ids: np.ndarray,
                               num_segments: int,
                               weights: np.ndarray | None = None,
                               plan: SegmentPlan | None = None) -> np.ndarray:
    """Edge-major per-segment softmax (GAT attention, node-major engine).

    Parameters
    ----------
    scores:
        ``(A, B, H)`` attention logits, edge axis leading. ``B`` may be 1
        for batch-shared logits; ``weights`` re-expands the batch axis.
    segment_ids:
        ``(A,)`` destination node per edge.
    num_segments:
        Node count ``N``.
    weights:
        Optional ``(A, B)`` multipliers applied to the *exponentials* before
        normalization — binary weights renormalize attention over the
        surviving edges only (structural edge removal).
    plan:
        Optional precompiled :class:`SegmentPlan` for
        ``(segment_ids, num_segments)``; shared by the max, the denominator
        scatter and the caller's message aggregation.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    A, B, H = scores.shape
    plan = _resolve_plan(segment_ids, num_segments, plan)
    seg_max = _segment_max(plan, scores.reshape(A, B * H))
    shifted = scores - seg_max.reshape(num_segments, B, H)[segment_ids]
    exp = np.exp(shifted)
    if weights is not None:
        exp = exp * weights[:, :, None]
    denom = scatter_edge_major(exp, segment_ids, num_segments, plan=plan)  # (N, B, H)
    denom = np.maximum(denom, 1e-300)  # isolated segments: avoid 0/0
    return exp / denom[segment_ids]


def relu_np(x: np.ndarray) -> np.ndarray:
    """Elementwise rectifier on arrays."""
    return np.maximum(x, 0.0)


def apply_dense_np(module, x: np.ndarray) -> np.ndarray:
    """Apply a dense (non-graph) module stack to a batched numpy array.

    Supports the layer types GNN internals use (:class:`Linear`,
    :class:`ReLU`, :class:`Tanh`, :class:`Sigmoid`, :class:`Sequential`,
    :class:`MLP`), reading weights directly so no Tensor is allocated.
    """
    from ..autograd.layers import MLP, Linear, ReLU, Sequential, Sigmoid, Tanh

    if isinstance(module, Linear):
        # Flatten leading axes into one GEMM — ndim-3 matmul dispatches a
        # separate small GEMM per leading index, which is far slower.
        lead = x.shape[:-1]
        out = x.reshape(-1, x.shape[-1]) @ module.weight.data
        if module.bias is not None:
            out = out + module.bias.data
        return out.reshape(lead + (out.shape[-1],))
    if isinstance(module, ReLU):
        return relu_np(x)
    if isinstance(module, Tanh):
        return np.tanh(x)
    if isinstance(module, Sigmoid):
        return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
    if isinstance(module, Sequential):
        for layer in module.layers:
            x = apply_dense_np(layer, x)
        return x
    if isinstance(module, MLP):
        return apply_dense_np(module.net, x)
    raise ShapeError(f"no numpy fast path for module type {type(module).__name__}")
