"""Shared primitives for the batched masked-forward fast path.

The mask-perturbation explainers (FlowX's sampled-Shapley stage, GNN-LRP's
finite-difference stencils, SubgraphX rollouts, fidelity sparsity grids)
evaluate the *same frozen model* under hundreds of mask variations. The
serial path pays Tensor/tape construction per variation; the fast path here
broadcasts a leading batch axis ``B`` over shared weights and evaluates the
whole stack in a handful of BLAS / sparse-matmul calls, entirely in numpy
(no autograd objects are allocated).

Two masking semantics are supported, selected per call:

``structural=False`` (default)
    The paper's Eq. (6): masks multiply messages *after* any normalization
    — GCN renormalization and GAT attention are computed on the intact
    graph. This matches ``GNN.forward_graph(..., edge_masks=...)``.

``structural=True``
    Binary masks emulate *edge removal*: GCN degree normalization is
    recomputed from the masked adjacency and GAT attention is normalized
    over surviving edges only, so a 0/1 mask row reproduces
    ``Graph.with_edges(keep)`` bit-for-bit in expectation (≤ 1e-12 drift).
    This is what fidelity subgraph sweeps and SubgraphX coalitions need.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ShapeError

__all__ = [
    "scatter_rows_np",
    "scatter_edge_major",
    "segment_softmax_np",
    "segment_softmax_edge_major",
    "apply_dense_np",
    "relu_np",
]


def scatter_rows_np(values: np.ndarray, index: np.ndarray, num_rows: int) -> np.ndarray:
    """Batched scatter-add: sum ``values[:, i]`` into row ``index[i]``.

    Parameters
    ----------
    values:
        ``(B, A, *tail)`` stacked per-edge payloads.
    index:
        ``(A,)`` destination row per payload (shared across the batch).
    num_rows:
        Output row count ``N``.

    Returns
    -------
    ``(B, N, *tail)`` aggregated rows.

    Implemented as one CSR matmul — the (N, A) incidence of ``index`` times
    the payloads flattened to ``(A, B·∏tail)`` — which runs at sparse-BLAS
    speed instead of ``np.add.at``'s per-element loop.
    """
    index = np.asarray(index, dtype=np.int64)
    B, A = values.shape[0], values.shape[1]
    if index.shape[0] != A:
        raise ShapeError(f"scatter index length {index.shape[0]} != payload rows {A}")
    tail = values.shape[2:]
    width = int(np.prod(tail)) if tail else 1
    if A == 0:
        return np.zeros((B, num_rows) + tail)
    mat = sp.csr_matrix(
        (np.ones(A), (index, np.arange(A))), shape=(num_rows, A)
    )
    flat = np.ascontiguousarray(values.reshape(B, A, width).transpose(1, 0, 2)).reshape(
        A, B * width
    )
    out = mat @ flat  # (N, B*width)
    return np.ascontiguousarray(
        out.reshape(num_rows, B, width).transpose(1, 0, 2)
    ).reshape((B, num_rows) + tail)


def scatter_edge_major(values: np.ndarray, index: np.ndarray, num_rows: int) -> np.ndarray:
    """Edge-major scatter-add: sum ``values[i]`` into row ``index[i]``.

    The convs keep their hidden state node-major — ``(N, B, F)`` rather than
    ``(B, N, F)`` — precisely so this reduces to ``incidence @ values`` on a
    zero-copy ``(A, B·F)`` reshape. The batch-major layout needs two full
    transpose copies per scatter (see :func:`scatter_rows_np`), which
    dominates the engine's runtime at explainer batch sizes.

    Parameters
    ----------
    values:
        ``(A, *tail)`` per-edge payloads, edge axis leading.
    index:
        ``(A,)`` destination row per payload.
    num_rows:
        Output row count ``N``.

    Returns
    -------
    ``(N, *tail)`` aggregated rows.
    """
    index = np.asarray(index, dtype=np.int64)
    A = values.shape[0]
    if index.shape[0] != A:
        raise ShapeError(f"scatter index length {index.shape[0]} != payload rows {A}")
    tail = values.shape[1:]
    width = int(np.prod(tail)) if tail else 1
    if A == 0:
        return np.zeros((num_rows,) + tail)
    mat = sp.csr_matrix(
        (np.ones(A), (index, np.arange(A))), shape=(num_rows, A)
    )
    flat = np.ascontiguousarray(values).reshape(A, width)  # view when contiguous
    out = mat @ flat
    return out.reshape((num_rows,) + tail)


def segment_softmax_np(scores: np.ndarray, segment_ids: np.ndarray, num_segments: int,
                       weights: np.ndarray | None = None) -> np.ndarray:
    """Batched per-segment softmax (GAT attention normalization).

    Parameters
    ----------
    scores:
        ``(B, A, H)`` attention logits.
    segment_ids:
        ``(A,)`` destination node per edge.
    num_segments:
        Node count ``N``.
    weights:
        Optional ``(B, A)`` multipliers applied to the *exponentials* before
        normalization — with binary weights this renormalizes attention over
        the surviving edges only (structural edge removal).
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    B, A, H = scores.shape
    # Per-segment max for numerical stability; computed over all edges
    # (subtracting any constant leaves softmax unchanged).
    seg_max = np.full((B * num_segments, H), -np.inf)
    flat_ids = (np.arange(B)[:, None] * num_segments + segment_ids[None, :]).reshape(-1)
    np.maximum.at(seg_max, flat_ids, scores.reshape(B * A, H))
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = scores - seg_max.reshape(B, num_segments, H)[:, segment_ids, :]
    exp = np.exp(shifted)
    if weights is not None:
        exp = exp * weights[:, :, None]
    denom = scatter_rows_np(exp, segment_ids, num_segments)  # (B, N, H)
    denom = np.maximum(denom, 1e-300)  # isolated segments: avoid 0/0
    return exp / denom[:, segment_ids, :]


def segment_softmax_edge_major(scores: np.ndarray, segment_ids: np.ndarray,
                               num_segments: int,
                               weights: np.ndarray | None = None) -> np.ndarray:
    """Edge-major per-segment softmax (GAT attention, node-major engine).

    Parameters
    ----------
    scores:
        ``(A, B, H)`` attention logits, edge axis leading. ``B`` may be 1
        for batch-shared logits; ``weights`` re-expands the batch axis.
    segment_ids:
        ``(A,)`` destination node per edge.
    num_segments:
        Node count ``N``.
    weights:
        Optional ``(A, B)`` multipliers applied to the *exponentials* before
        normalization — binary weights renormalize attention over the
        surviving edges only (structural edge removal).
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    A, B, H = scores.shape
    seg_max = np.full((num_segments, B * H), -np.inf)
    np.maximum.at(seg_max, segment_ids, scores.reshape(A, B * H))
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = scores - seg_max.reshape(num_segments, B, H)[segment_ids]
    exp = np.exp(shifted)
    if weights is not None:
        exp = exp * weights[:, :, None]
    denom = scatter_edge_major(exp, segment_ids, num_segments)  # (N, B, H)
    denom = np.maximum(denom, 1e-300)  # isolated segments: avoid 0/0
    return exp / denom[segment_ids]


def relu_np(x: np.ndarray) -> np.ndarray:
    """Elementwise rectifier on arrays."""
    return np.maximum(x, 0.0)


def apply_dense_np(module, x: np.ndarray) -> np.ndarray:
    """Apply a dense (non-graph) module stack to a batched numpy array.

    Supports the layer types GNN internals use (:class:`Linear`,
    :class:`ReLU`, :class:`Tanh`, :class:`Sigmoid`, :class:`Sequential`,
    :class:`MLP`), reading weights directly so no Tensor is allocated.
    """
    from ..autograd.layers import MLP, Linear, ReLU, Sequential, Sigmoid, Tanh

    if isinstance(module, Linear):
        # Flatten leading axes into one GEMM — ndim-3 matmul dispatches a
        # separate small GEMM per leading index, which is far slower.
        lead = x.shape[:-1]
        out = x.reshape(-1, x.shape[-1]) @ module.weight.data
        if module.bias is not None:
            out = out + module.bias.data
        return out.reshape(lead + (out.shape[-1],))
    if isinstance(module, ReLU):
        return relu_np(x)
    if isinstance(module, Tanh):
        return np.tanh(x)
    if isinstance(module, Sigmoid):
        return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
    if isinstance(module, Sequential):
        for layer in module.layers:
            x = apply_dense_np(layer, x)
        return x
    if isinstance(module, MLP):
        return apply_dense_np(module.net, x)
    raise ShapeError(f"no numpy fast path for module type {type(module).__name__}")
