"""Graph Isomorphism Network layer (Xu et al., 2019).

``h'_j = MLP((1 + eps) · h_j + Σ_{i∈N(j)} h_i)``. The ``(1+eps)·h_j`` self
term is treated as the self-loop layer edge so flow explanations (and layer
edge masks) cover it, matching how FlowX / GNN-LRP treat GIN.
"""

from __future__ import annotations

import numpy as np

from ..autograd import MLP, Parameter, Tensor, spmm
from ..rng import ensure_rng
from ..sparse import GraphSparseCache, edge_cache
from .message_passing import GraphConv

__all__ = ["GINConv"]


class GINConv(GraphConv):
    """One GIN layer with a 2-layer MLP and learnable epsilon.

    Parameters
    ----------
    in_features, out_features:
        Channel widths; the internal MLP is ``in → out → out``.
    train_eps:
        Whether ``eps`` is learnable (default True, as in the reference
        implementation).
    rng:
        Seed or generator for initialization.
    """

    def __init__(self, in_features: int, out_features: int, train_eps: bool = True,
                 rng: int | np.random.Generator | None = None):
        super().__init__()
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.mlp = MLP([in_features, out_features, out_features], rng=rng)
        if train_eps:
            self.eps = Parameter(np.zeros(1), name="eps")
        else:
            self.eps = None
            self._fixed_eps = 0.0

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                edge_mask: Tensor | None = None,
                cache: GraphSparseCache | None = None) -> Tensor:
        if cache is None:
            cache = edge_cache(edge_index, num_nodes)
        src, dst = cache.src, cache.dst
        edge_mask = self._check_mask(edge_mask, edge_index.shape[1], num_nodes)

        if edge_mask is None:
            # Unmasked (training) fast path: the unit-weight aggregation
            # (neighbors + self-loop) is one cached-CSR spmm, and the
            # (1 + eps) self scale decomposes into an extra eps · x term —
            # same math as scaling the self-loop messages, but without
            # materializing the (E+N, F) message tensor.
            aggregated = spmm(x, cache.adj, cache.adj_t)
            if self.eps is not None:
                aggregated = aggregated + x * self.eps
            return self.mlp(aggregated)

        messages = x.gather_rows(src, plan=cache.src_plan)
        # Scale the self-loop block (last N messages) by (1 + eps).
        num_edges = edge_index.shape[1]
        if self.eps is not None:
            scale = Tensor(np.ones((messages.shape[0], 1)))
            self_block = np.zeros((messages.shape[0], 1))
            self_block[num_edges:] = 1.0
            scale = scale + Tensor(self_block) * self.eps
            messages = messages * scale
        messages = messages * edge_mask
        aggregated = messages.scatter_add(dst, num_nodes, plan=cache.dst_plan)
        return self.mlp(aggregated)

    def forward_np_batch(self, x: np.ndarray, edge_index: np.ndarray, num_nodes: int,
                         edge_mask: np.ndarray | None = None,
                         structural: bool = False,
                         cache: GraphSparseCache | None = None) -> np.ndarray:
        from .batched import apply_dense_np, gather_scatter_edge_major

        if cache is None:
            cache = GraphSparseCache(edge_index, num_nodes)
        src, dst, plan = cache.src, cache.dst, cache.dst_plan
        num_edges = edge_index.shape[1]
        B = x.shape[1]
        edge_mask = self._check_mask_np(edge_mask, B, num_edges, num_nodes)

        # GIN aggregation is a plain sum, so masking a message already
        # equals removing its edge; structural mode needs no extra work.
        # Fold the (1 + eps) self-loop scale and the mask into one (A, B)
        # coefficient; the gather_scatter kernel folds it into the sparse
        # matmul so the (A, B, F) message tensor is never materialized.
        coeff = None
        if self.eps is not None:
            scale = np.ones(src.shape[0])
            scale[num_edges:] = 1.0 + float(self.eps.data[0])
            coeff = scale[:, None]                    # (A, 1)
        if edge_mask is not None:
            mask_t = edge_mask.T                      # (A, B) view
            coeff = mask_t if coeff is None else coeff * mask_t
        if coeff is None:
            coeff = np.ones((src.shape[0], 1))

        shared_x = x.strides[1] == 0
        h = x[:, 0, :] if shared_x else x             # (N, F) or (N, B, F)
        aggregated = gather_scatter_edge_major(h, src, coeff, dst, num_nodes,
                                               plan=plan)  # (N, B', F)
        if aggregated.shape[1] != B:
            aggregated = np.broadcast_to(aggregated, (num_nodes, B) + aggregated.shape[2:])
        return apply_dense_np(self.mlp, aggregated)

    def __repr__(self) -> str:
        return f"GINConv({self.in_features}, {self.out_features})"
