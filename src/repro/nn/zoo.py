"""Pretrained-model zoo: per-dataset training recipes with disk caching.

Table III of the paper reports the accuracy of the GCN/GIN/GAT targets on
every dataset; explanation experiments then reuse those pretrained models.
This module reproduces that workflow: :func:`get_model` trains (or loads a
cached copy of) the target model for a ``(dataset, conv)`` pair using a
per-dataset recipe tuned so the targets reach comparable accuracy on the
surrogate datasets.

Cache location: ``$REPRO_CACHE`` or ``~/.cache/repro-revelio``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..datasets import GraphDataset, NodeDataset, load_dataset
from ..errors import ModelError
from ..graph import load_state_dict, save_state_dict
from ..sparse import sparse_cache
from .models import GNN, build_model
from .train import Trainer, TrainResult

__all__ = ["TrainRecipe", "RECIPES", "get_model", "train_target_model", "cache_dir"]


@dataclass(frozen=True)
class TrainRecipe:
    """Hyperparameters for training one dataset's target models."""

    lr: float = 0.01
    weight_decay: float = 5e-4
    epochs: int = 200
    patience: int | None = 30
    batch_size: int = 256  # graph tasks; large = effectively full batch
    hidden: int = 32


RECIPES: dict[str, TrainRecipe] = {
    "cora": TrainRecipe(lr=0.01, weight_decay=5e-4, epochs=200, patience=30),
    "citeseer": TrainRecipe(lr=0.01, weight_decay=5e-4, epochs=200, patience=30),
    "pubmed": TrainRecipe(lr=0.01, weight_decay=5e-4, epochs=200, patience=30),
    # Constant-feature synthetics need long schedules without weight decay:
    # the class signal is purely structural and has a small margin.
    "ba_shapes": TrainRecipe(lr=0.02, weight_decay=0.0, epochs=1000, patience=None),
    "tree_cycles": TrainRecipe(lr=0.02, weight_decay=0.0, epochs=600, patience=None),
    "ba_2motifs": TrainRecipe(lr=0.05, weight_decay=0.0, epochs=1500, patience=None),
    "mutag": TrainRecipe(lr=0.02, weight_decay=0.0, epochs=300, patience=60),
    "bbbp": TrainRecipe(lr=0.02, weight_decay=0.0, epochs=300, patience=60),
}


def cache_dir() -> Path:
    """Directory for cached model checkpoints."""
    root = os.environ.get("REPRO_CACHE")
    path = Path(root) if root else Path.home() / ".cache" / "repro-revelio"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_key(dataset_name: str, conv: str, scale: float, seed: int, recipe: TrainRecipe) -> str:
    payload = json.dumps(
        {"dataset": dataset_name, "conv": conv, "scale": scale, "seed": seed,
         "recipe": vars(recipe) | {}, "hidden": recipe.hidden},
        sort_keys=True, default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def train_target_model(dataset: NodeDataset | GraphDataset, conv: str,
                       recipe: TrainRecipe | None = None,
                       seed: int = 0, verbose: bool = False) -> tuple[GNN, TrainResult]:
    """Train a fresh target model for ``dataset`` with its recipe."""
    recipe = recipe or RECIPES.get(dataset.name, TrainRecipe())
    model = build_model(conv, dataset.task, dataset.num_features, dataset.num_classes,
                        hidden=recipe.hidden, rng=seed)
    trainer = Trainer(model, lr=recipe.lr, weight_decay=recipe.weight_decay,
                      epochs=recipe.epochs, patience=recipe.patience, verbose=verbose)
    if dataset.task == "node":
        # Warm the per-graph scatter plans (both directions) up front so
        # every training epoch dispatches over the compiled structures; the
        # same cache object then serves the explainers downstream.
        sparse_cache(dataset.graph).src_plan
        result = trainer.fit_node(dataset.graph)
    else:
        result = trainer.fit_graphs(dataset.graphs, batch_size=recipe.batch_size, rng=seed)
    model.eval()
    return model, result


def get_model(dataset_name: str, conv: str, scale: float | None = None, seed: int = 0,
              use_cache: bool = True, verbose: bool = False,
              dataset: NodeDataset | GraphDataset | None = None) -> tuple[GNN, NodeDataset | GraphDataset, TrainResult | None]:
    """Return ``(model, dataset, train_result)`` for a (dataset, conv) pair.

    Loads a cached checkpoint when available; otherwise trains with the
    dataset's recipe and caches the result. ``train_result`` is ``None``
    on a cache hit (accuracy is stored alongside the checkpoint in JSON).

    Parameters
    ----------
    dataset_name, conv:
        Registry dataset name and ``"gcn"``/``"gin"``/``"gat"``.
    scale, seed:
        Dataset generation parameters (``scale=None`` → ``REPRO_SCALE``).
    use_cache:
        Set ``False`` to force retraining.
    dataset:
        Pass an already-built dataset to skip regeneration (must match the
        name/scale/seed used for the cache key).
    """
    if conv == "gat" and dataset_name in ("ba_shapes", "tree_cycles", "ba_2motifs"):
        raise ModelError(f"GAT is N/A on synthetic dataset {dataset_name} (paper Table III)")
    if dataset is None:
        dataset = load_dataset(dataset_name, scale=scale, seed=seed)
    if scale is None:
        from ..datasets import default_scale
        scale = default_scale()
    recipe = RECIPES.get(dataset_name, TrainRecipe())
    key = _cache_key(dataset_name, conv, scale, seed, recipe)
    ckpt = cache_dir() / f"{dataset_name}_{conv}_{key}.npz"

    model = build_model(conv, dataset.task, dataset.num_features, dataset.num_classes,
                        hidden=recipe.hidden, rng=seed)
    if use_cache and ckpt.exists():
        model.load_state_dict(load_state_dict(ckpt))
        model.eval()
        return model, dataset, None

    model, result = train_target_model(dataset, conv, recipe=recipe, seed=seed, verbose=verbose)
    if use_cache:
        save_state_dict(model.state_dict(), ckpt)
        meta_path = ckpt.with_suffix(".json")
        meta_path.write_text(json.dumps({
            "dataset": dataset_name, "conv": conv, "scale": scale, "seed": seed,
            "train_acc": result.train_acc, "val_acc": result.val_acc,
            "test_acc": result.test_acc, "epochs_run": result.epochs_run,
        }, indent=2))
    return model, dataset, result
