"""Message-passing GNN layers, models and training (the PyG substitute)."""

from .gat import GATConv
from .gcn import GCNConv
from .gin import GINConv
from .link_prediction import (
    LinkPredictor,
    LinkTrainResult,
    sample_negative_edges,
    train_link_predictor,
)
from .batched import apply_dense_np, scatter_rows_np, segment_softmax_np
from .message_passing import GraphConv, augment_edges, num_layer_edges
from .models import CONV_TYPES, GNN, build_model
from .pooling import (
    global_max_pool,
    global_max_pool_np,
    global_mean_pool,
    global_mean_pool_np,
    global_sum_pool,
    global_sum_pool_np,
)
from .train import TrainResult, Trainer, train_graph_classifier, train_node_classifier
from .zoo import RECIPES, TrainRecipe, get_model, train_target_model

__all__ = [
    "GraphConv",
    "GCNConv",
    "GINConv",
    "GATConv",
    "augment_edges",
    "num_layer_edges",
    "GNN",
    "build_model",
    "CONV_TYPES",
    "global_mean_pool",
    "global_sum_pool",
    "global_max_pool",
    "global_mean_pool_np",
    "global_sum_pool_np",
    "global_max_pool_np",
    "scatter_rows_np",
    "segment_softmax_np",
    "apply_dense_np",
    "Trainer",
    "TrainResult",
    "train_node_classifier",
    "train_graph_classifier",
    "get_model",
    "train_target_model",
    "RECIPES",
    "TrainRecipe",
    "LinkPredictor",
    "LinkTrainResult",
    "train_link_predictor",
    "sample_negative_edges",
]
