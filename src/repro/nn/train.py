"""Training loops for node- and graph-classification GNNs.

The trainer reproduces the standard recipes the paper's target models use:
full-batch Adam for node classification (Planetoid-style splits) and
mini-batch Adam for graph classification, with early stopping on validation
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..autograd import Adam, cross_entropy, no_grad
from ..errors import ModelError
from ..graph import Graph, GraphBatch
from ..rng import ensure_rng
from ..sparse import sparse_cache
from .models import GNN

__all__ = ["TrainResult", "Trainer", "train_node_classifier", "train_graph_classifier"]


@dataclass
class TrainResult:
    """Outcome of a training run."""

    train_acc: float
    val_acc: float
    test_acc: float
    epochs_run: int
    history: list[dict] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"TrainResult(train={self.train_acc:.3f}, val={self.val_acc:.3f}, "
            f"test={self.test_acc:.3f}, epochs={self.epochs_run})"
        )


def _accuracy(pred: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None) -> float:
    if mask is not None:
        pred, labels = pred[mask], labels[mask]
    if labels.size == 0:
        return float("nan")
    return float((pred == labels).mean())


class Trainer:
    """Fits a :class:`GNN` to a dataset.

    Parameters
    ----------
    model:
        The model to train (modified in place).
    lr, weight_decay:
        Adam hyperparameters.
    epochs:
        Maximum epochs.
    patience:
        Early-stopping patience on validation accuracy; ``None`` disables.
    verbose:
        Print a progress line every ``log_every`` epochs.
    """

    def __init__(self, model: GNN, lr: float = 0.01, weight_decay: float = 5e-4,
                 epochs: int = 200, patience: int | None = 30,
                 verbose: bool = False, log_every: int = 20):
        self.model = model
        self.optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
        self.epochs = epochs
        self.patience = patience
        self.verbose = verbose
        self.log_every = log_every

    # ------------------------------------------------------------------
    # node classification
    # ------------------------------------------------------------------
    def fit_node(self, graph: Graph) -> TrainResult:
        """Full-batch training on a node-classification graph with masks."""
        if self.model.task != "node":
            raise ModelError("fit_node requires a node-classification model")
        if not isinstance(graph.y, np.ndarray):
            raise ModelError("node classification requires per-node labels")
        if graph.train_mask is None:
            raise ModelError("graph is missing a train_mask")
        y = graph.y
        # Compile both scatter directions once, before the epoch loop:
        # forward_graph threads this cache into every layer, so each epoch's
        # forward (dst scatter) and backward (src scatter adjoint) dispatch
        # over the same plans through the kernel registry — no per-epoch
        # argsort, no serial np.add.at.
        cache = sparse_cache(graph)
        cache.src_plan
        best_val, best_state, bad_epochs = -1.0, None, 0
        history = []
        epochs_run = 0
        for epoch in range(self.epochs):
            epochs_run = epoch + 1
            self.model.train()
            self.optimizer.zero_grad()
            logits = self.model.forward_graph(graph)
            loss = cross_entropy(logits[graph.train_mask], y[graph.train_mask])
            loss.backward()
            self.optimizer.step()

            pred = logits.numpy().argmax(axis=-1)
            train_acc = _accuracy(pred, y, graph.train_mask)
            val_acc = _accuracy(pred, y, graph.val_mask) if graph.val_mask is not None else train_acc
            history.append({"epoch": epoch, "loss": loss.item(), "train_acc": train_acc,
                            "val_acc": val_acc})
            if self.verbose and epoch % self.log_every == 0:
                print(f"epoch {epoch:4d}  loss {loss.item():.4f}  "
                      f"train {train_acc:.3f}  val {val_acc:.3f}")

            # Ties refresh the stored weights (a later epoch with equal
            # validation accuracy usually has the better training fit) but
            # only strict improvement resets the patience counter.
            if val_acc >= best_val:
                if val_acc > best_val:
                    bad_epochs = 0
                best_val = val_acc
                best_state = self.model.state_dict()
            else:
                bad_epochs += 1
            if self.patience is not None and bad_epochs >= self.patience:
                break
        if best_state is not None:
            self.model.load_state_dict(best_state)

        self.model.eval()
        pred = self.model.predict(graph)
        return TrainResult(
            train_acc=_accuracy(pred, y, graph.train_mask),
            val_acc=_accuracy(pred, y, graph.val_mask) if graph.val_mask is not None else float("nan"),
            test_acc=_accuracy(pred, y, graph.test_mask) if graph.test_mask is not None else float("nan"),
            epochs_run=epochs_run,
            history=history,
        )

    # ------------------------------------------------------------------
    # graph classification
    # ------------------------------------------------------------------
    def fit_graphs(self, graphs: Sequence[Graph], batch_size: int = 32,
                   val_fraction: float = 0.1, test_fraction: float = 0.1,
                   rng: int | np.random.Generator | None = None) -> TrainResult:
        """Mini-batch training on a graph-classification dataset."""
        if self.model.task != "graph":
            raise ModelError("fit_graphs requires a graph-classification model")
        rng = ensure_rng(rng)
        n = len(graphs)
        order = rng.permutation(n)
        n_test = max(1, int(n * test_fraction))
        n_val = max(1, int(n * val_fraction))
        test_idx = order[:n_test]
        val_idx = order[n_test:n_test + n_val]
        train_idx = order[n_test + n_val:]
        train_graphs = [graphs[i] for i in train_idx]
        val_graphs = [graphs[i] for i in val_idx]
        test_graphs = [graphs[i] for i in test_idx]

        best_val, best_state, bad_epochs = -1.0, None, 0
        history = []
        epochs_run = 0
        for epoch in range(self.epochs):
            epochs_run = epoch + 1
            self.model.train()
            epoch_loss = 0.0
            n_batches = 0
            for batch in GraphBatch.iter_minibatches(train_graphs, batch_size, rng=rng):
                self.optimizer.zero_grad()
                logits = self.model.forward_batch(batch)
                loss = cross_entropy(logits, batch.y)
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1

            val_acc = self.evaluate_graphs(val_graphs)
            history.append({"epoch": epoch, "loss": epoch_loss / max(n_batches, 1),
                            "val_acc": val_acc})
            if self.verbose and epoch % self.log_every == 0:
                print(f"epoch {epoch:4d}  loss {epoch_loss / max(n_batches, 1):.4f}  "
                      f"val {val_acc:.3f}")
            if val_acc >= best_val:
                if val_acc > best_val:
                    bad_epochs = 0
                best_val = val_acc
                best_state = self.model.state_dict()
            else:
                bad_epochs += 1
            if self.patience is not None and bad_epochs >= self.patience:
                break
        if best_state is not None:
            self.model.load_state_dict(best_state)

        self.model.eval()
        return TrainResult(
            train_acc=self.evaluate_graphs(train_graphs),
            val_acc=self.evaluate_graphs(val_graphs),
            test_acc=self.evaluate_graphs(test_graphs),
            epochs_run=epochs_run,
            history=history,
        )

    def evaluate_graphs(self, graphs: Sequence[Graph], batch_size: int = 64) -> float:
        """Accuracy over a list of labelled graphs."""
        if not graphs:
            return float("nan")
        correct = 0
        with no_grad():
            for batch in GraphBatch.iter_minibatches(graphs, batch_size):
                logits = self.model.forward_batch(batch)
                pred = logits.numpy().argmax(axis=-1)
                correct += int((pred == batch.y).sum())
        return correct / len(graphs)


def train_node_classifier(model: GNN, graph: Graph, **kwargs) -> TrainResult:
    """Convenience wrapper: fit ``model`` on a node-classification graph."""
    return Trainer(model, **kwargs).fit_node(graph)


def train_graph_classifier(model: GNN, graphs: Sequence[Graph],
                           trainer_kwargs: dict | None = None, **fit_kwargs) -> TrainResult:
    """Convenience wrapper: fit ``model`` on a graph-classification dataset."""
    return Trainer(model, **(trainer_kwargs or {})).fit_graphs(graphs, **fit_kwargs)
