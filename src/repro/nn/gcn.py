"""Graph Convolutional Network layer (Kipf & Welling, 2017).

Implements the renormalized propagation rule ``H' = D̂^{-1/2} Â D̂^{-1/2} H W``
with ``Â = A + I`` expressed edge-wise so that per-layer-edge masks can be
multiplied into every message, including the self-loop contribution.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Parameter, Tensor
from ..autograd.init import glorot_uniform, zeros
from ..rng import ensure_rng
from .message_passing import GraphConv, augment_edges

__all__ = ["GCNConv"]


class GCNConv(GraphConv):
    """One GCN layer with symmetric renormalization and mask hooks.

    Parameters
    ----------
    in_features, out_features:
        Input / output channel widths.
    bias:
        Whether to add a learned bias after aggregation.
    normalize:
        Apply the symmetric D̂^{-1/2} Â D̂^{-1/2} renormalization (default).
        With ``False`` the layer sum-aggregates raw messages, the PyG
        ``GCNConv(normalize=False)`` variant; graph-classification targets
        use this so degree information survives pooling.
    rng:
        Seed or generator for Glorot initialization.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 normalize: bool = True,
                 rng: int | np.random.Generator | None = None):
        super().__init__()
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.normalize = normalize
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                edge_mask: Tensor | None = None) -> Tensor:
        src, dst = augment_edges(edge_index, num_nodes)
        edge_mask = self._check_mask(edge_mask, edge_index.shape[1], num_nodes)

        h = x @ self.weight
        messages = h.gather_rows(src)
        if self.normalize:
            # Symmetric normalization over the self-loop-augmented structure.
            deg = np.bincount(dst, minlength=num_nodes).astype(np.float64)
            deg_inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1.0))
            norm = deg_inv_sqrt[src] * deg_inv_sqrt[dst]
            messages = messages * Tensor(norm[:, None])
        if edge_mask is not None:
            messages = messages * edge_mask
        out = messages.scatter_add(dst, num_nodes)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"GCNConv({self.in_features}, {self.out_features})"
