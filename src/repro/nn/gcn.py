"""Graph Convolutional Network layer (Kipf & Welling, 2017).

Implements the renormalized propagation rule ``H' = D̂^{-1/2} Â D̂^{-1/2} H W``
with ``Â = A + I`` expressed edge-wise so that per-layer-edge masks can be
multiplied into every message, including the self-loop contribution.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Parameter, Tensor, spmm
from ..autograd.init import glorot_uniform, zeros
from ..rng import ensure_rng
from ..sparse import GraphSparseCache, edge_cache
from .message_passing import GraphConv

__all__ = ["GCNConv"]


class GCNConv(GraphConv):
    """One GCN layer with symmetric renormalization and mask hooks.

    Parameters
    ----------
    in_features, out_features:
        Input / output channel widths.
    bias:
        Whether to add a learned bias after aggregation.
    normalize:
        Apply the symmetric D̂^{-1/2} Â D̂^{-1/2} renormalization (default).
        With ``False`` the layer sum-aggregates raw messages, the PyG
        ``GCNConv(normalize=False)`` variant; graph-classification targets
        use this so degree information survives pooling.
    rng:
        Seed or generator for Glorot initialization.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 normalize: bool = True,
                 rng: int | np.random.Generator | None = None):
        super().__init__()
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.normalize = normalize
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                edge_mask: Tensor | None = None,
                cache: GraphSparseCache | None = None) -> Tensor:
        if cache is None:
            cache = edge_cache(edge_index, num_nodes)
        src, dst = cache.src, cache.dst
        edge_mask = self._check_mask(edge_mask, edge_index.shape[1], num_nodes)

        h = x @ self.weight
        if edge_mask is None:
            # Unmasked (training) fast path: the gather / normalize /
            # scatter chain is one cached-CSR spmm, its adjoint one more.
            if self.normalize:
                out = spmm(h, cache.adj_norm, cache.adj_norm_t)
            else:
                out = spmm(h, cache.adj, cache.adj_t)
        else:
            messages = h.gather_rows(src, plan=cache.src_plan)
            if self.normalize:
                # Symmetric normalization over the self-loop-augmented
                # structure (per-edge coefficient cached on the graph).
                messages = messages * Tensor(cache.edge_norm[:, None])
            messages = messages * edge_mask
            out = messages.scatter_add(dst, num_nodes, plan=cache.dst_plan)
        if self.bias is not None:
            out = out + self.bias
        return out

    def forward_np_batch(self, x: np.ndarray, edge_index: np.ndarray, num_nodes: int,
                         edge_mask: np.ndarray | None = None,
                         structural: bool = False,
                         cache: GraphSparseCache | None = None) -> np.ndarray:
        from .batched import gather_scatter_edge_major, scatter_edge_major

        if cache is None:
            cache = GraphSparseCache(edge_index, num_nodes)
        src, dst, plan = cache.src, cache.dst, cache.dst_plan
        B = x.shape[1]
        edge_mask = self._check_mask_np(edge_mask, B, edge_index.shape[1], num_nodes)

        shared_x = x.strides[1] == 0
        if shared_x:
            h = x[:, 0, :] @ self.weight.data                    # (N, out)
        else:
            h = (x.reshape(-1, x.shape[-1]) @ self.weight.data)  # one GEMM
            h = h.reshape(num_nodes, B, -1)                      # (N, B, out)

        # Fuse normalization and mask into one (A, B) coefficient; the
        # gather_scatter kernel folds it into the sparse matmul so the
        # (A, B, out) message tensor is never materialized.
        coeff = None
        if self.normalize:
            if structural and edge_mask is not None:
                # Degree of the masked adjacency: structural removal changes
                # the renormalization, exactly as Graph.with_edges would.
                # One sparse row-scale over the cached plan — no rebuild.
                deg = scatter_edge_major(
                    np.ascontiguousarray(edge_mask.T), dst, num_nodes, plan=plan
                )  # (N, B)
                deg_inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1.0))
                coeff = deg_inv_sqrt[src] * deg_inv_sqrt[dst]    # (A, B)
            else:
                deg_inv_sqrt = cache.deg_inv_sqrt
                coeff = (deg_inv_sqrt[src] * deg_inv_sqrt[dst])[:, None]  # (A, 1)
        if edge_mask is not None:
            mask_t = edge_mask.T                                  # (A, B) view
            coeff = mask_t if coeff is None else coeff * mask_t
        if coeff is None:
            coeff = np.ones((src.shape[0], 1))

        out = gather_scatter_edge_major(h, src, coeff, dst, num_nodes,
                                        plan=plan)                # (N, B', out)
        if out.shape[1] != B:
            # No per-row mask reached a batch-shared payload: every row is
            # identical, so one aggregation serves the whole batch.
            out = np.broadcast_to(out, (num_nodes, B, out.shape[-1]))
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def __repr__(self) -> str:
        return f"GCNConv({self.in_features}, {self.out_features})"
