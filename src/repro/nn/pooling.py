"""Global pooling layers for graph-level readout."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..sparse import SegmentPlan, kernel, plan_for

__all__ = ["global_mean_pool", "global_sum_pool", "global_max_pool",
           "global_sum_pool_np", "global_mean_pool_np", "global_max_pool_np"]


def global_sum_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Sum node embeddings per graph: ``(N, F) -> (G, F)``."""
    return x.scatter_add(batch, num_graphs, plan=plan_for(batch, num_graphs))


def global_mean_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Average node embeddings per graph: ``(N, F) -> (G, F)``."""
    plan = plan_for(batch, num_graphs)
    sums = x.scatter_add(batch, num_graphs, plan=plan)
    counts = np.maximum(plan.counts, 1.0)
    return sums / Tensor(counts[:, None])


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Elementwise max of node embeddings per graph: ``(N, F) -> (G, F)``.

    Implemented by shifting each graph's rows so the max reduction can run
    per segment via a one-hot selection; gradient flows to the argmax rows.
    """
    # Compute per-segment max at the data level, then rebuild a
    # differentiable selection using where().
    from ..autograd.tensor import where

    plan = plan_for(batch, num_graphs)
    tail = x.shape[1:]
    width = int(np.prod(tail)) if tail else 1
    data_max = kernel("segment_max")(plan, x.data.reshape(x.shape[0], width))
    data_max = data_max.reshape((num_graphs,) + tail)
    is_max = x.data == data_max[batch]
    # Zero out non-max entries (ties share gradient via scatter_add below,
    # then are divided by the tie count).
    ties = kernel("scatter_add")(
        plan, is_max.reshape(x.shape[0], width).astype(np.float64)
    ).reshape((num_graphs,) + tail)
    selected = where(is_max, x, Tensor(np.zeros(x.shape)))
    pooled = selected.scatter_add(batch, num_graphs, plan=plan)
    return pooled / Tensor(np.maximum(ties, 1.0))


# ----------------------------------------------------------------------
# batched numpy fast path (no tape) — see repro.nn.batched
# ----------------------------------------------------------------------
def global_sum_pool_np(x: np.ndarray, batch: np.ndarray, num_graphs: int) -> np.ndarray:
    """Batched sum pooling: ``(B, N, F) -> (B, G, F)``."""
    from .batched import scatter_rows_np

    return scatter_rows_np(x, batch, num_graphs)


def global_mean_pool_np(x: np.ndarray, batch: np.ndarray, num_graphs: int) -> np.ndarray:
    """Batched mean pooling: ``(B, N, F) -> (B, G, F)``."""
    sums = global_sum_pool_np(x, batch, num_graphs)
    counts = np.bincount(batch, minlength=num_graphs).astype(np.float64)
    return sums / np.maximum(counts, 1.0)[None, :, None]


def global_max_pool_np(x: np.ndarray, batch: np.ndarray, num_graphs: int) -> np.ndarray:
    """Batched elementwise-max pooling: ``(B, N, F) -> (B, G, F)``."""
    B, _, F = x.shape
    flat_ids = (np.arange(B)[:, None] * num_graphs + batch[None, :]).reshape(-1)
    plan = SegmentPlan(flat_ids, B * num_graphs)
    out = kernel("segment_max")(plan, x.reshape(-1, F))
    out[~np.isfinite(out)] = 0.0  # empty graphs
    return out.reshape(B, num_graphs, F)
