"""Minimal HTTP/1.1 framing over asyncio streams.

The daemon needs exactly four things from HTTP: parse a request line,
parse headers, read a ``Content-Length`` body, and write a JSON response
— stdlib ``asyncio`` streams cover all of it without an external server
framework. Deliberately not implemented: chunked transfer encoding,
pipelining beyond serial keep-alive, TLS (front the daemon with a proxy
for that).
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ServeError

__all__ = ["HttpRequest", "read_request", "response_bytes"]

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Request-line + single-header size cap (defense against junk input).
MAX_LINE_BYTES = 8192
#: Header-count cap.
MAX_HEADERS = 64


class HttpRequest:
    """One parsed request: method, path, headers (lowercased keys), body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: dict[str, str],
                 body: bytes):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> object:
        """Decode the body as JSON (:class:`ServeError` on failure)."""
        if not self.body:
            raise ServeError("request body is empty; expected a JSON object")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader,
                       max_body_bytes: int = 8 * 1024 * 1024) -> HttpRequest | None:
    """Read one request from a keep-alive connection.

    Returns ``None`` on clean EOF (client closed between requests).
    Raises :class:`ServeError` on malformed framing and
    ``asyncio.IncompleteReadError``/``ConnectionError`` on mid-request
    disconnects — the connection handler closes the socket either way.
    """
    line = await reader.readline()
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ServeError("request line too long")
    try:
        method, path, version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise ServeError(f"malformed request line: {line[:80]!r}") from None
    if not version.startswith("HTTP/1."):
        raise ServeError(f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line:
            raise asyncio.IncompleteReadError(partial=b"", expected=2)
        if len(line) > MAX_LINE_BYTES:
            raise ServeError("header line too long")
        if line in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADERS:
            raise ServeError("too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ServeError(f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ServeError("invalid Content-Length header") from None
        if length < 0:
            raise ServeError("invalid Content-Length header")
        if length > max_body_bytes:
            raise ServeError(
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit")
        if length:
            body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise ServeError("chunked request bodies are not supported; "
                         "send Content-Length")
    return HttpRequest(method.upper(), path, headers, body)


def response_bytes(status: int, payload: object, *, keep_alive: bool = True,
                   extra_headers: dict[str, str] | None = None) -> bytes:
    """Serialize one JSON response (headers + body) to wire bytes."""
    body = json.dumps(payload).encode("utf-8") + b"\n"
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
