"""Wire schema of the serving daemon: request parsing and response shaping.

The daemon speaks JSON over HTTP. A ``POST /explain`` body names the
model coordinates, the explainer and the instance; :func:`parse_explain_request`
validates it into a frozen :class:`ExplainRequest` whose three derived
keys drive the rest of the pipeline:

``model_key``
    which warm ``(model, dataset)`` pair serves it,
``batch_key``
    which coalescing queue it joins — requests sharing a batch key are
    legal to execute in one micro-batch,
``dedup_key``
    full determinism key. Explanations are pure functions of the graph,
    the frozen weights and the request hyperparameters (the invariant
    Revelio's ``EXPLANATION_CACHE`` documents), so two requests with
    equal dedup keys have byte-identical answers and share one inflight
    computation.

Responses separate the deterministic payload from the volatile one:
:func:`wire_explanation` hoists ``meta["perf"]`` / ``meta["trace_id"]``
out of the explanation so the ``explanation`` field of a response is a
pure function of the dedup key — :func:`canonical_bytes` of it is what
the parity tests compare against the serial path.
"""

from __future__ import annotations

import difflib
import json
import warnings
from dataclasses import dataclass, fields

from ..datasets import DATASET_NAMES, dataset_task
from ..errors import ExplainerError, ServeError
from ..execution import ExecutionConfig
from ..explain.base import MODES, Explanation
from ..explain.io import explanation_to_jsonable
from ..explain.target import ExplainTarget

__all__ = [
    "ExplainRequest",
    "parse_explain_request",
    "wire_explanation",
    "canonical_bytes",
]

#: Convolution architectures the model zoo can serve.
CONVS = ("gcn", "gin", "gat")

#: Top-level request keys (used for did-you-mean hints on unknown keys).
_REQUEST_KEYS = ("dataset", "model", "explainer", "target", "mode", "scale",
                 "model_seed", "params", "execution", "timeout", "sampled")

_SCALAR_TYPES = (int, float, str, bool, type(None))


@dataclass(frozen=True)
class ExplainRequest:
    """One validated ``POST /explain`` body.

    ``params`` is the explainer's keyword configuration as a sorted item
    tuple — hashable, so the derived keys below can key dicts directly.
    """

    dataset: str
    conv: str
    explainer: str
    target: ExplainTarget | int | None = None
    mode: str = "factual"
    scale: float | None = None
    model_seed: int = 0
    params: tuple[tuple[str, object], ...] = ()
    execution: ExecutionConfig = ExecutionConfig()
    sampled: bool = False

    @property
    def model_key(self) -> tuple:
        """Which warm model/dataset pair this request runs against."""
        return (self.dataset, self.conv, self.scale, self.model_seed)

    @property
    def batch_key(self) -> tuple:
        """Coalescing queue key: requests sharing it may share a micro-batch.

        ``sampled`` is part of the key: a sampled explanation's payload
        carries its extraction metadata, so it must never deduplicate
        against a full-path answer to the same coordinates.
        """
        return self.model_key + (self.explainer, self.mode, self.params,
                                 self.sampled)

    @property
    def dedup_key(self) -> tuple:
        """Full determinism key: equal keys ⇒ byte-identical explanations."""
        return self.batch_key + (self.target,)

    def params_dict(self) -> dict:
        """The explainer kwargs as a plain dict (for ``make_explainer``)."""
        return dict(self.params)


def _reject_unknown(what: str, unknown: set, valid: tuple) -> None:
    if not unknown:
        return
    name = sorted(unknown)[0]
    close = difflib.get_close_matches(name, valid, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else \
        f" (valid keys: {', '.join(sorted(valid))})"
    raise ServeError(f"unknown {what} key {name!r}{hint}")


def _require_str(payload: dict, key: str, choices: tuple | None = None) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ServeError(f"request field {key!r} must be a non-empty string")
    value = value.lower().replace("-", "_")
    if choices is not None and value not in choices:
        raise ServeError(
            f"unknown {key} {payload[key]!r}; available: {sorted(choices)}")
    return value


def _parse_execution(payload: dict) -> ExecutionConfig:
    """Fold the request's execution budget into an :class:`ExecutionConfig`.

    The serving path reuses the experiment drivers' execution object so a
    client states its per-request budget (``{"execution": {"timeout": 2.0}}``
    or the ``"timeout"`` shorthand) in the exact vocabulary the CLI uses.
    """
    spec = payload.get("execution") or {}
    if not isinstance(spec, dict):
        raise ServeError('request field "execution" must be an object')
    valid = tuple(f.name for f in fields(ExecutionConfig))
    _reject_unknown("execution", set(spec) - set(valid), valid)
    if "timeout" in payload:
        shorthand = payload["timeout"]
        if not isinstance(shorthand, (int, float)) or isinstance(shorthand, bool) \
                or shorthand <= 0:
            raise ServeError('request field "timeout" must be a positive number')
        spec = {**spec, "timeout": float(shorthand)}
    if spec.get("timeout") is not None:
        timeout = spec["timeout"]
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) \
                or timeout <= 0:
            raise ServeError("execution timeout must be a positive number")
        spec = {**spec, "timeout": float(timeout)}
    try:
        return ExecutionConfig(**spec)
    except TypeError as exc:
        raise ServeError(f"invalid execution config: {exc}") from exc


def _parse_target(value: object, dataset: str) -> ExplainTarget | None:
    """Decode the request's ``target`` field into an :class:`ExplainTarget`.

    Accepts the wire forms (``{"node": i}`` / ``{"link": [u, v]}`` /
    ``{"graph": j}`` / ``{"kind": ..., "ids": [...]}``) and, one release
    behind a ``DeprecationWarning``, a bare integer — resolved against the
    dataset's task: a node id for node tasks, a graph index otherwise.
    """
    if value is None:
        return None
    if isinstance(value, dict):
        try:
            return ExplainTarget.from_wire(value)
        except ExplainerError as exc:
            raise ServeError(f'invalid request field "target": {exc}') from exc
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServeError(
            'request field "target" must be a target object '
            '({"node": i} / {"link": [u, v]} / {"graph": j}), an integer '
            "(deprecated) or null")
    warnings.warn(  # repro: sunset[2.0]
        'integer "target" request fields are deprecated; send {"node": i} '
        'or {"graph": i}', DeprecationWarning, stacklevel=3)
    try:
        return ExplainTarget.resolve(value, task=dataset_task(dataset))
    except ExplainerError as exc:
        raise ServeError(f'invalid request field "target": {exc}') from exc


def parse_explain_request(payload: object) -> ExplainRequest:
    """Validate a decoded ``POST /explain`` body into an :class:`ExplainRequest`.

    Raises :class:`~repro.errors.ServeError` (→ HTTP 400) naming the
    offending field, with did-you-mean hints for misspelt keys.
    """
    if not isinstance(payload, dict):
        raise ServeError(
            f"explain request must be a JSON object, got "
            f"{type(payload).__name__}")
    missing = {"dataset", "model", "explainer"} - set(payload)
    if missing:
        raise ServeError(f"explain request is missing {sorted(missing)}")
    _reject_unknown("request", set(payload) - set(_REQUEST_KEYS), _REQUEST_KEYS)

    dataset = _require_str(payload, "dataset", DATASET_NAMES)
    conv = _require_str(payload, "model", CONVS)
    explainer = _require_str(payload, "explainer")
    mode = payload.get("mode", "factual")
    if mode not in MODES:
        raise ServeError(f"unknown mode {mode!r}; available: {list(MODES)}")

    target = _parse_target(payload.get("target"), dataset)

    sampled = payload.get("sampled", False)
    if not isinstance(sampled, bool):
        raise ServeError('request field "sampled" must be a boolean')

    scale = payload.get("scale")
    if scale is not None:
        if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
                or scale <= 0:
            raise ServeError('request field "scale" must be a positive number')
        scale = float(scale)

    model_seed = payload.get("model_seed", 0)
    if isinstance(model_seed, bool) or not isinstance(model_seed, int):
        raise ServeError('request field "model_seed" must be an integer')

    params = payload.get("params") or {}
    if not isinstance(params, dict):
        raise ServeError('request field "params" must be an object')
    for key, value in params.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise ServeError(
                f"explainer param {key!r} must be a JSON scalar, got "
                f"{type(value).__name__}")

    return ExplainRequest(
        dataset=dataset,
        conv=conv,
        explainer=explainer,
        target=target,
        mode=mode,
        scale=scale,
        model_seed=model_seed,
        params=tuple(sorted(params.items())),
        execution=_parse_execution(payload),
        sampled=sampled,
    )


def wire_explanation(explanation: Explanation) -> tuple[dict, dict | None, str | None]:
    """Split an explanation into ``(deterministic payload, perf, trace_id)``.

    ``meta["perf"]`` (wall-clock) and ``meta["trace_id"]`` vary run to run;
    hoisting them into the response envelope leaves the ``explanation``
    payload a pure function of the request's dedup key, which is the
    property the coalescer's dedup and the parity tests rely on.
    """
    payload = explanation_to_jsonable(explanation)
    meta = dict(payload.get("meta") or {})
    perf = meta.pop("perf", None)
    trace_id = meta.pop("trace_id", None)
    payload["meta"] = meta
    return payload, perf, trace_id


def canonical_bytes(payload: dict) -> bytes:
    """Canonical JSON encoding for byte-level parity comparison."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
