"""The daemon's compute plane: executing one coalesced micro-batch.

:class:`ExplainRuntime` is the ``batch_runner`` the coalescer drives. It
runs entirely on the single numerics thread: resolve the warm
``(model, dataset)`` pair, then answer each request with a **fresh**
explainer instance through the exact serial path
(:func:`repro.explain.batch.explain_instances` on a one-element list).

Fresh-per-request construction is the parity guarantee, not an
inefficiency: explainer objects consume RNG state across calls, so a
pooled instance would answer the same request differently depending on
what ran before it. Construction is cheap; the expensive state (model
weights, flow/context/explanation caches, sparse memos) is process-global
and stays warm regardless. Because the batch shares one model and one
graph, consecutive requests hit the warm caches and the engine's
``forward_masked_batch`` micro-batches inside each explainer call.

Observability: every micro-batch gets a RunManifest when ``obs_dir`` is
set (counter deltas + batch coordinates); every ``trace_every``-th batch
additionally records a full span trace under ``serve_batch`` so a loaded
daemon can be profiled by sampling instead of paying tracer overhead on
every request.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ServeError
from ..eval.fidelity import Instance
from ..explain import explain_instances, make_explainer
from ..explain.target import ExplainTarget
from ..obs import PERF, PerfCounters, TraceSession, build_manifest, span
from ..obs.names import SPAN_SERVE_BATCH
from ..sampling import SampledExplainRuntime
from .protocol import ExplainRequest, wire_explanation
from .state import ModelPool

__all__ = ["ExplainRuntime", "resolve_instance"]


def resolve_instance(dataset, request: ExplainRequest) -> Instance:
    """The evaluation instance a request addresses, validated.

    ``request.target`` is an :class:`ExplainTarget` (bare ints — accepted
    for one release when constructing requests directly — resolve against
    the dataset's task). Node tasks require an in-range node target;
    graph tasks take a graph index (default 0), explained without a node.
    """
    target = ExplainTarget.resolve(request.target, task=dataset.task)
    if dataset.task == "node":
        if target is None:
            raise ServeError(
                f"dataset {request.dataset!r} is a node task; "
                '"target" ({"node": i}) is required')
        if target.kind != "node":
            raise ServeError(
                f"dataset {request.dataset!r} is a node task; cannot serve "
                f"a {target.kind} target")
        if not 0 <= target.node_id < dataset.graph.num_nodes:
            raise ServeError(
                f"target {target.node_id} out of range for "
                f"{request.dataset!r} ({dataset.graph.num_nodes} nodes)")
        return Instance(dataset.graph, target)
    if target is not None and target.kind != "graph":
        raise ServeError(
            f"dataset {request.dataset!r} is a graph task; cannot serve "
            f"a {target.kind} target")
    index = target.graph_index if target is not None else 0
    if not 0 <= index < len(dataset.graphs):
        raise ServeError(
            f"target {index} out of range for {request.dataset!r} "
            f"({len(dataset.graphs)} graphs)")
    return Instance(dataset.graphs[index], None)


class ExplainRuntime:
    """Synchronous micro-batch executor bound to a warm :class:`ModelPool`.

    Parameters
    ----------
    pool:
        Warm model/dataset pairs (lazily populated on first use).
    obs_dir:
        When set, each batch writes ``batch_NNNNNN.manifest.json`` here.
    trace_every:
        Record a span trace for every Nth batch (0 = never); traced
        batches write ``batch_NNNNNN.trace.jsonl`` plus the manifest the
        :class:`~repro.obs.session.TraceSession` produces.
    """

    def __init__(self, pool: ModelPool | None = None,
                 obs_dir: str | Path | None = None, trace_every: int = 0):
        self.pool = pool if pool is not None else ModelPool()
        self.obs_dir = Path(obs_dir) if obs_dir else None
        self.trace_every = max(0, trace_every)
        self.batches_run = 0

    # ------------------------------------------------------------------
    def __call__(self, requests: list[ExplainRequest]) -> list:
        """Execute one micro-batch (the coalescer's ``batch_runner``)."""
        if not requests:
            return []
        self.batches_run += 1
        sequence = self.batches_run
        meta = self._batch_meta(requests, sequence)
        traced = (self.obs_dir is not None and self.trace_every > 0
                  and sequence % self.trace_every == 0)
        if traced:
            trace_path = self.obs_dir / f"batch_{sequence:06d}.trace.jsonl"
            session = TraceSession(trace_path, run_meta=meta)
            with session:
                results = self._execute(requests)
            session.finalize()
            return results
        if self.obs_dir is not None:
            before = PERF.snapshot()
            results = self._execute(requests)
            manifest = build_manifest(
                trace_id="untraced", run_meta=meta,
                perf_delta=PerfCounters.delta(before, PERF.snapshot()),
                span_aggregates={})
            manifest.write(self.obs_dir / f"batch_{sequence:06d}.manifest.json")
            return results
        return self._execute(requests)

    def _batch_meta(self, requests: list[ExplainRequest], sequence: int) -> dict:
        head = requests[0]
        return {
            "kind": "serve_batch",
            "sequence": sequence,
            "dataset": head.dataset,
            "conv": head.conv,
            "explainer": head.explainer,
            "mode": head.mode,
            "scale": head.scale,
            "model_seed": head.model_seed,
            "params": dict(head.params),
            "batch_size": len(requests),
            "sampled": head.sampled,
            "targets": [str(r.target) if isinstance(r.target, ExplainTarget)
                        else r.target for r in requests],
        }

    # ------------------------------------------------------------------
    def _execute(self, requests: list[ExplainRequest]) -> list:
        head = requests[0]
        with span(SPAN_SERVE_BATCH, batch_size=len(requests),
                  explainer=head.explainer, dataset=head.dataset):
            try:
                model, dataset = self.pool.get(head.model_key)
            except Exception as exc:  # bad model coordinates fail the batch,
                # uniformly: every request named the same model_key
                return [exc for _ in requests]
            results: list = []
            for request in requests:
                try:
                    results.append(self._explain_one(model, dataset, request))
                except Exception as exc:  # per-request failure only
                    results.append(exc)
            return results

    def _explain_one(self, model, dataset, request: ExplainRequest) -> dict:
        instance = resolve_instance(dataset, request)
        explainer = make_explainer(request.explainer, model,
                                   **request.params_dict())
        if request.sampled:
            if dataset.task != "node":
                raise ServeError(
                    f"dataset {request.dataset!r} is a graph task; sampled "
                    "explanation applies to node (or link) targets")
            explanation = SampledExplainRuntime(explainer).explain(
                instance.graph, instance.target, mode=request.mode)
        else:
            batch = explain_instances(explainer, [instance], mode=request.mode,
                                      raise_on_error=True)
            explanation = batch.explanations[0]
        payload, perf, trace_id = wire_explanation(explanation)
        return {"explanation": payload, "perf": perf, "trace_id": trace_id}
