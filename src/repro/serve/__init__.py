"""repro.serve — explanation-as-a-service daemon.

A long-running ``repro serve`` process that keeps models, datasets and
the flow/explanation caches warm, and coalesces concurrent explain
requests into micro-batches:

* :mod:`.protocol` — JSON wire schema; the purity-derived
  ``model_key`` / ``batch_key`` / ``dedup_key`` hierarchy.
* :mod:`.coalescer` — bounded queues, linger loops, singleflight dedup,
  backpressure, graceful drain.
* :mod:`.runtime` — the numerics thread: warm model pool, fresh
  explainer per request (byte-parity with the serial path), one
  RunManifest per micro-batch.
* :mod:`.http` / :mod:`.app` — stdlib asyncio HTTP/1.1 server, routes,
  lifecycle.

See DESIGN.md §12 for the architecture and invariants.
"""

from .app import ServeApp, ServeConfig, run_server, serve_until_interrupted
from .coalescer import BackpressureError, Coalescer, DrainingError
from .protocol import (
    ExplainRequest,
    canonical_bytes,
    parse_explain_request,
    wire_explanation,
)
from .runtime import ExplainRuntime, resolve_instance
from .state import ModelPool, ServeMetrics

__all__ = [
    "ServeApp",
    "ServeConfig",
    "run_server",
    "serve_until_interrupted",
    "Coalescer",
    "BackpressureError",
    "DrainingError",
    "ExplainRequest",
    "parse_explain_request",
    "wire_explanation",
    "canonical_bytes",
    "ExplainRuntime",
    "resolve_instance",
    "ModelPool",
    "ServeMetrics",
]
