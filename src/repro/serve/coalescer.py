"""Request coalescing: bounded queues drained into micro-batches.

One :class:`Coalescer` sits between the HTTP handlers and the numerics
thread. Each distinct ``batch_key`` (model × explainer × mode × params)
owns a bounded queue and a worker task; the worker drains its queue into
micro-batches of at most ``max_batch`` jobs, lingering up to
``max_linger_ms`` for stragglers before flushing, and hands each batch to
the injected ``batch_runner`` on a single-threaded executor.

Two levels of coalescing:

* **Dedup (singleflight).** Requests with equal ``dedup_key`` are
  byte-identical by the purity invariant (see :mod:`.protocol`), so
  late arrivals join the inflight future instead of enqueueing — under a
  hot-target load this is where the throughput multiple comes from.
* **Micro-batching.** Distinct requests sharing a ``batch_key`` execute
  in one runner call, amortizing queue/trace/manifest overhead and
  sharing the warm model, flow cache and feature memos.

Backpressure is explicit: a full queue raises
:class:`BackpressureError` (→ HTTP 429 with ``Retry-After``) instead of
letting latency grow without bound. :meth:`Coalescer.shutdown` drains
gracefully — the batch executing right now completes and its waiters get
real answers; jobs still queued fail fast with :class:`DrainingError`
(→ HTTP 503) so clients can retry elsewhere.

Concurrency model: all queue/future bookkeeping happens on the event
loop thread; only ``batch_runner`` runs on the executor. The executor is
single-threaded on purpose — the process-global caches are not
thread-safe and the numerics are GIL-bound, so parallelism in the
compute plane would buy nothing and break the caches.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from ..errors import ServeError
from .protocol import ExplainRequest

__all__ = ["BackpressureError", "DrainingError", "Coalescer"]


class BackpressureError(ServeError):
    """A batch queue is full; the client should retry after a backoff."""

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DrainingError(ServeError):
    """The daemon is shutting down and no longer accepts or starts work."""


class _Job:
    __slots__ = ("request", "future")

    def __init__(self, request: ExplainRequest, future: asyncio.Future):
        self.request = request
        self.future = future


class Coalescer:
    """Per-batch-key queues, linger loops and singleflight dedup.

    Parameters
    ----------
    batch_runner:
        ``(list[ExplainRequest]) -> list[dict | Exception]`` executed on
        the numerics thread; element ``i`` answers request ``i`` (an
        Exception fails just that request, not the batch). Injected so
        tests can substitute a controllable runner.
    max_batch:
        Micro-batch size ceiling.
    max_linger_ms:
        How long a non-full batch waits for stragglers before flushing.
    queue_limit:
        Pending jobs per batch key before :class:`BackpressureError`.
    coalesce:
        ``False`` disables dedup **and** batching (every request is a
        batch of one) — the serial baseline the benchmark compares
        against.
    on_batch:
        Optional ``(batch_key, size, seconds) -> None`` metrics hook.
    """

    def __init__(self, batch_runner: Callable, *, max_batch: int = 16,
                 max_linger_ms: float = 5.0, queue_limit: int = 64,
                 coalesce: bool = True, retry_after_s: float = 1.0,
                 on_batch: Callable | None = None):
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if queue_limit < 1:
            raise ServeError(f"queue_limit must be >= 1, got {queue_limit}")
        self._batch_runner = batch_runner
        self._max_batch = max_batch if coalesce else 1
        self._max_linger = max(0.0, max_linger_ms) / 1e3 if coalesce else 0.0
        self._queue_limit = queue_limit
        self._coalesce = coalesce
        self._retry_after_s = retry_after_s
        self._on_batch = on_batch
        self._queues: dict[tuple, deque[_Job]] = {}
        self._events: dict[tuple, asyncio.Event] = {}
        self._workers: dict[tuple, asyncio.Task] = {}
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-numerics")
        self._draining = False

    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def queue_depth(self, batch_key: tuple | None = None) -> int:
        """Pending jobs for one key (or all keys with ``None``)."""
        if batch_key is not None:
            queue = self._queues.get(batch_key)
            return len(queue) if queue is not None else 0
        return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    def submit(self, request: ExplainRequest) -> tuple[asyncio.Future, bool]:
        """Enqueue a request; returns ``(future, joined_inflight)``.

        Must be called from the event loop thread. The future resolves to
        the runner's per-request result dict augmented with
        ``"batch_size"``, or fails with the per-request exception /
        :class:`DrainingError`.
        """
        if self._draining:
            raise DrainingError("server is draining; request not accepted")
        if self._coalesce:
            existing = self._inflight.get(request.dedup_key)
            if existing is not None and not existing.done():
                return existing, True
        queue = self._queues.setdefault(request.batch_key, deque())
        if len(queue) >= self._queue_limit:
            raise BackpressureError(
                f"queue for batch key {request.batch_key!r} is full "
                f"({self._queue_limit} pending)",
                retry_after_s=self._retry_after_s)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        queue.append(_Job(request, future))
        if self._coalesce:
            self._inflight[request.dedup_key] = future
            future.add_done_callback(
                lambda fut, key=request.dedup_key: self._retire(key, fut))
        event = self._events.setdefault(request.batch_key, asyncio.Event())
        event.set()
        if request.batch_key not in self._workers:
            self._workers[request.batch_key] = loop.create_task(
                self._worker(request.batch_key),
                name=f"repro-serve-worker-{len(self._workers)}")
        return future, False

    def _retire(self, dedup_key: tuple, future: asyncio.Future) -> None:
        if self._inflight.get(dedup_key) is future:
            del self._inflight[dedup_key]
        if not future.cancelled():
            # Consume the exception so abandoned waiters (e.g. timed-out
            # handlers) never trigger "exception was never retrieved".
            future.exception()

    # ------------------------------------------------------------------
    async def _worker(self, batch_key: tuple) -> None:
        """Drain one batch key's queue forever (until shutdown)."""
        queue = self._queues[batch_key]
        event = self._events[batch_key]
        loop = asyncio.get_running_loop()
        while True:
            while not queue:
                if self._draining:
                    return
                event.clear()
                await event.wait()
            if self._draining:
                self._fail_queued(batch_key)
                return
            if self._max_linger > 0:
                deadline = loop.time() + self._max_linger
                while len(queue) < self._max_batch and not self._draining:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    event.clear()
                    try:
                        await asyncio.wait_for(event.wait(), timeout=remaining)
                    except asyncio.TimeoutError:
                        break
            if self._draining:
                self._fail_queued(batch_key)
                return
            jobs = [queue.popleft()
                    for _ in range(min(len(queue), self._max_batch))]
            await self._run_batch(batch_key, jobs)

    async def _run_batch(self, batch_key: tuple, jobs: list[_Job]) -> None:
        loop = asyncio.get_running_loop()
        requests = [job.request for job in jobs]
        started = loop.time()
        try:
            results = await loop.run_in_executor(
                self._executor, self._batch_runner, requests)
        except Exception as exc:  # runner bug / model load failure:
            # fail this batch's waiters, keep the daemon serving
            for job in jobs:
                if not job.future.done():
                    job.future.set_exception(exc)
            return
        seconds = loop.time() - started
        if len(results) != len(jobs):
            mismatch = ServeError(
                f"batch runner returned {len(results)} results for "
                f"{len(jobs)} requests")
            for job in jobs:
                if not job.future.done():
                    job.future.set_exception(mismatch)
            return
        if self._on_batch is not None:
            self._on_batch(batch_key, len(jobs), seconds)
        for job, result in zip(jobs, results):
            if job.future.done():
                continue
            if isinstance(result, BaseException):
                job.future.set_exception(result)
            else:
                job.future.set_result({**result, "batch_size": len(jobs)})

    def _fail_queued(self, batch_key: tuple) -> None:
        queue = self._queues.get(batch_key)
        while queue:
            job = queue.popleft()
            if not job.future.done():
                job.future.set_exception(DrainingError(
                    "server shut down before this request started"))

    # ------------------------------------------------------------------
    async def shutdown(self) -> None:
        """Graceful drain: finish the executing batch, 503 the queued rest.

        Idempotent. After it returns every submitted future is resolved,
        every worker task has exited and the executor is closed — the
        loop holds no coalescer-owned tasks.
        """
        self._draining = True
        for event in self._events.values():
            event.set()
        workers = list(self._workers.values())
        if workers:
            await asyncio.gather(*workers, return_exceptions=True)
        self._workers.clear()
        for batch_key in list(self._queues):
            self._fail_queued(batch_key)
        self._executor.shutdown(wait=True)
