"""Warm state owned by the serving daemon: model pool and counters.

The daemon's whole reason to exist is that the expensive state — trained
models, datasets, the flow/explanation/context caches — stays warm
between requests. :class:`ModelPool` holds the ``(model, dataset)`` pairs;
the process-global caches warm themselves as explanations run and are
reported by :func:`repro.obs.summary.cache_summary`.

All numeric work runs on the coalescer's single executor thread (the
process-global LRU caches are plain ``OrderedDict``s, not thread-safe,
and the work is GIL-bound anyway), so :meth:`ModelPool.get` is called
from exactly one thread and needs no locking.
"""

from __future__ import annotations

from collections import deque

from ..nn.zoo import get_model

__all__ = ["ModelPool", "ServeMetrics"]


class ModelPool:
    """Warm ``(model, dataset)`` pairs keyed by ``ExplainRequest.model_key``.

    Loading is lazy: the first request for a key trains (or loads the
    checkpoint of) its model inside the numerics thread; subsequent
    requests reuse the instance. Weights are frozen after training, so
    sharing one model across requests preserves determinism.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple] = {}

    def get(self, model_key: tuple) -> tuple:
        """Return (and cache) the ``(model, dataset)`` pair for a key."""
        entry = self._entries.get(model_key)
        if entry is None:
            dataset_name, conv, scale, seed = model_key
            model, dataset, _ = get_model(dataset_name, conv, scale=scale,
                                          seed=seed)
            entry = (model, dataset)
            self._entries[model_key] = entry
        return entry

    def preload(self, model_key: tuple) -> None:
        """Warm a key eagerly (daemon startup, test fixtures)."""
        self.get(model_key)

    def put(self, model_key: tuple, model, dataset) -> None:
        """Install an already-built pair (embedding callers, fixtures)."""
        self._entries[tuple(model_key)] = (model, dataset)

    def loaded_keys(self) -> list[list]:
        """JSON-friendly list of warm keys (for ``/healthz``)."""
        return [list(key) for key in self._entries]

    def __len__(self) -> int:
        return len(self._entries)


class ServeMetrics:
    """Counters and latency window behind ``/metrics``.

    Everything is incremented from the event loop thread; the latency
    deque is bounded so a long-lived daemon reports recent percentiles,
    not its cold-start tail forever.
    """

    def __init__(self, latency_window: int = 2048):
        self.requests_total = 0
        self.responses_by_status: dict[int, int] = {}
        self.explain_requests = 0
        self.deduped_requests = 0
        self.batches_total = 0
        self.batched_requests = 0
        self.max_batch_size = 0
        self.batch_seconds = 0.0
        self.rejected_backpressure = 0
        self.rejected_draining = 0
        self.timeouts = 0
        self._latencies: deque[float] = deque(maxlen=latency_window)

    # ------------------------------------------------------------------
    def record_response(self, status: int) -> None:
        self.responses_by_status[status] = \
            self.responses_by_status.get(status, 0) + 1

    def record_batch(self, size: int, seconds: float) -> None:
        self.batches_total += 1
        self.batched_requests += size
        self.max_batch_size = max(self.max_batch_size, size)
        self.batch_seconds += seconds

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float | None:
        """The ``q``-quantile (0..1) of recent request latencies, seconds."""
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        """JSON-friendly metrics snapshot for ``/metrics``."""
        p50 = self.latency_percentile(0.50)
        p99 = self.latency_percentile(0.99)
        mean_batch = (self.batched_requests / self.batches_total
                      if self.batches_total else 0.0)
        return {
            "requests_total": self.requests_total,
            "responses_by_status": {
                str(k): v for k, v in sorted(self.responses_by_status.items())
            },
            "explain_requests": self.explain_requests,
            "deduped_requests": self.deduped_requests,
            "batches_total": self.batches_total,
            "batched_requests": self.batched_requests,
            "mean_batch_size": mean_batch,
            "max_batch_size": self.max_batch_size,
            "batch_seconds": self.batch_seconds,
            "rejected_backpressure": self.rejected_backpressure,
            "rejected_draining": self.rejected_draining,
            "timeouts": self.timeouts,
            "latency_p50_ms": None if p50 is None else p50 * 1e3,
            "latency_p99_ms": None if p99 is None else p99 * 1e3,
            "latency_samples": len(self._latencies),
        }
