"""The serving daemon: router, lifecycle and the ``repro serve`` runner.

:class:`ServeApp` composes the pieces — HTTP framing (:mod:`.http`),
request schema (:mod:`.protocol`), the coalescer (:mod:`.coalescer`) and
the numerics runtime (:mod:`.runtime`) — behind four routes:

``POST /explain``
    explain one instance; coalesced with concurrent identical work.
``GET /healthz``
    liveness + drain state + warm model keys.
``GET /metrics``
    serving counters (incl. coalescing stats and p50/p99 latency), the
    global PERF counters, and every cache's hit/miss summary.
``GET /caches``
    just the cache summary (``repro stats`` over HTTP).

Error contract: 400 malformed requests, 404/405 routing, 413 oversized
bodies, 429 + ``Retry-After`` backpressure, 503 draining, 504 budget
exceeded (the computation is *not* cancelled — coalesced waiters with
larger budgets still get their answer), 500 anything unexpected.

Shutdown contract (see :meth:`ServeApp.shutdown`): stop accepting
connections, let the executing micro-batch finish and its waiters
receive real responses, fail queued-but-unstarted jobs with 503, close
every socket, and leave zero pending tasks on the loop.
"""

from __future__ import annotations

import asyncio
import math
import signal
from dataclasses import dataclass
from typing import Callable

from ..errors import ReproError, ServeError
from ..obs import cache_summary, perf_snapshot
from .coalescer import BackpressureError, Coalescer, DrainingError
from .http import HttpRequest, read_request, response_bytes
from .protocol import ExplainRequest, parse_explain_request
from .runtime import ExplainRuntime
from .state import ModelPool, ServeMetrics

__all__ = ["ServeConfig", "ServeApp", "run_server"]


@dataclass(frozen=True)
class ServeConfig:
    """Daemon configuration (one frozen object, mirrored by the CLI flags).

    ``port=0`` binds an ephemeral port (tests); ``coalesce=False`` is the
    serial baseline: no dedup, one request per batch. ``default_timeout_s``
    bounds requests that do not bring their own ``execution.timeout``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 16
    max_linger_ms: float = 5.0
    queue_limit: int = 64
    coalesce: bool = True
    retry_after_s: float = 1.0
    default_timeout_s: float | None = 60.0
    max_body_bytes: int = 1 << 20
    obs_dir: str | None = None
    trace_every: int = 0


def _error_payload(exc: BaseException) -> dict:
    return {"error": {"type": type(exc).__name__, "message": str(exc)}}


class ServeApp:
    """One daemon instance: server socket, coalescer, metrics, lifecycle.

    ``batch_runner`` is injectable for tests; by default an
    :class:`~repro.serve.runtime.ExplainRuntime` over a fresh
    :class:`~repro.serve.state.ModelPool` executes batches.
    """

    def __init__(self, config: ServeConfig | None = None,
                 batch_runner: Callable | None = None):
        self.config = config if config is not None else ServeConfig()
        self.metrics = ServeMetrics()
        if batch_runner is None:
            self.pool: ModelPool | None = ModelPool()
            self.runtime: ExplainRuntime | None = ExplainRuntime(
                self.pool, obs_dir=self.config.obs_dir,
                trace_every=self.config.trace_every)
            batch_runner = self.runtime
        else:
            self.pool = None
            self.runtime = None
        self.coalescer = Coalescer(
            batch_runner,
            max_batch=self.config.max_batch,
            max_linger_ms=self.config.max_linger_ms,
            queue_limit=self.config.queue_limit,
            coalesce=self.config.coalesce,
            retry_after_s=self.config.retry_after_s,
            on_batch=lambda key, size, seconds:
                self.metrics.record_batch(size, seconds),
        )
        self.host = self.config.host
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._draining = False
        self._shutdown_done = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._busy_count = 0
        self._all_idle: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket; ``self.port`` is set afterwards."""
        self._all_idle = asyncio.Event()
        self._all_idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Graceful drain; idempotent.

        Ordering matters: stop accepting first, then let the coalescer
        finish the executing batch and 503 the queued rest, then wait for
        busy handlers to flush their responses, and only then close idle
        keep-alive sockets so no response is truncated.
        """
        if self._shutdown_done:
            return
        self._shutdown_done = True
        self._draining = True
        if self._server is not None:
            self._server.close()
        await self.coalescer.shutdown()
        if self._busy_count and self._all_idle is not None:
            try:
                await asyncio.wait_for(self._all_idle.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                pass  # close the stragglers' sockets below
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # connection plane
    # ------------------------------------------------------------------
    def _begin_request(self) -> None:
        self._busy_count += 1
        if self._all_idle is not None:
            self._all_idle.clear()

    def _end_request(self) -> None:
        self._busy_count -= 1
        if self._busy_count == 0 and self._all_idle is not None:
            self._all_idle.set()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            await self._serve_requests(reader, writer)
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_requests(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                request = await read_request(
                    reader, max_body_bytes=self.config.max_body_bytes)
            except ServeError as exc:
                status = 413 if "exceeds" in str(exc) else 400
                self.metrics.record_response(status)
                await self._write(writer, response_bytes(
                    status, _error_payload(exc), keep_alive=False))
                return
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            if request is None:
                return
            self._begin_request()
            try:
                status, payload, extra = await self._dispatch(request)
                self.metrics.record_response(status)
                keep_alive = request.keep_alive and not self._draining
                sent = await self._write(writer, response_bytes(
                    status, payload, keep_alive=keep_alive,
                    extra_headers=extra))
            finally:
                self._end_request()
            if not sent or not keep_alive:
                return

    async def _write(self, writer: asyncio.StreamWriter, data: bytes) -> bool:
        try:
            writer.write(data)
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HttpRequest) -> tuple:
        """Route one request; returns ``(status, payload, extra_headers)``."""
        self.metrics.requests_total += 1
        path = request.path.split("?", 1)[0]
        if path == "/explain":
            if request.method != "POST":
                return 405, _error_payload(
                    ServeError("POST /explain (got "
                               f"{request.method})")), {"Allow": "POST"}
            try:
                explain_request = parse_explain_request(request.json())
            except ServeError as exc:
                return 400, _error_payload(exc), None
            return await self._explain(explain_request)
        if request.method != "GET":
            return 405, _error_payload(
                ServeError(f"GET {path} (got {request.method})")), \
                {"Allow": "GET"}
        if path == "/healthz":
            return 200, self._health_payload(), None
        if path == "/metrics":
            return 200, {"serve": self.metrics.snapshot(),
                         "perf": perf_snapshot(),
                         "caches": cache_summary()}, None
        if path == "/caches":
            return 200, {"caches": cache_summary()}, None
        return 404, _error_payload(
            ServeError(f"no route {path!r}; available: /explain /healthz "
                       "/metrics /caches")), None

    def _health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "pending": self.coalescer.queue_depth(),
            "models": self.pool.loaded_keys() if self.pool is not None else [],
        }

    # ------------------------------------------------------------------
    # /explain
    # ------------------------------------------------------------------
    async def _explain(self, request: ExplainRequest) -> tuple:
        self.metrics.explain_requests += 1
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            future, joined = self.coalescer.submit(request)
        except BackpressureError as exc:
            self.metrics.rejected_backpressure += 1
            retry_after = max(1, math.ceil(exc.retry_after_s))
            return 429, _error_payload(exc), {"Retry-After": str(retry_after)}
        except DrainingError as exc:
            self.metrics.rejected_draining += 1
            return 503, _error_payload(exc), None
        if joined:
            self.metrics.deduped_requests += 1
        timeout = request.execution.timeout
        if timeout is None:
            timeout = self.config.default_timeout_s
        try:
            if timeout is not None:
                # shield: a timed-out waiter abandons the future, but the
                # computation stays alive for coalesced waiters with
                # larger budgets.
                result = await asyncio.wait_for(asyncio.shield(future),
                                                timeout=timeout)
            else:
                result = await future
        except asyncio.TimeoutError:
            self.metrics.timeouts += 1
            return 504, {"error": {
                "type": "Timeout",
                "message": f"explanation exceeded the {timeout}s budget",
            }}, None
        except DrainingError as exc:
            self.metrics.rejected_draining += 1
            return 503, _error_payload(exc), None
        except ReproError as exc:
            return 400, _error_payload(exc), None
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # runner bug: answer 500, keep serving
            return 500, _error_payload(exc), None
        latency = loop.time() - started
        self.metrics.observe_latency(latency)
        return 200, {
            "explanation": result["explanation"],
            "perf": result["perf"],
            "trace_id": result["trace_id"],
            "served": {
                "batch_size": result["batch_size"],
                "deduped": joined,
                "latency_ms": latency * 1e3,
            },
        }, None


async def serve_until_interrupted(config: ServeConfig) -> int:
    """Run one daemon until SIGINT/SIGTERM, then drain and exit."""
    app = ServeApp(config)
    await app.start()
    print(f"repro serve listening on http://{app.host}:{app.port} "
          f"(coalesce={'on' if config.coalesce else 'off'}, "
          f"max_batch={config.max_batch}, "
          f"max_linger_ms={config.max_linger_ms})", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    hooked = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            hooked.append(sig)
        except (NotImplementedError, RuntimeError):
            pass
    try:
        await stop.wait()
    finally:
        print("repro serve draining...", flush=True)
        await app.shutdown()
        for sig in hooked:
            loop.remove_signal_handler(sig)
        print("repro serve stopped", flush=True)
    return 0


def run_server(config: ServeConfig | None = None) -> int:
    """Blocking entry point behind ``repro serve``."""
    return asyncio.run(
        serve_until_interrupted(config if config is not None else ServeConfig()))
