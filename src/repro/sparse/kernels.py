"""Per-op sparse kernel registry with pluggable backends.

Modeled on DGL's kernel layer (``csr_transpose`` / ``gather_mm`` /
``binary_reduce`` dispatch to per-device C++ implementations behind one
operator table): every segment operation the engine needs is a named
*op*, each op has one implementation per *backend*, and call sites
resolve through :func:`kernel` so a backend swap never touches the
numerics code.

Ops (all 2-D; callers flatten trailing axes):

``scatter_add(plan, values)``
    ``(A, W) -> (N, W)`` segment sum over a :class:`~repro.sparse.structure.SegmentPlan`.
``segment_max(plan, values)``
    ``(A, W) -> (N, W)`` segment max; empty segments yield ``-inf``.
``spmm(matrix, dense)``
    Sparse CSR × dense product (flow-incidence aggregation, Eq. 7).
``gather_scatter(plan, cols, weights, dense)``
    Fused gather → edge-weight → scatter:
    ``out[r, b] = Σ_{i: index[i]=r} weights[i, b] · dense[cols[i], b]``.
    The message-passing inner loop as one weighted SpMM per mask row —
    the ``(A, B, F)`` per-edge message tensor the dense-scatter path
    materializes never exists here, which is where the engine's headroom
    at million-edge scale comes from.

Backends:

``"scipy"``
    The required backend: cached-CSR matmuls and ``reduceat`` reductions.
    Always registered, always complete — other backends fall back to it
    per-op, so a plugin only has to implement the ops it accelerates.
``"numpy"``
    The dense-scatter reference (``np.add.at`` / ``np.maximum.at``) —
    bit-faithful to the pre-CSR code paths; the baseline the
    ``scaling_law`` benchmark measures the CSR core against, and the
    oracle the equivalence tests pin it to.

Plugging a backend::

    from repro.sparse import register_kernel, use_backend

    register_kernel("scatter_add", "mylib", my_scatter_add)
    with use_backend("mylib"):
        model.forward_masked_batch(graph, masks)   # dispatches to mylib
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np
import scipy.sparse as sp

from ..errors import KernelError
from .structure import SegmentPlan

__all__ = [
    "OPS",
    "kernel",
    "register_kernel",
    "set_backend",
    "use_backend",
    "current_backend",
    "available_backends",
]

#: The complete op vocabulary; registering an unknown op is an error so a
#: typo'd name fails at registration instead of at dispatch.
OPS = ("scatter_add", "segment_max", "spmm", "gather_scatter")

#: The backend every op must exist for; incomplete backends fall back to it.
REQUIRED_BACKEND = "scipy"

# op -> backend -> implementation
_KERNELS: dict[str, dict[str, Callable]] = {op: {} for op in OPS}
_ACTIVE: list[str] = [REQUIRED_BACKEND]


# ----------------------------------------------------------------------
# registry API
# ----------------------------------------------------------------------
def register_kernel(op: str, backend: str, fn: Callable) -> None:
    """Register ``fn`` as the implementation of ``op`` for ``backend``."""
    if op not in _KERNELS:
        raise KernelError(f"unknown kernel op {op!r}; expected one of {OPS}")
    _KERNELS[op][backend] = fn


def available_backends() -> tuple[str, ...]:
    """Backends with at least one registered op, sorted."""
    names = {b for table in _KERNELS.values() for b in table}
    return tuple(sorted(names))


def current_backend() -> str:
    """Name of the backend :func:`kernel` currently dispatches to."""
    return _ACTIVE[0]


def set_backend(name: str) -> None:
    """Select the dispatch backend for subsequent :func:`kernel` calls."""
    if name not in available_backends():
        raise KernelError(
            f"unknown kernel backend {name!r}; registered: "
            f"{', '.join(available_backends())}"
        )
    _ACTIVE[0] = name


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily dispatch to ``name`` (benchmark baselines, tests)."""
    prev = _ACTIVE[0]
    set_backend(name)
    try:
        yield
    finally:
        _ACTIVE[0] = prev


def kernel(op: str) -> Callable:
    """Resolve ``op`` for the active backend (falling back to scipy).

    The fallback means a partial backend accelerates what it implements
    and inherits the required backend for the rest — the cheapest
    possible plugin contract.
    """
    table = _KERNELS.get(op)
    if table is None:
        raise KernelError(f"unknown kernel op {op!r}; expected one of {OPS}")
    fn = table.get(_ACTIVE[0])
    if fn is None:
        fn = table.get(REQUIRED_BACKEND)
    if fn is None:
        raise KernelError(f"op {op!r} has no implementation for backend "
                          f"{_ACTIVE[0]!r} and no scipy fallback")
    return fn


# ----------------------------------------------------------------------
# scipy backend (required): cached-CSR matmuls + reduceat reductions
# ----------------------------------------------------------------------
def _scipy_scatter_add(plan: SegmentPlan, values: np.ndarray) -> np.ndarray:
    if plan.num_items == 0:
        return np.zeros((plan.num_rows, values.shape[1]))
    return plan.matrix @ values


def _scipy_segment_max(plan: SegmentPlan, values: np.ndarray) -> np.ndarray:
    out = np.full((plan.num_rows, values.shape[1]), -np.inf)
    if plan.num_items == 0:
        return out
    nonempty = plan.counts > 0
    starts = plan.indptr[:-1][nonempty]
    # reduceat over the segment-sorted payload: consecutive starts bound
    # exactly one (non-empty) segment each, empties were filtered above.
    out[nonempty] = np.maximum.reduceat(values[plan.order], starts, axis=0)
    return out


def _scipy_spmm(matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
    return matrix @ dense


#: Below this edge count the fused per-row weighted SpMM loses to one
#: incidence matmul over the materialized messages: B scipy-level CSR
#: constructions cost more than the (A, B, K) expansion they avoid.
_FUSED_MIN_ITEMS = 2048


def _scipy_gather_scatter(plan: SegmentPlan, cols: np.ndarray,
                          weights: np.ndarray, dense: np.ndarray) -> np.ndarray:
    num_src, K = dense.shape[0], dense.shape[-1]
    Bw = weights.shape[1]
    Bd = dense.shape[1] if dense.ndim == 3 else 1
    B = max(Bw, Bd)
    out = np.zeros((plan.num_rows, B, K))
    if plan.num_items == 0:
        return out
    if plan.num_items < _FUSED_MIN_ITEMS:
        # Small graphs: materialize the (A, B, K) messages and reduce them
        # with one unit-data incidence matmul amortized over all B rows.
        gathered = dense[cols]
        if dense.ndim == 2:
            gathered = gathered[:, None, :]
        messages = weights[:, :, None] * gathered
        if messages.shape[1] != B:
            messages = np.broadcast_to(messages, (plan.num_items, B, K))
        flat = np.ascontiguousarray(messages).reshape(plan.num_items, B * K)
        return (plan.matrix @ flat).reshape(plan.num_rows, B, K)
    # Million-edge regime: one CSR per mask row, all sharing the cached
    # (indices, indptr) structure — only the data vector (the edge
    # weights) changes, so the per-row build is an O(A) copy, not a sort,
    # and the (A, B, K) message tensor is never materialized.
    indices = np.ascontiguousarray(cols[plan.order])
    w_sorted = np.ascontiguousarray(weights[plan.order])
    for b in range(B):
        data = np.ascontiguousarray(w_sorted[:, b if Bw > 1 else 0])
        mat = sp.csr_matrix((data, indices, plan.indptr),
                            shape=(plan.num_rows, num_src))
        rhs = dense if dense.ndim == 2 else dense[:, b if Bd > 1 else 0, :]
        out[:, b, :] = mat @ np.ascontiguousarray(rhs)
    return out


register_kernel("scatter_add", "scipy", _scipy_scatter_add)
register_kernel("segment_max", "scipy", _scipy_segment_max)
register_kernel("spmm", "scipy", _scipy_spmm)
register_kernel("gather_scatter", "scipy", _scipy_gather_scatter)


# ----------------------------------------------------------------------
# numpy backend: the dense-scatter reference implementation
# ----------------------------------------------------------------------
def _numpy_scatter_add(plan: SegmentPlan, values: np.ndarray) -> np.ndarray:
    out = np.zeros((plan.num_rows, values.shape[1]))
    np.add.at(out, plan.index, values)
    return out


def _numpy_segment_max(plan: SegmentPlan, values: np.ndarray) -> np.ndarray:
    out = np.full((plan.num_rows, values.shape[1]), -np.inf)
    np.maximum.at(out, plan.index, values)
    return out


def _numpy_spmm(matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
    coo = matrix.tocoo()
    out = np.zeros((matrix.shape[0],) + dense.shape[1:])
    np.add.at(out, coo.row, coo.data.reshape((-1,) + (1,) * (dense.ndim - 1))
              * dense[coo.col])
    return out


def _numpy_gather_scatter(plan: SegmentPlan, cols: np.ndarray,
                          weights: np.ndarray, dense: np.ndarray) -> np.ndarray:
    K = dense.shape[-1]
    Bw = weights.shape[1]
    Bd = dense.shape[1] if dense.ndim == 3 else 1
    B = max(Bw, Bd)
    out = np.zeros((plan.num_rows, B, K))
    if plan.num_items == 0:
        return out
    gathered = dense[cols]
    if dense.ndim == 2:
        gathered = gathered[:, None, :]
    # The dense-scatter reference materializes the full (A, B, K) message
    # tensor and loops np.add.at over it — the path the CSR backend exists
    # to beat.
    messages = weights[:, :, None] * gathered
    if messages.shape[1] != B:
        messages = np.broadcast_to(messages, (plan.num_items, B, K))
    np.add.at(out, plan.index, messages)
    return out


register_kernel("scatter_add", "numpy", _numpy_scatter_add)
register_kernel("segment_max", "numpy", _numpy_segment_max)
register_kernel("spmm", "numpy", _numpy_spmm)
register_kernel("gather_scatter", "numpy", _numpy_gather_scatter)
