"""Optional numba backend: njit segment kernels over the CSR plan.

Registered only when ``numba`` is importable — the plugin-contract proof
the registry was built for: this module implements exactly the ops it
accelerates (``scatter_add`` and ``segment_max``; ``spmm`` and
``gather_scatter`` fall back to scipy per-op through :func:`kernel`'s
required-backend fallback), touches no call sites, and the rest of the
engine is oblivious to whether it loaded.

The kernels walk the plan's ``(order, indptr)`` CSR layout directly —
each output row reduces its own contiguous slice of the segment-sorted
payload, so the loops parallelize over rows with no write contention
(``prange``) and the summation order inside a segment matches the scipy
backend's ``reduceat``/CSR order: sorted-by-segment, stable within.

Import cost is paid lazily by numba itself: ``@njit(cache=True)`` defers
compilation to first call and persists the machine code next to this
file, so a warm process pays a dict lookup, not an LLVM pass.
"""

from __future__ import annotations

import numpy as np

from .kernels import register_kernel
from .structure import SegmentPlan

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover
    numba = None
    NUMBA_AVAILABLE = False

__all__ = ["NUMBA_AVAILABLE", "register_numba_backend"]


if NUMBA_AVAILABLE:  # pragma: no cover - CI optional-deps leg runs this

    @numba.njit(parallel=True, cache=True)
    def _segment_sum_csr(sorted_values, indptr, out):  # pragma: no cover
        for row in numba.prange(indptr.shape[0] - 1):
            for i in range(indptr[row], indptr[row + 1]):
                for k in range(sorted_values.shape[1]):
                    out[row, k] += sorted_values[i, k]

    @numba.njit(parallel=True, cache=True)
    def _segment_max_csr(sorted_values, indptr, out):  # pragma: no cover
        for row in numba.prange(indptr.shape[0] - 1):
            for i in range(indptr[row], indptr[row + 1]):
                for k in range(sorted_values.shape[1]):
                    if sorted_values[i, k] > out[row, k]:
                        out[row, k] = sorted_values[i, k]

    def _numba_scatter_add(plan: SegmentPlan, values: np.ndarray) -> np.ndarray:
        out = np.zeros((plan.num_rows, values.shape[1]))
        if plan.num_items == 0:
            return out
        sorted_values = np.ascontiguousarray(
            np.asarray(values, dtype=np.float64)[plan.order])
        _segment_sum_csr(sorted_values, plan.indptr, out)
        return out

    def _numba_segment_max(plan: SegmentPlan, values: np.ndarray) -> np.ndarray:
        out = np.full((plan.num_rows, values.shape[1]), -np.inf)
        if plan.num_items == 0:
            return out
        sorted_values = np.ascontiguousarray(
            np.asarray(values, dtype=np.float64)[plan.order])
        _segment_max_csr(sorted_values, plan.indptr, out)
        return out


def register_numba_backend() -> bool:
    """Register the numba kernels if numba is importable; return success.

    Idempotent — re-registration overwrites with the same functions. The
    package ``__init__`` calls this at import so the backend appears in
    :func:`available_backends` wherever the dependency exists, and nowhere
    else.
    """
    if not NUMBA_AVAILABLE:
        return False
    register_kernel("scatter_add", "numba", _numba_scatter_add)
    register_kernel("segment_max", "numba", _numba_segment_max)
    return True


register_numba_backend()
