"""Sparse CSR compute core: compiled segment structures + kernel registry.

The package has four small parts:

- :mod:`repro.sparse.structure` — :class:`SegmentPlan`, the compiled
  (argsort + indptr + lazy CSR) form of a fixed scatter index, plus the
  layer-edge id helpers shared with :mod:`repro.nn` and :mod:`repro.flows`.
- :mod:`repro.sparse.kernels` — the per-op backend registry (``scipy``
  required, ``numpy`` dense-scatter reference) behind :func:`kernel`.
- :mod:`repro.sparse.numba_backend` — optional njit segment kernels,
  registered as backend ``"numba"`` only where numba is importable
  (:data:`NUMBA_AVAILABLE`); ops it doesn't implement fall back to scipy.
- :mod:`repro.sparse.cache` — :func:`sparse_cache` attaching a
  :class:`GraphSparseCache` to each ``Graph``, plus the identity-keyed
  memos :func:`edge_cache` / :func:`plan_for` that give bare-array call
  sites (the autograd primitives) the same build-once-reuse-forever
  plans, and :func:`feature_csr` giving sparse bag-of-words feature
  matrices a CSR twin for the first-layer weight GEMM.
"""

from .cache import (
    GraphSparseCache,
    edge_cache,
    feature_csr,
    plan_for,
    sparse_cache,
)
from .kernels import (
    OPS,
    available_backends,
    current_backend,
    kernel,
    register_kernel,
    set_backend,
    use_backend,
)
from .numba_backend import NUMBA_AVAILABLE
from .structure import SegmentPlan, augmented_edges, num_layer_edges

__all__ = [
    "SegmentPlan",
    "GraphSparseCache",
    "sparse_cache",
    "edge_cache",
    "plan_for",
    "feature_csr",
    "augmented_edges",
    "num_layer_edges",
    "OPS",
    "kernel",
    "register_kernel",
    "set_backend",
    "use_backend",
    "current_backend",
    "available_backends",
    "NUMBA_AVAILABLE",
]
