"""Sparse CSR compute core: compiled segment structures + kernel registry.

The package has three small parts:

- :mod:`repro.sparse.structure` — :class:`SegmentPlan`, the compiled
  (argsort + indptr + lazy CSR) form of a fixed scatter index, plus the
  layer-edge id helpers shared with :mod:`repro.nn` and :mod:`repro.flows`.
- :mod:`repro.sparse.kernels` — the per-op backend registry (``scipy``
  required, ``numpy`` dense-scatter reference) behind :func:`kernel`.
- :mod:`repro.sparse.cache` — :func:`sparse_cache`, attaching a
  :class:`GraphSparseCache` to each ``Graph`` so plans are built once per
  graph and reused across every mask variant and explainer.
"""

from .cache import GraphSparseCache, sparse_cache
from .kernels import (
    OPS,
    available_backends,
    current_backend,
    kernel,
    register_kernel,
    set_backend,
    use_backend,
)
from .structure import SegmentPlan, augmented_edges, num_layer_edges

__all__ = [
    "SegmentPlan",
    "GraphSparseCache",
    "sparse_cache",
    "augmented_edges",
    "num_layer_edges",
    "OPS",
    "kernel",
    "register_kernel",
    "set_backend",
    "use_backend",
    "current_backend",
    "available_backends",
]
