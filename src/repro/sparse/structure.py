"""Compiled CSR segment structures — the data layout of the sparse core.

Every hot operation in the batched engine is a *segment reduction*: sum
(or max) per-edge payloads into per-node rows, grouped by a fixed integer
index (the destination node of each edge, the graph id of each node, the
layer edge of each flow). The index never changes between calls — only
the payloads do — yet the pre-refactor code paid a fresh COO→CSR
conversion (an ``O(A log A)`` sort) inside *every* scatter.

:class:`SegmentPlan` compiles the index once: a stable argsort, the CSR
``indptr`` boundaries, per-segment counts, and (lazily) the scipy CSR
incidence matrix assembled directly from those arrays with no conversion
pass. Kernels in :mod:`repro.sparse.kernels` consume the plan; callers
cache plans per graph via :mod:`repro.sparse.cache`.

This module also owns the layer-edge id convention (data edges ``[0, E)``
then one self-loop per node, ids ``[E, E+N)``) that
:mod:`repro.nn.message_passing` and :mod:`repro.flows` share —
``augmented_edges`` / ``num_layer_edges`` live here so the graph layer
can build sparse caches without importing ``repro.nn``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import KernelError

__all__ = ["SegmentPlan", "augmented_edges", "num_layer_edges"]


def augmented_edges(edge_index: np.ndarray, num_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """``(src, dst)`` for data edges followed by one self-loop per node.

    The layer-edge id space of the whole library: position ``i < E`` is
    data edge ``i`` of ``edge_index``, position ``E + v`` is node ``v``'s
    self-loop (re-exported as ``repro.nn.message_passing.augment_edges``).
    """
    loops = np.arange(num_nodes, dtype=np.int64)
    src = np.concatenate([edge_index[0], loops])
    dst = np.concatenate([edge_index[1], loops])
    return src, dst


def num_layer_edges(num_edges: int, num_nodes: int) -> int:
    """Size of the layer-edge id space (data edges + self-loops)."""
    return num_edges + num_nodes


class SegmentPlan:
    """Compiled scatter/segment-reduce structure for a fixed ``(index, num_rows)``.

    Parameters
    ----------
    index:
        ``(A,)`` destination segment per item, values in ``[0, num_rows)``.
    num_rows:
        Number of output segments ``N``.

    Attributes
    ----------
    order:
        ``(A,)`` stable permutation sorting items by segment.
    indptr:
        ``(N+1,)`` CSR row boundaries into ``order``: the items of segment
        ``r`` are ``order[indptr[r]:indptr[r+1]]``.
    counts:
        ``(N,)`` items per segment (``float64`` in-degree when the index is
        an edge-destination array).
    matrix:
        Lazily built ``(N, A)`` scipy CSR incidence with unit data —
        ``matrix @ values`` is the segment sum at sparse-BLAS speed.
        Assembled straight from ``(order, indptr)``: no COO conversion.
    """

    __slots__ = ("index", "num_rows", "num_items", "order", "indptr",
                 "counts", "_matrix")

    def __init__(self, index: np.ndarray, num_rows: int):
        index = np.asarray(index, dtype=np.int64)
        if index.ndim != 1:
            raise KernelError(f"segment index must be 1-D, got shape {index.shape}")
        num_rows = int(num_rows)
        if index.size and (index.min() < 0 or index.max() >= num_rows):
            raise KernelError(
                f"segment index values must lie in [0, {num_rows}), got "
                f"range [{int(index.min())}, {int(index.max())}]"
            )
        self.index = index
        self.num_rows = num_rows
        self.num_items = index.shape[0]
        self.counts = np.bincount(index, minlength=num_rows).astype(np.float64)
        self.order = np.argsort(index, kind="stable")
        self.indptr = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(self.counts, out=self.indptr[1:], dtype=np.int64)
        self._matrix: sp.csr_matrix | None = None

    @property
    def matrix(self) -> sp.csr_matrix:
        """``(num_rows, num_items)`` unit-data CSR incidence of the index."""
        if self._matrix is None:
            self._matrix = sp.csr_matrix(
                (np.ones(self.num_items), self.order, self.indptr),
                shape=(self.num_rows, self.num_items),
            )
        return self._matrix

    def check_shape(self, num_items: int, num_rows: int) -> None:
        """Raise unless this plan was compiled for the given dimensions."""
        if num_items != self.num_items or num_rows != self.num_rows:
            raise KernelError(
                f"segment plan compiled for ({self.num_items} items, "
                f"{self.num_rows} rows) applied to ({num_items}, {num_rows})"
            )

    def __repr__(self) -> str:
        return f"SegmentPlan(num_items={self.num_items}, num_rows={self.num_rows})"
