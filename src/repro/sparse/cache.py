"""Per-graph sparse-structure cache.

A :class:`~repro.graph.data.Graph`'s connectivity is immutable in practice
— every mutation path (``with_edges``, ``copy``, dataset regeneration)
builds a *new* ``edge_index`` array — so the compiled scatter structure can
be attached to the graph object itself and validated by array identity, a
pointer comparison instead of a hash of ``O(E)`` bytes per forward.

:func:`sparse_cache` is the single entry point: the first call on a graph
compiles the augmented edge arrays, the destination
:class:`~repro.sparse.structure.SegmentPlan` and (lazily) the GCN
``deg_inv_sqrt`` vector; every later call — across all ``B`` mask variants
of a batched forward, across layers, across explainers — returns the same
object for free.
"""

from __future__ import annotations

import numpy as np

from .structure import SegmentPlan, augmented_edges

__all__ = ["GraphSparseCache", "sparse_cache"]


class GraphSparseCache:
    """Compiled CSR/CSC scatter structures for one graph's connectivity.

    Attributes
    ----------
    src, dst:
        ``(E+N,)`` endpoints of the augmented (self-loop-appended) edge set
        — the layer-edge id space shared by convs, masks and flows.
    dst_plan:
        :class:`SegmentPlan` over ``dst`` — the message-aggregation scatter
        every conv layer dispatches through.
    deg_inv_sqrt:
        ``(N,)`` symmetric-renormalization vector ``D̂^{-1/2}`` of the
        intact augmented adjacency (lazy; read straight off
        ``dst_plan.counts``, no second bincount).
    """

    __slots__ = ("edge_index", "num_nodes", "src", "dst", "dst_plan",
                 "_deg_inv_sqrt")

    def __init__(self, edge_index: np.ndarray, num_nodes: int):
        self.edge_index = edge_index
        self.num_nodes = int(num_nodes)
        self.src, self.dst = augmented_edges(edge_index, self.num_nodes)
        self.dst_plan = SegmentPlan(self.dst, self.num_nodes)
        self._deg_inv_sqrt: np.ndarray | None = None

    @property
    def deg_inv_sqrt(self) -> np.ndarray:
        if self._deg_inv_sqrt is None:
            # dst_plan.counts *is* the augmented in-degree.
            self._deg_inv_sqrt = 1.0 / np.sqrt(np.maximum(self.dst_plan.counts, 1.0))
        return self._deg_inv_sqrt

    def __repr__(self) -> str:
        return (f"GraphSparseCache(num_nodes={self.num_nodes}, "
                f"num_layer_edges={self.src.shape[0]})")


def sparse_cache(graph) -> GraphSparseCache:
    """The graph's compiled sparse structure, built on first use.

    Validity is an identity check on ``graph.edge_index``: all connectivity
    mutations in this library replace the array (``with_edges``, ``copy``
    create fresh ``Graph`` objects; ``validate()`` keeps the same int64
    array), so ``is`` is both sound and O(1).
    """
    cached = getattr(graph, "_sparse_cache", None)
    if cached is not None and cached.edge_index is graph.edge_index \
            and cached.num_nodes == graph.num_nodes:
        return cached
    cache = GraphSparseCache(graph.edge_index, graph.num_nodes)
    graph._sparse_cache = cache
    return cache
