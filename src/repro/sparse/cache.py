"""Per-graph sparse-structure caches and identity-keyed plan memos.

A :class:`~repro.graph.data.Graph`'s connectivity is immutable in practice
— every mutation path (``with_edges``, ``copy``, dataset regeneration)
builds a *new* ``edge_index`` array — so the compiled scatter structure can
be attached to the graph object itself and validated by array identity, a
pointer comparison instead of a hash of ``O(E)`` bytes per forward.

Three entry points, from most to least context:

:func:`sparse_cache`
    Attach/fetch a :class:`GraphSparseCache` on a graph (or graph-batch)
    object itself. The first call on a graph compiles the augmented edge
    arrays, the destination :class:`~repro.sparse.structure.SegmentPlan`
    and (lazily) the GCN ``deg_inv_sqrt`` vector; every later call —
    across all ``B`` mask variants of a batched forward, across layers,
    across explainers, across training epochs — returns the same object
    for free.
:func:`edge_cache`
    The same compiled structure keyed on the *identity* of a bare
    ``(edge_index, num_nodes)`` pair, for call sites (the conv layers'
    autograd forwards) that receive arrays rather than a graph object.
    A training loop calling ``forward_graph`` every epoch passes the
    same ``edge_index`` array each time, so the memo hits after epoch 0.
:func:`plan_for`
    An identity-keyed memo for a single :class:`SegmentPlan` over any
    ``(index, num_rows)`` — the fallback the plan-backed autograd
    primitives (``Tensor.scatter_add`` / ``gather_rows`` /
    ``segment_softmax``) use when no explicit plan is threaded in, so
    even un-plumbed call sites stop paying a fresh ``argsort`` (and the
    serial ``np.add.at``) per call.

Both memos hold only weak references to the key arrays: when the caller
drops the array, the compiled structure is evicted with it, so the memo
can never pin dead ``O(E)`` arrays or grow without bound.
"""

from __future__ import annotations

import weakref

import numpy as np
import scipy.sparse as sp

from .structure import SegmentPlan, augmented_edges

__all__ = ["GraphSparseCache", "sparse_cache", "edge_cache", "plan_for",
           "feature_csr"]

#: Densest feature matrix worth a CSR twin: above this, BLAS on the dense
#: array beats sparse matvecs and :func:`feature_csr` memoizes ``None``.
FEATURE_DENSITY_CEILING = 0.05


class GraphSparseCache:
    """Compiled CSR/CSC scatter structures for one graph's connectivity.

    Attributes
    ----------
    src, dst:
        ``(E+N,)`` endpoints of the augmented (self-loop-appended) edge set
        — the layer-edge id space shared by convs, masks and flows.
    dst_plan:
        :class:`SegmentPlan` over ``dst`` — the message-aggregation scatter
        every conv layer dispatches through.
    src_plan:
        :class:`SegmentPlan` over ``src`` (lazy) — the adjoint structure:
        the backward pass of a per-edge gather ``x[src]`` is a scatter-add
        over ``src``, so training needs both directions compiled.
    deg_inv_sqrt:
        ``(N,)`` symmetric-renormalization vector ``D̂^{-1/2}`` of the
        intact augmented adjacency (lazy; read straight off
        ``dst_plan.counts``, no second bincount).
    edge_norm:
        ``(E+N,)`` per-layer-edge GCN coefficient
        ``deg_inv_sqrt[src] · deg_inv_sqrt[dst]`` (lazy) — the vector the
        normalized message path multiplies into every message, hoisted out
        of the per-forward hot loop.
    adj / adj_t, adj_norm / adj_norm_t:
        Cached ``(N, N)`` CSR aggregation operators over the augmented
        edge set (lazy): unit-weight for sum aggregation (GIN, unnormalized
        GCN) and ``edge_norm``-weighted for the renormalized GCN rule, each
        with its transpose precompiled. The unmasked training forward is
        one ``spmm`` over these — forward through ``adj*``, backward
        through ``adj*_t`` — instead of a gather / scale / scatter chain
        that materializes ``(E+N, F)`` intermediates four times per layer.
    """

    __slots__ = ("edge_index", "num_nodes", "src", "dst", "dst_plan",
                 "_src_plan", "_deg_inv_sqrt", "_edge_norm",
                 "_adj", "_adj_t", "_adj_norm", "_adj_norm_t", "__weakref__")

    def __init__(self, edge_index: np.ndarray, num_nodes: int):
        self.edge_index = edge_index
        self.num_nodes = int(num_nodes)
        self.src, self.dst = augmented_edges(edge_index, self.num_nodes)
        self.dst_plan = SegmentPlan(self.dst, self.num_nodes)
        self._src_plan: SegmentPlan | None = None
        self._deg_inv_sqrt: np.ndarray | None = None
        self._edge_norm: np.ndarray | None = None
        self._adj: sp.csr_matrix | None = None
        self._adj_t: sp.csr_matrix | None = None
        self._adj_norm: sp.csr_matrix | None = None
        self._adj_norm_t: sp.csr_matrix | None = None

    @property
    def src_plan(self) -> SegmentPlan:
        if self._src_plan is None:
            self._src_plan = SegmentPlan(self.src, self.num_nodes)
        return self._src_plan

    @property
    def deg_inv_sqrt(self) -> np.ndarray:
        if self._deg_inv_sqrt is None:
            # dst_plan.counts *is* the augmented in-degree.
            self._deg_inv_sqrt = 1.0 / np.sqrt(np.maximum(self.dst_plan.counts, 1.0))
        return self._deg_inv_sqrt

    @property
    def edge_norm(self) -> np.ndarray:
        if self._edge_norm is None:
            d = self.deg_inv_sqrt
            self._edge_norm = d[self.src] * d[self.dst]
        return self._edge_norm

    def _aggregator(self, weights: np.ndarray) -> sp.csr_matrix:
        # out[dst] += w · x[src]  ⇒  rows are destinations, cols sources.
        n = self.num_nodes
        return sp.csr_matrix((weights, (self.dst, self.src)), shape=(n, n))

    @property
    def adj(self) -> sp.csr_matrix:
        if self._adj is None:
            self._adj = self._aggregator(np.ones(self.src.shape[0]))
        return self._adj

    @property
    def adj_t(self) -> sp.csr_matrix:
        if self._adj_t is None:
            self._adj_t = sp.csr_matrix(self.adj.T)
        return self._adj_t

    @property
    def adj_norm(self) -> sp.csr_matrix:
        if self._adj_norm is None:
            self._adj_norm = self._aggregator(self.edge_norm)
        return self._adj_norm

    @property
    def adj_norm_t(self) -> sp.csr_matrix:
        if self._adj_norm_t is None:
            self._adj_norm_t = sp.csr_matrix(self.adj_norm.T)
        return self._adj_norm_t

    def __repr__(self) -> str:
        return (f"GraphSparseCache(num_nodes={self.num_nodes}, "
                f"num_layer_edges={self.src.shape[0]})")


#: memo name -> [hits, misses]; read by :func:`memo_info` (and through it
#: the ``repro stats`` CLI and the serving daemon's ``/caches`` endpoint).
#: A miss is any lookup that had to compile a fresh structure.
_MEMO_STATS: dict[str, list] = {
    "graph": [0, 0], "edge": [0, 0], "plan": [0, 0], "feature": [0, 0],
}


def sparse_cache(graph) -> GraphSparseCache:
    """The graph's compiled sparse structure, built on first use.

    Validity is an identity check on ``graph.edge_index``: all connectivity
    mutations in this library replace the array (``with_edges``, ``copy``
    create fresh ``Graph`` objects; ``validate()`` keeps the same int64
    array), so ``is`` is both sound and O(1).
    """
    cached = getattr(graph, "_sparse_cache", None)
    if cached is not None and cached.edge_index is graph.edge_index \
            and cached.num_nodes == graph.num_nodes:
        _MEMO_STATS["graph"][0] += 1
        return cached
    _MEMO_STATS["graph"][1] += 1
    cache = GraphSparseCache(graph.edge_index, graph.num_nodes)
    graph._sparse_cache = cache
    return cache


# ----------------------------------------------------------------------
# identity-keyed memos for bare arrays
# ----------------------------------------------------------------------
# key -> (weakref to the key array, compiled structure). The weakref both
# validates the id() key (object identity, not address reuse: the finalizer
# evicts the entry before the address can be recycled) and bounds the memo:
# entries die with their arrays.
_EDGE_MEMO: dict[tuple[int, int], tuple[weakref.ref, GraphSparseCache]] = {}
_PLAN_MEMO: dict[tuple[int, int], tuple[weakref.ref, SegmentPlan]] = {}


def _memo_get(memo: dict, key: tuple[int, int], array: np.ndarray,
              stats: str):
    hit = memo.get(key)
    if hit is not None and hit[0]() is array:
        _MEMO_STATS[stats][0] += 1
        return hit[1]
    _MEMO_STATS[stats][1] += 1
    return None


def _memo_put(memo: dict, key: tuple[int, int], array: np.ndarray, value) -> None:
    memo[key] = (weakref.ref(array, lambda _ref: memo.pop(key, None)), value)


def edge_cache(edge_index: np.ndarray, num_nodes: int) -> GraphSparseCache:
    """Memoized :class:`GraphSparseCache` for a bare ``(edge_index, N)`` pair.

    Keyed on the *identity* of ``edge_index`` — the conv layers call this
    from their autograd forwards, where the same array object arrives every
    epoch of a training loop, so the scatter structure (and therefore the
    ``np.add.at``-free kernel dispatch) is compiled exactly once per graph.
    """
    key = (id(edge_index), int(num_nodes))
    cached = _memo_get(_EDGE_MEMO, key, edge_index, "edge")
    if cached is None:
        cached = GraphSparseCache(edge_index, int(num_nodes))
        _memo_put(_EDGE_MEMO, key, edge_index, cached)
    return cached


def plan_for(index: np.ndarray, num_rows: int) -> SegmentPlan:
    """Memoized :class:`SegmentPlan` for a bare ``(index, num_rows)`` pair.

    The identity-keyed fallback behind the plan-backed autograd primitives:
    call sites that cannot thread an explicit plan (pooling over a batch
    vector, flow-score aggregation over precomputed scatter indices) still
    compile their plan once per index array instead of once per call.
    """
    key = (id(index), int(num_rows))
    plan = _memo_get(_PLAN_MEMO, key, index, "plan")
    if plan is None:
        plan = SegmentPlan(index, int(num_rows))
        _memo_put(_PLAN_MEMO, key, index, plan)
    return plan


def memo_info() -> dict:
    """Hit/miss/size counters for every sparse-structure memo.

    ``graph`` counts :func:`sparse_cache` lookups (entries live on the
    graph objects themselves, so no entry count is reported); ``edge`` /
    ``plan`` / ``feature`` are the identity-keyed module memos. Feeds
    :func:`repro.obs.summary.cache_summary`.
    """
    sizes = {"edge": len(_EDGE_MEMO), "plan": len(_PLAN_MEMO),
             "feature": len(_FEATURE_MEMO)}
    out = {}
    for name, (hits, misses) in _MEMO_STATS.items():
        entry = {"hits": hits, "misses": misses}
        if name in sizes:
            entry["entries"] = sizes[name]
        out[name] = entry
    return out


# value: () = "inspected, too dense" so count_nonzero runs once per array.
_FEATURE_MEMO: dict[tuple[int, int], tuple[weakref.ref, tuple]] = {}


def feature_csr(x: np.ndarray) -> tuple[sp.csr_matrix, sp.csr_matrix] | None:
    """Memoized CSR twin ``(matrix, matrix.T)`` of a sparse feature matrix.

    Bag-of-words node features (Cora: ~1.5% nonzero) make the first-layer
    weight GEMM ``x @ W`` — and its adjoint ``x.T @ g`` — the most
    expensive dense operations of a training epoch. When ``x`` is a 2-D
    float64 array no denser than :data:`FEATURE_DENSITY_CEILING`, this
    returns a CSR copy and its precompiled transpose for
    :meth:`Tensor.annotate_sparse <repro.autograd.Tensor.annotate_sparse>`
    to route the matmul through; otherwise ``None``. Identity-keyed like
    :func:`plan_for`: the density scan and conversion run once per array
    object, and entries die with their arrays.
    """
    if not isinstance(x, np.ndarray) or x.ndim != 2 or x.dtype != np.float64:
        return None
    key = (id(x), x.shape[0])
    hit = _memo_get(_FEATURE_MEMO, key, x, "feature")
    if hit is None:
        density = np.count_nonzero(x) / max(x.size, 1)
        if density <= FEATURE_DENSITY_CEILING:
            matrix = sp.csr_matrix(x)
            hit = (matrix, sp.csr_matrix(matrix.T))
        else:
            hit = ()
        _memo_put(_FEATURE_MEMO, key, x, hit)
    return hit or None
