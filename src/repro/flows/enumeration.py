"""Message-flow enumeration.

A *message flow* in an L-layer GNN is a sequence of L consecutive layer
edges (equivalently L+1 nodes): information leaves node ``v_0`` at layer 1,
moves along one edge per layer, and arrives at ``v_L`` after layer L
(paper §III). Layer edges include the per-node self-loops GNN layers use to
carry a node's own representation forward, in the id convention of
:mod:`repro.nn.message_passing` (data edges ``[0, E)``, self-loops
``[E, E+N)``).

:class:`FlowIndex` is the central data structure: the set of flows plus the
flow → layer-edge incidence used by Revelio's mask transformation (Eq. 3/5)
and by every flow-based baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor
from ..errors import FlowError
from ..graph import Graph
from ..nn.message_passing import augment_edges, num_layer_edges
from ..obs import PERF, span
from ..obs.names import SPAN_FLOW_ENUMERATE

__all__ = ["FlowIndex", "enumerate_flows", "count_flows"]

# Hard ceiling protecting memory on dense graphs; callers can raise it.
DEFAULT_MAX_FLOWS = 2_000_000


@dataclass
class FlowIndex:
    """All message flows of an L-layer GNN on one graph.

    Attributes
    ----------
    nodes:
        ``(F, L+1)`` int array; row ``f`` is the node sequence
        ``v_0 → … → v_L`` of flow ``f``.
    layer_edges:
        ``(F, L)`` int array; ``layer_edges[f, l]`` is the layer-edge id the
        flow uses at layer ``l+1`` (augmented id space of size ``E + N``).
    num_layers:
        ``L``.
    num_edges:
        Number of *data* edges ``E`` (self-loop ids start here).
    num_nodes:
        ``N``.
    target:
        Explained node id for node-classification flows, else ``None``.
    """

    nodes: np.ndarray
    layer_edges: np.ndarray
    num_layers: int
    num_edges: int
    num_nodes: int
    target: int | None = None

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.int64).reshape(-1, self.num_layers + 1)
        self.layer_edges = np.asarray(self.layer_edges, dtype=np.int64).reshape(-1, self.num_layers)
        if self.nodes.shape[0] != self.layer_edges.shape[0]:
            raise FlowError("nodes / layer_edges row mismatch")
        # Lazily built caches — the incidence structure is fixed, so the
        # gather/scatter index arrays used by aggregate_scores (rebuilt on
        # every mask-training epoch otherwise), the FlowIncidence view and
        # the used-layer-edge mask are computed once and reused.
        self._gather_index: np.ndarray | None = None
        self._scatter_index: np.ndarray | None = None
        self._incidence = None
        self._used_layer_edges: np.ndarray | None = None

    def _aggregation_indices(self, reuse: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """``(gather, scatter)`` index arrays for flow → layer-edge sums.

        ``gather`` repeats each flow id once per layer (layer-major);
        ``scatter`` maps those rows to flattened ``l * (E+N) + edge_id``
        slots. Cached on first use; ``reuse=False`` rebuilds from scratch
        (used by the autograd regression test to pin down bit-identity).
        """
        if reuse and self._gather_index is not None and self._scatter_index is not None:
            return self._gather_index, self._scatter_index
        width = self.num_layer_edges
        gather = np.tile(np.arange(self.num_flows), self.num_layers)
        scatter = (
            np.repeat(np.arange(self.num_layers), self.num_flows) * width
            + self.layer_edges.T.reshape(-1)
        )
        if reuse:
            self._gather_index, self._scatter_index = gather, scatter
        return gather, scatter

    def incidence(self):
        """Cached :class:`repro.flows.incidence.FlowIncidence` view."""
        if self._incidence is None:
            from .incidence import FlowIncidence

            self._incidence = FlowIncidence(self)
        return self._incidence

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def num_flows(self) -> int:
        """Number of enumerated flows ``|F|``."""
        return self.nodes.shape[0]

    @property
    def num_layer_edges(self) -> int:
        """Size of the per-layer edge-id space (``E + N``)."""
        return num_layer_edges(self.num_edges, self.num_nodes)

    def __len__(self) -> int:
        return self.num_flows

    def __repr__(self) -> str:
        tgt = f", target={self.target}" if self.target is not None else ""
        return (
            f"FlowIndex(num_flows={self.num_flows}, num_layers={self.num_layers}, "
            f"num_edges={self.num_edges}, num_nodes={self.num_nodes}{tgt})"
        )

    # ------------------------------------------------------------------
    # incidence operations (Eq. 3 / Eq. 7)
    # ------------------------------------------------------------------
    def flat_incidence_index(self) -> np.ndarray:
        """``(F * L,)`` flattened scatter targets ``l * (E+N) + edge_id``.

        Row-major over flows then layers; used to aggregate flow scores to
        layer edges in a single scatter.
        """
        width = self.num_layer_edges
        return (np.arange(self.num_layers)[None, :] * width + self.layer_edges).reshape(-1)

    def aggregate_scores(self, flow_scores: Tensor, reuse_indices: bool = True) -> Tensor:
        """Sum flow scores onto layer edges (Eq. 3, ``f`` = summation).

        Parameters
        ----------
        flow_scores:
            ``(F,)`` tensor of per-flow scores (e.g. ``tanh(M)``).
        reuse_indices:
            Reuse the precomputed gather/scatter index arrays (the default;
            they depend only on the fixed incidence structure). ``False``
            rebuilds them each call, matching the pre-optimization code
            path exactly.

        Returns
        -------
        Tensor
            ``(L, E+N)`` layer-edge score accumulation, differentiable
            w.r.t. ``flow_scores``.
        """
        if flow_scores.shape[0] != self.num_flows:
            raise FlowError(
                f"flow_scores has {flow_scores.shape[0]} entries, expected {self.num_flows}"
            )
        width = self.num_layer_edges
        gather, scatter = self._aggregation_indices(reuse=reuse_indices)
        # tiled is ordered layer-major: flow block per layer.
        tiled = flow_scores.gather_rows(gather)
        flat = tiled.scatter_add(scatter, self.num_layers * width)
        return flat.reshape(self.num_layers, width)

    def aggregate_scores_np(self, flow_scores: np.ndarray) -> np.ndarray:
        """Numpy-only version of :meth:`aggregate_scores` (no tape).

        Dispatches through the cached per-layer incidence plans (one
        ``spmm`` kernel call per layer) instead of a flat ``np.add.at``.
        """
        return self.incidence().aggregate(np.asarray(flow_scores, dtype=np.float64))

    def used_layer_edges(self) -> np.ndarray:
        """Boolean ``(L, E+N)``: layer edges that carry at least one flow.

        The sparsity regularizer (Eq. 8) averages masks over exactly these
        entries ("skipping those that are unused by GNN layers"). Computed
        once per index — the structure is fixed — and shared by every
        optimize loop and mask-transform call that reuses the index.
        """
        if self._used_layer_edges is None:
            used = np.zeros((self.num_layers, self.num_layer_edges), dtype=bool)
            for l in range(self.num_layers):
                used[l, self.layer_edges[:, l]] = True
            self._used_layer_edges = used
        return self._used_layer_edges

    def flows_per_layer_edge(self) -> np.ndarray:
        """``(L, E+N)`` count of flows through each layer edge."""
        return self.incidence().flows_per_layer_edge()

    def flows_through(self, layer: int, layer_edge: int) -> np.ndarray:
        """Indices of flows using ``layer_edge`` at 1-based ``layer``.

        This is the flow set :math:`F_{?\\{l-1\\}ij*}` of Eq. (3).
        """
        if not 1 <= layer <= self.num_layers:
            raise FlowError(f"layer must be in [1, {self.num_layers}], got {layer}")
        return np.flatnonzero(self.layer_edges[:, layer - 1] == layer_edge)

    # ------------------------------------------------------------------
    # id helpers
    # ------------------------------------------------------------------
    def is_self_loop(self, layer_edge: int) -> bool:
        """Whether a layer-edge id denotes a self-loop."""
        return layer_edge >= self.num_edges

    def layer_edge_endpoints(self, layer_edge: int, edge_index: np.ndarray) -> tuple[int, int]:
        """``(src, dst)`` for a layer-edge id given the graph's edges."""
        if layer_edge < self.num_edges:
            return int(edge_index[0, layer_edge]), int(edge_index[1, layer_edge])
        v = layer_edge - self.num_edges
        return v, v

    def describe_flow(self, f: int) -> str:
        """Human-readable ``v0 -> v1 -> … -> vL`` string for flow ``f``."""
        return " -> ".join(str(int(v)) for v in self.nodes[f])


def _incoming_lists(graph: Graph) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-node arrays of (source node, layer-edge id) over augmented edges."""
    src, dst = augment_edges(graph.edge_index, graph.num_nodes)
    edge_ids = np.arange(src.shape[0])
    order = np.argsort(dst, kind="stable")
    src_sorted, dst_sorted, ids_sorted = src[order], dst[order], edge_ids[order]
    bounds = np.searchsorted(dst_sorted, np.arange(graph.num_nodes + 1))
    in_src = [src_sorted[bounds[v]:bounds[v + 1]] for v in range(graph.num_nodes)]
    in_ids = [ids_sorted[bounds[v]:bounds[v + 1]] for v in range(graph.num_nodes)]
    return in_src, in_ids


def enumerate_flows(graph: Graph, num_layers: int, target: int | None = None,
                    max_flows: int = DEFAULT_MAX_FLOWS) -> FlowIndex:
    """Enumerate all message flows of an ``num_layers``-layer GNN.

    Parameters
    ----------
    graph:
        Input graph (data edges only; self-loops are added internally).
    num_layers:
        GNN depth ``L``.
    target:
        For node classification, the explained node: only flows *ending* at
        it are enumerated (the prediction depends on nothing else). ``None``
        enumerates every flow (graph classification).
    max_flows:
        Safety ceiling; exceeded enumeration raises :class:`FlowError`.
    """
    if num_layers < 1:
        raise FlowError("num_layers must be >= 1")
    if target is not None and not 0 <= target < graph.num_nodes:
        raise FlowError(f"target {target} out of range")

    PERF.flow_enumerations += 1
    with span(SPAN_FLOW_ENUMERATE, num_layers=num_layers) as sp:
        index = _enumerate(graph, num_layers, target, max_flows)
        if sp is not None:
            sp.set(num_flows=index.num_flows)
    return index


def _enumerate(graph: Graph, num_layers: int, target: int | None,
               max_flows: int) -> FlowIndex:
    in_src, in_ids = _incoming_lists(graph)

    # Grow paths backwards from the final node(s): a partial path of length
    # k is a sequence ending at layer L; we prepend incoming edges until the
    # path covers all L layers.
    if target is None:
        ends = np.arange(graph.num_nodes)
    else:
        ends = np.array([target])

    # nodes_rev[:, 0] is v_L, nodes_rev[:, k] is v_{L-k}.
    nodes_rev = ends[:, None]
    edges_rev = np.zeros((ends.shape[0], 0), dtype=np.int64)
    for _ in range(num_layers):
        heads = nodes_rev[:, -1]
        counts = np.array([in_src[v].shape[0] for v in heads])
        total = int(counts.sum())
        if total > max_flows:
            raise FlowError(
                f"flow enumeration exceeded max_flows={max_flows}; "
                "reduce graph size or raise the limit"
            )
        repeat_idx = np.repeat(np.arange(heads.shape[0]), counts)
        new_heads = np.concatenate([in_src[v] for v in heads]) if total else np.zeros(0, dtype=np.int64)
        new_edges = np.concatenate([in_ids[v] for v in heads]) if total else np.zeros(0, dtype=np.int64)
        nodes_rev = np.concatenate([nodes_rev[repeat_idx], new_heads[:, None]], axis=1)
        edges_rev = np.concatenate([edges_rev[repeat_idx], new_edges[:, None]], axis=1)

    nodes = nodes_rev[:, ::-1]
    layer_edges = edges_rev[:, ::-1]
    return FlowIndex(
        nodes=nodes,
        layer_edges=layer_edges,
        num_layers=num_layers,
        num_edges=graph.num_edges,
        num_nodes=graph.num_nodes,
        target=target,
    )


def count_flows(graph: Graph, num_layers: int, target: int | None = None) -> int:
    """Count flows without enumerating them (via sparse adjacency powers).

    Used for capacity planning and as an independent oracle in tests. The
    count only needs ``1ᵀ Aᴸ e_target`` (or ``1ᵀ Aᴸ 1``), so we iterate L
    sparse mat-vec products instead of materializing a dense ``N × N``
    matrix power — O(L · nnz) time, O(N) extra memory.
    """
    import scipy.sparse as sp

    src, dst = augment_edges(graph.edge_index, graph.num_nodes)
    n = graph.num_nodes
    adj = sp.csr_matrix(
        (np.ones(src.shape[0]), (src, dst)), shape=(n, n)
    )
    if target is None:
        v = np.ones(n)
    else:
        v = np.zeros(n)
        v[target] = 1.0
    # paths[:, t].sum() == 1ᵀ Aᴸ e_t, accumulated right-to-left.
    for _ in range(num_layers):
        v = adj @ v
    return int(round(v.sum()))
