"""Sparse flow ↔ layer-edge incidence (the matrix ``I`` of Eq. 7).

The paper's matrix implementation computes layer-edge importance as

    omega[E] = sigma( I · omega[F] ⊙ exp(w) )

with ``I ∈ {0,1}^{L × |E| × |F|}``. :class:`FlowIncidence` compiles one
:class:`~repro.sparse.SegmentPlan` per layer — the CSR matrix is assembled
straight from the plan's sorted index (no COO conversion) and cached on the
owning :class:`~repro.flows.enumeration.FlowIndex`, so Revelio's mask
training, FlowX's Shapley attribution and analysis code all share one
compiled structure per graph. Products dispatch through the
:mod:`repro.sparse` ``spmm`` kernel.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import FlowError
from ..sparse import SegmentPlan, kernel
from .enumeration import FlowIndex

__all__ = ["FlowIncidence"]


class FlowIncidence:
    """Per-layer CSR incidence matrices of shape ``(E+N, F)``.

    ``layer(l)[e, f] == 1`` iff flow ``f`` traverses layer edge ``e`` at
    (1-based) layer ``l``.
    """

    def __init__(self, index: FlowIndex):
        self.index = index
        # One compiled plan per layer: flow -> layer-edge scatter. The CSR
        # matrix view is built lazily inside the plan on first product.
        self._plans: list[SegmentPlan] = [
            SegmentPlan(index.layer_edges[:, l], index.num_layer_edges)
            for l in range(index.num_layers)
        ]

    def plan(self, l: int) -> SegmentPlan:
        """Compiled scatter plan for 1-based layer ``l``."""
        if not 1 <= l <= self.index.num_layers:
            raise FlowError(f"layer must be in [1, {self.index.num_layers}], got {l}")
        return self._plans[l - 1]

    def layer(self, l: int) -> sp.csr_matrix:
        """Incidence matrix for 1-based layer ``l``."""
        return self.plan(l).matrix

    def aggregate(self, flow_scores: np.ndarray) -> np.ndarray:
        """``(L, E+N)`` sums of flow scores per layer edge (Eq. 3)."""
        flow_scores = np.asarray(flow_scores, dtype=np.float64)
        if flow_scores.shape != (self.index.num_flows,):
            raise FlowError(
                f"flow_scores must have shape ({self.index.num_flows},), got {flow_scores.shape}"
            )
        spmm = kernel("spmm")
        return np.stack([spmm(p.matrix, flow_scores) for p in self._plans])

    def flows_per_layer_edge(self) -> np.ndarray:
        """``(L, E+N)`` count of flows through each layer edge.

        Read directly off the compiled plans' segment counts — no scatter.
        """
        return np.stack([p.counts for p in self._plans]).astype(np.int64)

    def flows_removed_by_edges(self, layer_edge_ids: np.ndarray) -> np.ndarray:
        """Boolean mask of flows that traverse *any* of the given layer edges
        at *any* layer.

        This is the set FlowX must account for when it deletes edges: every
        flow whose path uses a removed edge is silenced.
        """
        ids = np.unique(np.asarray(layer_edge_ids, dtype=np.int64).reshape(-1))
        if ids.size == 0:
            return np.zeros(self.index.num_flows, dtype=bool)
        # One isin over the whole (F, L) table, reduced along the layer
        # axis — no per-layer Python loop or set round-trip.
        return np.isin(self.index.layer_edges, ids).any(axis=1)
