"""Wildcard queries over flow node sequences (paper §III notation).

The paper writes :math:`F_{i*j}` for "flows starting at node i and ending
at node j", with ``*`` matching any (possibly empty) node subsequence,
``?`` matching exactly one node, and ``?{n}`` matching exactly n nodes.
:func:`match_flows` evaluates such patterns over a :class:`FlowIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FlowError
from .enumeration import FlowIndex

__all__ = ["FlowPattern", "match_flows", "parse_pattern"]

Token = int | str | tuple[str, int]


@dataclass(frozen=True)
class FlowPattern:
    """A parsed wildcard pattern over node sequences.

    Tokens: an ``int`` matches that node id; ``"?"`` matches one node;
    ``("?", n)`` matches exactly ``n`` nodes; ``"*"`` matches any number of
    nodes (including zero).
    """

    tokens: tuple[Token, ...]

    def __str__(self) -> str:
        parts = []
        for t in self.tokens:
            if isinstance(t, tuple):
                parts.append(f"?{{{t[1]}}}")
            else:
                parts.append(str(t))
        return " ".join(parts)


def parse_pattern(spec: str) -> FlowPattern:
    """Parse a whitespace-separated pattern string.

    Examples: ``"3 * 7"`` is :math:`F_{3*7}`;
    ``"?{2} 4 5 *"`` is :math:`F_{?\\{2\\}45*}` (flows taking their third
    step along edge 4→5).
    """
    tokens: list[Token] = []
    for raw in spec.split():
        if raw == "*" or raw == "?":
            tokens.append(raw)
        elif raw.startswith("?{") and raw.endswith("}"):
            n = int(raw[2:-1])
            if n < 0:
                raise FlowError(f"negative repetition in pattern token {raw!r}")
            tokens.append(("?", n))
        else:
            try:
                tokens.append(int(raw))
            except ValueError as exc:
                raise FlowError(f"bad pattern token {raw!r}") from exc
    if not tokens:
        raise FlowError("empty flow pattern")
    return FlowPattern(tuple(tokens))


def _expand(tokens: tuple[Token, ...]) -> list[Token]:
    """Expand ?{n} repetitions into n single '?' tokens."""
    out: list[Token] = []
    for t in tokens:
        if isinstance(t, tuple):
            out.extend(["?"] * t[1])
        else:
            out.append(t)
    return out


def _matches(seq: np.ndarray, tokens: list[Token], si: int, ti: int) -> bool:
    """Recursive wildcard match of ``tokens[ti:]`` against ``seq[si:]``."""
    while ti < len(tokens):
        tok = tokens[ti]
        if tok == "*":
            # Try every split; '*' may absorb zero or more nodes.
            for skip in range(len(seq) - si + 1):
                if _matches(seq, tokens, si + skip, ti + 1):
                    return True
            return False
        if si >= len(seq):
            return False
        if tok == "?":
            si += 1
        else:
            if int(seq[si]) != tok:
                return False
            si += 1
        ti += 1
    return si == len(seq)


def match_flows(index: FlowIndex, pattern: FlowPattern | str) -> np.ndarray:
    """Indices of flows whose node sequence matches ``pattern``."""
    if isinstance(pattern, str):
        pattern = parse_pattern(pattern)
    tokens = _expand(pattern.tokens)
    fixed = [t for t in tokens if t != "*"]
    if len(fixed) > index.num_layers + 1:
        return np.zeros(0, dtype=np.int64)

    # Fast paths: anchor on fixed positions before/after wildcards.
    hits = [f for f in range(index.num_flows) if _matches(index.nodes[f], tokens, 0, 0)]
    return np.asarray(hits, dtype=np.int64)
