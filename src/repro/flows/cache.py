"""Cross-explainer per-instance flow cache.

Revelio, FlowX and GNN-LRP benchmarked on the same instance each enumerate
the identical flow set (and the fidelity harness re-extracts the identical
L-hop node context). Enumeration is pure in the graph structure, so this
module memoizes :func:`repro.flows.enumerate_flows` — and, via
:class:`LRUCache`, node contexts — keyed by a structural *fingerprint* of
the graph plus ``(num_layers, target)``. Entries are evicted LRU; mutating
a graph's edges changes its fingerprint, which is the implicit
invalidation path, and :func:`invalidate` / :meth:`FlowCache.clear` are the
explicit ones.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from contextlib import contextmanager

import numpy as np

from ..errors import FlowError
from ..graph import Graph
from ..obs.counters import PERF
from .enumeration import DEFAULT_MAX_FLOWS, FlowIndex, enumerate_flows

__all__ = [
    "graph_fingerprint",
    "LRUCache",
    "FlowCache",
    "FLOW_CACHE",
    "cached_enumerate_flows",
    "invalidate",
    "flow_cache_disabled",
]


def graph_fingerprint(graph: Graph) -> str:
    """Structural identity of a graph for flow purposes.

    Flows depend only on ``(num_nodes, edge_index)``; features and labels
    are irrelevant. Any edge edit (including :meth:`Graph.with_edges`)
    yields a different fingerprint, so stale entries can never be returned
    for a perturbed graph.
    """
    h = hashlib.sha1()
    h.update(str(graph.num_nodes).encode())
    h.update(np.ascontiguousarray(graph.edge_index).tobytes())
    return h.hexdigest()


class LRUCache:
    """A small insertion-ordered LRU map (no external deps)."""

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def pop_matching(self, predicate) -> int:
        """Drop entries whose key satisfies ``predicate``; return the count."""
        doomed = [k for k in self._data if predicate(k)]
        for k in doomed:
            del self._data[k]
        return len(doomed)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data


class FlowCache:
    """Memoized flow enumeration keyed by ``(fingerprint, L, target)``."""

    def __init__(self, maxsize: int = 128):
        self._cache = LRUCache(maxsize)
        self.enabled = True

    def get_flow_index(self, graph: Graph, num_layers: int, target: int | None = None,
                       max_flows: int = DEFAULT_MAX_FLOWS) -> FlowIndex:
        """Return a (possibly cached) :class:`FlowIndex` for the instance.

        The cached object is shared between callers — it is treated as
        immutable by every consumer. ``max_flows`` semantics are preserved:
        a cached index larger than the caller's ceiling raises exactly as a
        fresh enumeration would.
        """
        if not self.enabled:
            return enumerate_flows(graph, num_layers, target=target, max_flows=max_flows)
        key = (graph_fingerprint(graph), num_layers, target)
        index = self._cache.get(key)
        if index is None:
            index = enumerate_flows(graph, num_layers, target=target, max_flows=max_flows)
            self._cache.put(key, index)
        else:
            PERF.flow_cache_hits += 1
            if index.num_flows > max_flows:
                raise FlowError(
                    f"flow enumeration exceeded max_flows={max_flows}; "
                    "reduce graph size or raise the limit"
                )
        return index

    def invalidate(self, graph: Graph | None = None) -> int:
        """Drop entries for ``graph`` (or everything with ``None``)."""
        if graph is None:
            n = len(self._cache)
            self._cache.clear()
            return n
        fp = graph_fingerprint(graph)
        return self._cache.pop_matching(lambda key: key[0] == fp)

    def clear(self) -> None:
        self._cache.clear()

    def cache_info(self) -> dict:
        return {
            "entries": len(self._cache),
            "maxsize": self._cache.maxsize,
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "enabled": self.enabled,
        }


#: Process-global cache shared by all explainers.
FLOW_CACHE = FlowCache()


def cached_enumerate_flows(graph: Graph, num_layers: int, target: int | None = None,
                           max_flows: int = DEFAULT_MAX_FLOWS) -> FlowIndex:
    """Drop-in cached variant of :func:`repro.flows.enumerate_flows`."""
    return FLOW_CACHE.get_flow_index(graph, num_layers, target=target,
                                     max_flows=max_flows)


def invalidate(graph: Graph | None = None) -> int:
    """Explicitly invalidate cached flow data (all entries with ``None``)."""
    return FLOW_CACHE.invalidate(graph)


@contextmanager
def flow_cache_disabled():
    """Temporarily bypass the cache (benchmark baselines, isolation tests)."""
    prev = FLOW_CACHE.enabled
    FLOW_CACHE.enabled = False
    try:
        yield
    finally:
        FLOW_CACHE.enabled = prev
