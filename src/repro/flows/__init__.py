"""Message-flow enumeration, incidence and pattern queries."""

from .enumeration import FlowIndex, count_flows, enumerate_flows
from .grouping import (
    group_by_destination,
    group_by_path_length,
    group_by_patterns,
    group_by_source,
)
from .incidence import FlowIncidence
from .patterns import FlowPattern, match_flows, parse_pattern

__all__ = [
    "FlowIndex",
    "enumerate_flows",
    "count_flows",
    "FlowIncidence",
    "FlowPattern",
    "match_flows",
    "parse_pattern",
    "group_by_source",
    "group_by_destination",
    "group_by_path_length",
    "group_by_patterns",
]
