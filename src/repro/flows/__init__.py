"""Message-flow enumeration, incidence and pattern queries."""

from .cache import (
    FLOW_CACHE,
    FlowCache,
    cached_enumerate_flows,
    flow_cache_disabled,
    graph_fingerprint,
    invalidate,
)
from .enumeration import FlowIndex, count_flows, enumerate_flows
from .grouping import (
    group_by_destination,
    group_by_path_length,
    group_by_patterns,
    group_by_source,
)
from .incidence import FlowIncidence
from .patterns import FlowPattern, match_flows, parse_pattern

__all__ = [
    "FlowIndex",
    "enumerate_flows",
    "count_flows",
    "cached_enumerate_flows",
    "FlowCache",
    "FLOW_CACHE",
    "flow_cache_disabled",
    "graph_fingerprint",
    "invalidate",
    "FlowIncidence",
    "FlowPattern",
    "match_flows",
    "parse_pattern",
    "group_by_source",
    "group_by_destination",
    "group_by_path_length",
    "group_by_patterns",
]
