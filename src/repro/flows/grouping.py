"""Flow grouping: aggregate per-flow scores into interpretable buckets.

A raw flow ranking can contain hundreds of entries; grouping them answers
higher-level questions directly from the paper's use cases — "how much
importance enters from node i?" (:func:`group_by_source`), "does the model
rely on long-range or local flows?" (:func:`group_by_path_length`), and
arbitrary §III wildcard buckets (:func:`group_by_patterns`).
"""

from __future__ import annotations

import numpy as np

from ..errors import FlowError
from .enumeration import FlowIndex
from .patterns import FlowPattern, match_flows

__all__ = ["group_by_source", "group_by_destination", "group_by_path_length",
           "group_by_patterns"]


def _check(index: FlowIndex, scores: np.ndarray) -> np.ndarray:
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (index.num_flows,):
        raise FlowError(
            f"scores must have shape ({index.num_flows},), got {scores.shape}"
        )
    return scores


def group_by_source(index: FlowIndex, scores: np.ndarray,
                    reduce: str = "sum") -> dict[int, float]:
    """Aggregate flow scores by the flow's source node ``v_0``."""
    scores = _check(index, scores)
    return _grouped(index.nodes[:, 0], scores, reduce)


def group_by_destination(index: FlowIndex, scores: np.ndarray,
                         reduce: str = "sum") -> dict[int, float]:
    """Aggregate flow scores by the flow's final node ``v_L``."""
    scores = _check(index, scores)
    return _grouped(index.nodes[:, -1], scores, reduce)


def group_by_path_length(index: FlowIndex, scores: np.ndarray,
                         reduce: str = "sum") -> dict[int, float]:
    """Aggregate by *effective* path length — steps that move to a new node.

    A flow padded with self-loops (``v → v → u``) has effective length 1;
    this distinguishes genuinely multi-hop information from features the
    model carries forward in place.
    """
    scores = _check(index, scores)
    moves = (index.nodes[:, 1:] != index.nodes[:, :-1]).sum(axis=1)
    return _grouped(moves, scores, reduce)


def group_by_patterns(index: FlowIndex, scores: np.ndarray,
                      patterns: dict[str, FlowPattern | str],
                      reduce: str = "sum") -> dict[str, float]:
    """Aggregate scores into named wildcard buckets.

    Example: ``{"into_motif": "* 80", "self_only": "81 81 81 81"}``.
    Buckets may overlap; flows matching nothing are reported under
    ``"<unmatched>"``.
    """
    scores = _check(index, scores)
    out: dict[str, float] = {}
    matched = np.zeros(index.num_flows, dtype=bool)
    for name, pattern in patterns.items():
        hits = match_flows(index, pattern)
        matched[hits] = True
        out[name] = _reduce(scores[hits], reduce)
    leftovers = scores[~matched]
    out["<unmatched>"] = _reduce(leftovers, reduce)
    return out


def _grouped(keys: np.ndarray, scores: np.ndarray, reduce: str) -> dict[int, float]:
    out: dict[int, float] = {}
    for key in np.unique(keys):
        out[int(key)] = _reduce(scores[keys == key], reduce)
    return out


def _reduce(values: np.ndarray, reduce: str) -> float:
    if values.size == 0:
        return 0.0
    if reduce == "sum":
        return float(values.sum())
    if reduce == "mean":
        return float(values.mean())
    if reduce == "max":
        return float(values.max())
    raise FlowError(f"unknown reduction {reduce!r}; expected sum/mean/max")
