"""repro.obs — observability: counters, hierarchical tracing, manifests.

Two halves, one subsystem:

* **Counters** (:mod:`repro.obs.counters`): the always-on global
  :data:`PERF` object counting forwards, enumerations and cache hits —
  answers *how much* work ran.
* **Tracer** (:mod:`repro.obs.trace`): opt-in nested spans over the hot
  paths (explain → context-extract → flow-enumerate → epoch →
  masked-forward) — answers *where the time went*.

Both ship deltas across the worker pool (``PERF.merge`` /
``TRACER.absorb``) so multiprocess runs stay truthful, and a
:class:`RunManifest` ties a run's trace, counters, config, seeds and
dataset fingerprint into one reproduction recipe.
"""

from . import names
from .counters import PERF, PerfCounters, perf_snapshot, reset_perf
from .manifest import (
    RunManifest,
    build_manifest,
    dataset_fingerprint,
    git_revision,
    load_manifest,
)
from .session import TraceSession
from .summary import (
    cache_summary,
    format_cache_summary,
    format_summary,
    load_trace,
    summarize_spans,
    summarize_trace,
)
from .trace import (
    TRACER,
    JsonlSink,
    MemorySink,
    NullSink,
    Span,
    Tracer,
    TraceSink,
    current_span,
    span,
    tracing,
)

__all__ = [
    "names",
    "PERF",
    "PerfCounters",
    "perf_snapshot",
    "reset_perf",
    "Span",
    "Tracer",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "TRACER",
    "span",
    "current_span",
    "tracing",
    "RunManifest",
    "build_manifest",
    "load_manifest",
    "dataset_fingerprint",
    "git_revision",
    "TraceSession",
    "load_trace",
    "summarize_spans",
    "format_summary",
    "summarize_trace",
    "cache_summary",
    "format_cache_summary",
]
