"""Declared registry of every span, stage and counter name in the tree.

Observability strings used to be bare literals at each call site: a
typo'd ``PERF.stage("masked_foward_batch")`` would silently open a fresh
stage bucket and a misspelt span name would fragment the trace summary —
neither fails a test. This module is the single source of truth the
call sites import from, and the :mod:`repro.checks` rules ``RPR030`` /
``RPR031`` statically verify that every string literal reaching
``span(...)`` / ``TRACER.start_span(...)`` / ``PERF.stage(...)`` and
every ``PERF.<attr>`` access resolves against it.

Adding a new span or stage is a two-line change: define the constant
here and add it to the matching frozenset; the lint pass then accepts it
everywhere.
"""

from __future__ import annotations

from .counters import PerfCounters

__all__ = [
    "SPAN_EXPLAIN",
    "SPAN_CONTEXT_EXTRACT",
    "SPAN_FLOW_ENUMERATE",
    "SPAN_MASKED_FORWARD_BATCH",
    "SPAN_OPTIMIZE",
    "SPAN_EPOCH",
    "SPAN_FIT",
    "SPAN_METHOD",
    "SPAN_JOB",
    "SPAN_EXPERIMENT",
    "SPAN_FIDELITY_SWEEP",
    "SPAN_SERVE_BATCH",
    "SPAN_SAMPLED_EXTRACT",
    "SPAN_NAMES",
    "STAGE_MASKED_FORWARD_BATCH",
    "STAGE_NAMES",
    "COUNTER_NAMES",
    "WORKLOAD_FLOWX",
    "WORKLOAD_GNN_LRP",
    "WORKLOAD_FIDELITY_CURVE",
    "WORKLOAD_REVELIO_WARM_CACHE",
    "WORKLOAD_OBS_OVERHEAD",
    "WORKLOAD_RUNNER_SCALING",
    "WORKLOAD_SCALING_LAW",
    "WORKLOAD_TRAINING_EPOCH",
    "WORKLOAD_SERVING_LOAD",
    "WORKLOAD_SAMPLED_EXPLAIN",
    "WORKLOAD_LINT_CACHE",
    "WORKLOAD_NAMES",
]

# ----------------------------------------------------------------------
# span names (repro.obs.trace.span / Tracer.start_span)
# ----------------------------------------------------------------------
#: Root span of a traced experiment run (opened by TraceSession).
SPAN_EXPERIMENT = "experiment"
#: One (method, dataset) cell of an experiment grid.
SPAN_METHOD = "method"
#: Group-level training of PGExplainer / GraphMask before explaining.
SPAN_FIT = "fit"
#: One sharded-runner job (inline or in a worker process).
SPAN_JOB = "job"
#: One Explainer.explain call.
SPAN_EXPLAIN = "explain"
#: L-hop neighborhood extraction around a target node.
SPAN_CONTEXT_EXTRACT = "context_extract"
#: One fresh repro.flows.enumerate_flows run.
SPAN_FLOW_ENUMERATE = "flow_enumerate"
#: One batched masked forward through the engine.
SPAN_MASKED_FORWARD_BATCH = "masked_forward_batch"
#: Revelio's whole mask-optimization loop.
SPAN_OPTIMIZE = "optimize"
#: One optimizer epoch inside the loop.
SPAN_EPOCH = "epoch"
#: One fidelity-over-sparsity sweep (Fig. 3 / Fig. 4 line).
SPAN_FIDELITY_SWEEP = "fidelity_sweep"
#: One coalesced micro-batch executed by the serving daemon.
SPAN_SERVE_BATCH = "serve_batch"
#: One batched receptive-field extraction (repro.sampling).
SPAN_SAMPLED_EXTRACT = "sampled_extract"

SPAN_NAMES: frozenset[str] = frozenset({
    SPAN_EXPERIMENT,
    SPAN_METHOD,
    SPAN_FIT,
    SPAN_JOB,
    SPAN_EXPLAIN,
    SPAN_CONTEXT_EXTRACT,
    SPAN_FLOW_ENUMERATE,
    SPAN_MASKED_FORWARD_BATCH,
    SPAN_OPTIMIZE,
    SPAN_EPOCH,
    SPAN_FIDELITY_SWEEP,
    SPAN_SERVE_BATCH,
    SPAN_SAMPLED_EXTRACT,
})

# ----------------------------------------------------------------------
# stage names (PERF.stage wall-clock accumulators)
# ----------------------------------------------------------------------
STAGE_MASKED_FORWARD_BATCH = "masked_forward_batch"

STAGE_NAMES: frozenset[str] = frozenset({
    STAGE_MASKED_FORWARD_BATCH,
})

# ----------------------------------------------------------------------
# counter names (PERF integer attributes)
# ----------------------------------------------------------------------
#: Every integer counter on PerfCounters; derived from the class itself
#: so the registry can never drift from the runtime object.
COUNTER_NAMES: frozenset[str] = frozenset(
    name for name in PerfCounters.__slots__ if name != "stage_seconds"
)

# ----------------------------------------------------------------------
# benchmark workload names (BENCH_perf.json "workloads" keys)
# ----------------------------------------------------------------------
# The perf harness records each measured scenario under one of these keys;
# downstream tooling (CI artifact diffing, BENCH_history.jsonl, the README
# tables) joins on them, so a typo'd literal would silently fork a series.
# Rule ``RPR040`` verifies every ``results["..."] = ...`` in ``bench_*``
# modules against this registry.

#: FlowX sampled-Shapley batched-vs-serial comparison.
WORKLOAD_FLOWX = "flowx"
#: GNN-LRP finite-difference batched-vs-serial comparison.
WORKLOAD_GNN_LRP = "gnn_lrp"
#: Fidelity-over-sparsity sweep batched-vs-serial comparison.
WORKLOAD_FIDELITY_CURVE = "fidelity_curve"
#: Revelio cold vs. warm repeat-explain timing (cache effectiveness).
WORKLOAD_REVELIO_WARM_CACHE = "revelio_warm_cache"
#: Tracing/counter overhead measurement (obs on vs. off).
WORKLOAD_OBS_OVERHEAD = "obs_overhead"
#: Sharded-runner worker-count scaling curve.
WORKLOAD_RUNNER_SCALING = "runner_scaling"
#: Masked-forward time vs. graph size: CSR kernels vs. dense scatter.
WORKLOAD_SCALING_LAW = "scaling_law"
#: Full training epoch (forward+backward+step): plan-backed kernels vs.
#: the np.add.at dense-scatter path, with gradient parity.
WORKLOAD_TRAINING_EPOCH = "training_epoch"
#: Serving daemon under concurrent load: coalesced micro-batching vs.
#: per-request serial execution (throughput + p50/p99 latency).
WORKLOAD_SERVING_LOAD = "serving_load"
#: Receptive-field sampled explanation vs. the full-graph path at scaled
#: Cora sizes (wall-clock speedup + peak-memory ratio + exact parity).
WORKLOAD_SAMPLED_EXPLAIN = "sampled_explain"
#: ``repro lint`` cold vs. warm run over the repository's own tree — the
#: warm run is served by the ``.repro_lint_cache.json`` parse cache.
WORKLOAD_LINT_CACHE = "lint_cache"

WORKLOAD_NAMES: frozenset[str] = frozenset({
    WORKLOAD_FLOWX,
    WORKLOAD_GNN_LRP,
    WORKLOAD_FIDELITY_CURVE,
    WORKLOAD_REVELIO_WARM_CACHE,
    WORKLOAD_OBS_OVERHEAD,
    WORKLOAD_RUNNER_SCALING,
    WORKLOAD_SCALING_LAW,
    WORKLOAD_TRAINING_EPOCH,
    WORKLOAD_SERVING_LOAD,
    WORKLOAD_SAMPLED_EXPLAIN,
    WORKLOAD_LINT_CACHE,
})
