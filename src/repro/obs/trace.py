"""Hierarchical tracing: nested spans with contextvar propagation.

A :class:`Span` measures one timed operation (an ``explain`` call, a flow
enumeration, one optimizer epoch, a batched masked forward); spans nest
through a :data:`contextvars.ContextVar`, so a span opened anywhere inside
another span's dynamic extent records it as its parent — including across
generator suspensions and threads started per-context.

Design constraints, in order:

1. **Disabled is (nearly) free.** The process-global :data:`TRACER` starts
   disabled with a :class:`NullSink`; the :func:`span` helper then returns
   a shared no-op context manager without allocating anything. The
   perf-smoke bench pins the instrumentation overhead of a disabled
   tracer below 5% of the hot workloads.
2. **Bounded memory.** Finished spans land in a bounded deque; overflow
   evicts the oldest record and counts it in :attr:`Tracer.dropped`.
   Per-``(method, stage)`` aggregates are updated for *every* finished
   span — never dropped — so manifests stay truthful even when the raw
   buffer wraps.
3. **Mergeable across processes.** Workers :meth:`Tracer.drain` their
   buffer and ship the records with each job result; the parent
   :meth:`Tracer.absorb`\\ s them into one trace (re-stamping the trace id
   and re-parenting orphan roots under the current span), mirroring
   ``PERF.merge`` for the counter half.

Span record schema (one JSON object per line in exported traces)::

    {"name": str, "trace_id": str, "span_id": str, "parent_id": str|null,
     "pid": int, "start": float, "seconds": float, "attrs": {...}}

``attrs["method"]`` is inherited from the parent span at start time, so
every span under an ``explain``/``job`` span can be grouped by method
without walking ancestry chains.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Protocol

__all__ = [
    "Span",
    "Tracer",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "TRACER",
    "span",
    "current_span",
    "tracing",
]

#: Default bound on buffered finished-span records per process.
DEFAULT_BUFFER_SPANS = 50_000

_CURRENT: ContextVar["Span | None"] = ContextVar("repro_current_span", default=None)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class TraceSink(Protocol):
    """Destination for finished span records (called once per span)."""

    def emit(self, record: dict) -> None:
        """Receive one finished span record."""


class NullSink:
    """Discards every record — the default sink."""

    def emit(self, record: dict) -> None:
        pass


class MemorySink:
    """Collects records in a plain list (tests, ad-hoc inspection)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)


class JsonlSink:
    """Streams each record to a JSONL file as it finishes.

    Unlike :meth:`Tracer.export_jsonl` (one bounded write at run end),
    this sink never drops spans — at the cost of a write per span.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        line = json.dumps(record) + "\n"
        with self._lock:
            self._fh.write(line)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()


class Span:
    """One in-flight or finished timed operation."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "start", "seconds")

    def __init__(self, name: str, trace_id: str, parent_id: str | None,
                 attrs: dict):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = time.perf_counter()
        self.seconds = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes after the span has started."""
        self.attrs.update(attrs)
        return self

    def to_record(self) -> dict:
        return {"name": self.name, "trace_id": self.trace_id,
                "span_id": self.span_id, "parent_id": self.parent_id,
                "pid": os.getpid(), "start": self.start,
                "seconds": self.seconds, "attrs": self.attrs}

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds:.6f}s, attrs={self.attrs})"


class _NullSpanContext:
    """Shared no-op context manager returned by :func:`span` when disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Process-global span recorder with a bounded buffer and aggregates."""

    def __init__(self, sink: TraceSink | None = None,
                 max_buffer: int = DEFAULT_BUFFER_SPANS):
        self.enabled = False
        self.sink: TraceSink = sink if sink is not None else NullSink()
        self.trace_id: str | None = None
        self.dropped = 0
        self._buffer: deque[dict] = deque(maxlen=max_buffer)
        # (method|None, stage name) -> [count, seconds]; updated for every
        # finished span regardless of buffer eviction.
        self._aggregates: dict[tuple[str | None, str], list] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self, trace_id: str | None = None,
               sink: TraceSink | None = None) -> str:
        """Start recording; returns the active trace id."""
        if sink is not None:
            self.sink = sink
        self.trace_id = trace_id or _new_id()
        self.enabled = True
        return self.trace_id

    def disable(self) -> None:
        """Stop recording (buffered records are kept until :meth:`reset`)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop buffered records, aggregates and the drop counter."""
        with self._lock:
            self._buffer.clear()
            self._aggregates.clear()
            self.dropped = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def start_span(self, name: str, attrs: dict):
        parent = _CURRENT.get()
        if "method" not in attrs and parent is not None \
                and "method" in parent.attrs:
            attrs["method"] = parent.attrs["method"]
        sp = Span(name, self.trace_id or "untraced",
                  parent.span_id if parent is not None else None, attrs)
        token = _CURRENT.set(sp)
        try:
            yield sp
        finally:
            sp.seconds = time.perf_counter() - sp.start
            _CURRENT.reset(token)
            self._record(sp.to_record())

    def _record(self, record: dict) -> None:
        with self._lock:
            if len(self._buffer) == self._buffer.maxlen:
                self.dropped += 1
            self._buffer.append(record)
            key = (record["attrs"].get("method"), record["name"])
            agg = self._aggregates.get(key)
            if agg is None:
                self._aggregates[key] = [1, record["seconds"]]
            else:
                agg[0] += 1
                agg[1] += record["seconds"]
        self.sink.emit(record)

    # ------------------------------------------------------------------
    # cross-process merging (the runner protocol)
    # ------------------------------------------------------------------
    def drain(self) -> dict:
        """Pop every buffered record: ``{"records": [...], "dropped": n}``.

        Workers call this after each job and ship the result with the
        job's result envelope; the drop counter resets with the buffer so
        each shipment reports only its own evictions.
        """
        with self._lock:
            records = list(self._buffer)
            self._buffer.clear()
            dropped, self.dropped = self.dropped, 0
        return {"records": records, "dropped": dropped}

    def absorb(self, shipment: dict | None) -> None:
        """Merge a worker's :meth:`drain` shipment into this tracer.

        Records are re-stamped with this tracer's trace id and orphan
        roots (``parent_id is None``) are re-parented under the current
        span, so a multiprocess run yields one connected trace.
        """
        if not shipment:
            return
        parent = _CURRENT.get()
        parent_id = parent.span_id if parent is not None else None
        with self._lock:
            self.dropped += int(shipment.get("dropped", 0))
        for record in shipment.get("records", ()):
            if self.trace_id is not None:
                record["trace_id"] = self.trace_id
            if record.get("parent_id") is None and parent_id is not None:
                record["parent_id"] = parent_id
            self._record(record)

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """Copy of the buffered finished-span records (oldest first)."""
        with self._lock:
            return list(self._buffer)

    def aggregate_table(self) -> dict:
        """``{method: {stage: {"count": n, "seconds": s}}}`` totals.

        Spans with no ``method`` attribute are grouped under ``"-"``.
        Unlike :meth:`records`, aggregates survive buffer eviction.
        """
        out: dict[str, dict] = {}
        with self._lock:
            items = list(self._aggregates.items())
        for (method, stage), (count, seconds) in items:
            out.setdefault(method or "-", {})[stage] = {
                "count": count, "seconds": seconds,
            }
        return out

    def export_jsonl(self, path: str | Path) -> Path:
        """Write buffered records to ``path`` (one JSON object per line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records():
                fh.write(json.dumps(record) + "\n")
        return path


TRACER = Tracer()


def span(name: str, **attrs):
    """Open a span under the global tracer.

    The hot-path entry point: when tracing is disabled this returns a
    shared no-op context manager immediately. Use as::

        with span("flow_enumerate", num_layers=L) as sp:
            ...
            if sp is not None:
                sp.set(num_flows=index.num_flows)

    ``sp`` is ``None`` when tracing is disabled.
    """
    if not TRACER.enabled:
        return _NULL_SPAN
    return TRACER.start_span(name, attrs)


def current_span() -> Span | None:
    """The innermost open span in this context, or ``None``."""
    return _CURRENT.get()


@contextmanager
def tracing(sink: TraceSink | None = None, trace_id: str | None = None):
    """Enable the global tracer for a block; restores the prior state.

    Yields the tracer. Primarily for tests and ad-hoc measurement; runs
    started through :class:`repro.obs.session.TraceSession` manage the
    tracer themselves.
    """
    prev_enabled = TRACER.enabled
    prev_sink = TRACER.sink
    prev_trace_id = TRACER.trace_id
    TRACER.enable(trace_id=trace_id, sink=sink)
    try:
        yield TRACER
    finally:
        TRACER.enabled = prev_enabled
        TRACER.sink = prev_sink
        TRACER.trace_id = prev_trace_id
