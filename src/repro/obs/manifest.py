"""Run manifests: everything needed to reproduce one experiment run.

Every traced experiment writes a ``RunManifest`` JSON next to its trace:
the experiment coordinates (artifact, dataset, conv, methods, mode, config
snapshot), the code identity (git sha, package version, python/numpy
versions), the dataset fingerprint, the seed, the run's PERF counter
delta, and the tracer's per-method span aggregates. A results-table row
plus its manifest is a self-contained reproduction recipe; the span
aggregates are the paper-style per-phase cost breakdown (flow enumeration
vs. mask optimization vs. masked forwards) that Table V's wall-clock
numbers summarize.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["RunManifest", "build_manifest", "load_manifest",
           "dataset_fingerprint", "git_revision"]

MANIFEST_SCHEMA_VERSION = 1


def git_revision() -> str | None:
    """The repository HEAD sha, or ``None`` outside a git checkout."""
    root = Path(__file__).resolve()
    for candidate in root.parents:
        if (candidate / ".git").exists():
            try:
                out = subprocess.run(
                    ["git", "rev-parse", "HEAD"], cwd=candidate, timeout=5.0,
                    capture_output=True, text=True, check=True,
                )
                return out.stdout.strip() or None
            except (OSError, subprocess.SubprocessError):
                return None
    return None


def dataset_fingerprint(dataset) -> str:
    """Stable content hash of a :mod:`repro.datasets` dataset.

    Node datasets hash their single graph; graph datasets hash the
    per-graph fingerprints in order, so any change to structure, features
    or graph count changes the fingerprint.
    """
    import hashlib

    from ..flows import graph_fingerprint

    if getattr(dataset, "task", None) == "node" or hasattr(dataset, "graph"):
        return graph_fingerprint(dataset.graph)
    digest = hashlib.sha1()
    for graph in dataset.graphs:
        digest.update(graph_fingerprint(graph).encode())
    return digest.hexdigest()


@dataclass
class RunManifest:
    """Provenance record for one experiment run.

    Attributes
    ----------
    trace_id:
        Id shared by every span of the run's merged trace.
    run:
        Experiment coordinates: artifact, dataset, conv, methods, mode,
        seed, effort/instance counts — the plan/driver meta dict.
    perf:
        :meth:`repro.obs.counters.PerfCounters.delta` over the run,
        including counters merged back from worker processes.
    spans:
        ``{method: {stage: {"count", "seconds"}}}`` aggregates from the
        merged trace (eviction-proof, see :class:`repro.obs.trace.Tracer`).
    dropped_spans:
        Raw records evicted from bounded buffers (aggregates unaffected).
    """

    trace_id: str
    run: dict
    perf: dict
    spans: dict
    dropped_spans: int = 0
    git_sha: str | None = None
    dataset_fingerprint: str | None = None
    created_unix: float = 0.0
    schema_version: int = MANIFEST_SCHEMA_VERSION
    versions: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, default=_jsonable)
                        + "\n", encoding="utf-8")
        return path

    def stage_seconds(self, method: str, stage: str) -> float:
        """Total seconds of ``stage`` spans under ``method`` (0.0 if none)."""
        return float(self.spans.get(method, {}).get(stage, {}).get("seconds", 0.0))


def _jsonable(value):
    """Fallback encoder: numpy scalars/arrays and paths degrade gracefully."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


def build_manifest(trace_id: str, run_meta: dict, perf_delta: dict,
                   span_aggregates: dict, dropped_spans: int = 0,
                   fingerprint: str | None = None) -> RunManifest:
    """Assemble a manifest from a finished run's measurements."""
    import numpy

    from ..version import __version__

    return RunManifest(
        trace_id=trace_id,
        run=dict(run_meta),
        perf=dict(perf_delta),
        spans=span_aggregates,
        dropped_spans=dropped_spans,
        git_sha=git_revision(),
        dataset_fingerprint=fingerprint,
        created_unix=time.time(),
        versions={"repro": __version__, "python": platform.python_version(),
                  "numpy": numpy.__version__},
    )


def load_manifest(path: str | Path) -> RunManifest:
    """Read a manifest written by :meth:`RunManifest.write`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    known = {f for f in RunManifest.__dataclass_fields__}
    return RunManifest(**{k: v for k, v in data.items() if k in known})
