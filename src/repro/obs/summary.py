"""Trace summarization: per-method, per-stage time breakdown tables.

FlowX and Relevant Walk Search report per-phase cost (flow enumeration
vs. mask optimization vs. search); :func:`summarize_spans` produces the
same breakdown mechanically from any exported trace, and
``repro trace summarize PATH`` renders it on the command line.

:func:`cache_summary` is the other half of introspection: one snapshot
of every process-global cache (flow, explanation, context, sparse
memos), rendered by ``repro stats`` and served by the daemon's
``/caches`` and ``/metrics`` endpoints.
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

from ..errors import EvaluationError

__all__ = ["load_trace", "summarize_spans", "format_summary", "summarize_trace",
           "cache_summary", "format_cache_summary"]


def load_trace(path: str | Path) -> list[dict]:
    """Read span records from a trace JSONL file (bad lines skipped)."""
    path = Path(path)
    if not path.exists():
        raise EvaluationError(f"no such trace file: {path}")
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "name" in record:
                records.append(record)
    return records


def summarize_spans(records: list[dict]) -> dict:
    """Aggregate span records into a per-method, per-stage breakdown.

    Returns ``{method: {stage: {"count", "seconds", "mean_seconds"}}}``;
    spans without a ``method`` attribute are grouped under ``"-"``.
    """
    table: dict[str, dict[str, dict]] = {}
    for record in records:
        method = (record.get("attrs") or {}).get("method") or "-"
        stage = record["name"]
        cell = table.setdefault(method, {}).setdefault(
            stage, {"count": 0, "seconds": 0.0})
        cell["count"] += 1
        cell["seconds"] += float(record.get("seconds", 0.0))
    for stages in table.values():
        for cell in stages.values():
            cell["mean_seconds"] = cell["seconds"] / max(cell["count"], 1)
    return table


def format_summary(table: dict, processes: int | None = None) -> list[str]:
    """Render a breakdown table as aligned text rows.

    Stages are ordered by descending total seconds within each method;
    methods by descending total ``explain`` time (then name) so the
    expensive methods lead, as in the paper's runtime table.
    """
    rows = [f"{'method':<16} {'stage':<22} {'count':>7} {'seconds':>10} "
            f"{'mean_ms':>9} {'share':>7}"]

    def method_cost(item):
        stages = item[1]
        total = stages.get("explain", {}).get("seconds")
        if total is None:
            total = sum(c["seconds"] for c in stages.values())
        return -total

    for method, stages in sorted(table.items(), key=lambda i: (method_cost(i), i[0])):
        denom = stages.get("explain", {}).get("seconds") or max(
            (c["seconds"] for c in stages.values()), default=0.0)
        for stage, cell in sorted(stages.items(), key=lambda i: -i[1]["seconds"]):
            share = cell["seconds"] / denom if denom > 0 else 0.0
            rows.append(
                f"{method:<16} {stage:<22} {cell['count']:>7} "
                f"{cell['seconds']:>10.4f} {cell['mean_seconds'] * 1e3:>9.2f} "
                f"{share:>6.1%}"
            )
    if processes is not None:
        rows.append(f"(spans from {processes} process{'es' if processes != 1 else ''})")
    return rows


def _lru_info(cache) -> dict:
    """entries/maxsize/hits/misses for a bare :class:`LRUCache`."""
    return {
        "entries": len(cache),
        "maxsize": cache.maxsize,
        "hits": cache.hits,
        "misses": cache.misses,
    }


def cache_summary() -> dict:
    """One snapshot of every process-global cache in the tree.

    Returns ``{cache_name: {"entries", "hits", "misses", ...}}`` covering
    the flow cache, Revelio's whole-explanation memo, the L-hop context
    cache and the sparse-structure memos. Imports lazily so reading stats
    never forces the numeric stack into processes that have not used it.
    """
    flows = importlib.import_module("repro.flows.cache")
    revelio = importlib.import_module("repro.core.revelio")
    base = importlib.import_module("repro.explain.base")
    sparse = importlib.import_module("repro.sparse.cache")
    summary = {
        "flow_cache": flows.FLOW_CACHE.cache_info(),
        "explanation_cache": _lru_info(revelio.EXPLANATION_CACHE),
        "context_cache": _lru_info(base.CONTEXT_CACHE),
    }
    for name, info in sparse.memo_info().items():
        summary[f"sparse_{name}"] = info
    return summary


def format_cache_summary(summary: dict | None = None) -> list[str]:
    """Render a :func:`cache_summary` snapshot as aligned text rows."""
    if summary is None:
        summary = cache_summary()
    rows = [f"{'cache':<24} {'entries':>8} {'maxsize':>8} {'hits':>8} "
            f"{'misses':>8} {'hit_rate':>9}"]
    for name, info in summary.items():
        hits, misses = info.get("hits", 0), info.get("misses", 0)
        total = hits + misses
        rate = f"{hits / total:>8.1%}" if total else f"{'-':>8}"
        entries = info.get("entries")
        maxsize = info.get("maxsize")
        rows.append(
            f"{name:<24} {entries if entries is not None else '-':>8} "
            f"{maxsize if maxsize is not None else '-':>8} "
            f"{hits:>8} {misses:>8} {rate:>9}"
        )
    return rows


def summarize_trace(path: str | Path) -> list[str]:
    """Load, aggregate and render one trace file (the CLI entry point)."""
    records = load_trace(path)
    if not records:
        raise EvaluationError(f"trace {path} contains no span records")
    processes = len({r.get("pid") for r in records if r.get("pid") is not None})
    return format_summary(summarize_spans(records), processes=processes or None)
