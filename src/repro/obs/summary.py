"""Trace summarization: per-method, per-stage time breakdown tables.

FlowX and Relevant Walk Search report per-phase cost (flow enumeration
vs. mask optimization vs. search); :func:`summarize_spans` produces the
same breakdown mechanically from any exported trace, and
``repro trace summarize PATH`` renders it on the command line.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import EvaluationError

__all__ = ["load_trace", "summarize_spans", "format_summary", "summarize_trace"]


def load_trace(path: str | Path) -> list[dict]:
    """Read span records from a trace JSONL file (bad lines skipped)."""
    path = Path(path)
    if not path.exists():
        raise EvaluationError(f"no such trace file: {path}")
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "name" in record:
                records.append(record)
    return records


def summarize_spans(records: list[dict]) -> dict:
    """Aggregate span records into a per-method, per-stage breakdown.

    Returns ``{method: {stage: {"count", "seconds", "mean_seconds"}}}``;
    spans without a ``method`` attribute are grouped under ``"-"``.
    """
    table: dict[str, dict[str, dict]] = {}
    for record in records:
        method = (record.get("attrs") or {}).get("method") or "-"
        stage = record["name"]
        cell = table.setdefault(method, {}).setdefault(
            stage, {"count": 0, "seconds": 0.0})
        cell["count"] += 1
        cell["seconds"] += float(record.get("seconds", 0.0))
    for stages in table.values():
        for cell in stages.values():
            cell["mean_seconds"] = cell["seconds"] / max(cell["count"], 1)
    return table


def format_summary(table: dict, processes: int | None = None) -> list[str]:
    """Render a breakdown table as aligned text rows.

    Stages are ordered by descending total seconds within each method;
    methods by descending total ``explain`` time (then name) so the
    expensive methods lead, as in the paper's runtime table.
    """
    rows = [f"{'method':<16} {'stage':<22} {'count':>7} {'seconds':>10} "
            f"{'mean_ms':>9} {'share':>7}"]

    def method_cost(item):
        stages = item[1]
        total = stages.get("explain", {}).get("seconds")
        if total is None:
            total = sum(c["seconds"] for c in stages.values())
        return -total

    for method, stages in sorted(table.items(), key=lambda i: (method_cost(i), i[0])):
        denom = stages.get("explain", {}).get("seconds") or max(
            (c["seconds"] for c in stages.values()), default=0.0)
        for stage, cell in sorted(stages.items(), key=lambda i: -i[1]["seconds"]):
            share = cell["seconds"] / denom if denom > 0 else 0.0
            rows.append(
                f"{method:<16} {stage:<22} {cell['count']:>7} "
                f"{cell['seconds']:>10.4f} {cell['mean_seconds'] * 1e3:>9.2f} "
                f"{share:>6.1%}"
            )
    if processes is not None:
        rows.append(f"(spans from {processes} process{'es' if processes != 1 else ''})")
    return rows


def summarize_trace(path: str | Path) -> list[str]:
    """Load, aggregate and render one trace file (the CLI entry point)."""
    records = load_trace(path)
    if not records:
        raise EvaluationError(f"trace {path} contains no span records")
    processes = len({r.get("pid") for r in records if r.get("pid") is not None})
    return format_summary(summarize_spans(records), processes=processes or None)
