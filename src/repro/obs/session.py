"""TraceSession: one traced experiment run from enable to manifest.

The experiment drivers wrap their work in a :class:`TraceSession` when
``ExecutionConfig.trace`` is set: it enables the global tracer, snapshots
the PERF counters, opens a root ``experiment`` span, and on
:meth:`TraceSession.finalize` exports the merged trace to JSONL and
writes a :class:`repro.obs.manifest.RunManifest` next to it.
"""

from __future__ import annotations

from pathlib import Path

from .counters import PERF
from .manifest import build_manifest
from .names import SPAN_EXPERIMENT
from .trace import TRACER, NullSink

__all__ = ["TraceSession"]


class TraceSession:
    """Context manager owning the tracer for one experiment run.

    Parameters
    ----------
    trace_path:
        Where the merged trace JSONL is written; the manifest lands next
        to it at ``<trace_path minus suffix>.manifest.json``.
    run_meta:
        Experiment coordinates recorded in the manifest (dataset, conv,
        methods, mode, config snapshot, seed).
    fingerprint:
        Optional dataset fingerprint for the manifest.
    """

    def __init__(self, trace_path: str | Path, run_meta: dict | None = None,
                 fingerprint: str | None = None):
        self.trace_path = Path(trace_path)
        self.run_meta = dict(run_meta or {})
        self.fingerprint = fingerprint
        self.trace_id: str | None = None
        self.manifest = None
        self.manifest_path: Path | None = None
        self._perf_before: dict | None = None
        self._root_cm = None
        self._prev = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "TraceSession":
        self._prev = (TRACER.enabled, TRACER.sink, TRACER.trace_id)
        TRACER.reset()
        self.trace_id = TRACER.enable(sink=NullSink())
        self._perf_before = PERF.snapshot()
        self._root_cm = TRACER.start_span(SPAN_EXPERIMENT, {})
        self._root_cm.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._root_cm is not None:
            self._root_cm.__exit__(exc_type, exc, tb)
            self._root_cm = None
        TRACER.disable()
        if exc_type is not None and self._prev is not None:
            # Failed run: restore the tracer without writing artifacts.
            TRACER.enabled, TRACER.sink, TRACER.trace_id = self._prev
        return False

    # ------------------------------------------------------------------
    def finalize(self, result: dict | None = None,
                 run_meta: dict | None = None) -> Path:
        """Export the trace, write the manifest, annotate ``result``.

        Call after the ``with`` block exits cleanly. Returns the trace
        path; ``result`` (if given) gains ``trace_path``,
        ``manifest_path``, ``trace_id`` and ``manifest`` keys.
        """
        if run_meta:
            self.run_meta.update(run_meta)
        perf_delta = PERF.delta(self._perf_before or {}, PERF.snapshot()) \
            if self._perf_before is not None else PERF.snapshot()
        TRACER.export_jsonl(self.trace_path)
        self.manifest = build_manifest(
            trace_id=self.trace_id or "untraced",
            run_meta=self.run_meta,
            perf_delta=perf_delta,
            span_aggregates=TRACER.aggregate_table(),
            dropped_spans=TRACER.dropped,
            fingerprint=self.fingerprint,
        )
        self.manifest_path = self.trace_path.with_suffix("").with_suffix(
            ".manifest.json") if self.trace_path.suffix else \
            self.trace_path.with_name(self.trace_path.name + ".manifest.json")
        self.manifest.write(self.manifest_path)
        if self._prev is not None:
            TRACER.enabled, TRACER.sink, TRACER.trace_id = self._prev
        if result is not None:
            result["trace_path"] = str(self.trace_path)
            result["manifest_path"] = str(self.manifest_path)
            result["trace_id"] = self.trace_id
            result["manifest"] = self.manifest.to_dict()
        return self.trace_path
