"""The counter half of :mod:`repro.obs`: cheap, always-on event counters.

A single process-global :data:`PERF` counter object tracks how much work
the inference and flow layers actually do — model forwards (single vs.
batched), flow enumerations, cache hits — plus named wall-clock stage
accumulators. The counters cost a few attribute increments per event, so
they stay on permanently; :mod:`repro.eval.timing` snapshots them around
explainer runs and ``benchmarks/bench_perf_smoke.py`` asserts on them.

Counters answer *how much* work ran; the tracer in
:mod:`repro.obs.trace` answers *where the time went*. The worker pool
ships deltas of both with every job result (see
:meth:`PerfCounters.merge` and :meth:`repro.obs.trace.Tracer.absorb`).

``repro.instrumentation`` re-exports everything here for backward
compatibility.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["PerfCounters", "PERF", "perf_snapshot", "reset_perf"]


class PerfCounters:
    """Monotonic event counters plus named stage timers.

    Attributes
    ----------
    single_forwards:
        Calls to :meth:`repro.nn.GNN.forward` (one model evaluation each).
    batched_forwards:
        Calls to :meth:`repro.nn.GNN.forward_masked_batch`.
    batched_rows:
        Total mask/feature rows evaluated across batched calls — the number
        of single forwards the batched engine replaced.
    flow_enumerations:
        Fresh :func:`repro.flows.enumerate_flows` runs.
    flow_cache_hits:
        Flow-index requests served from the cross-explainer cache.
    context_cache_hits:
        Node-context requests served from the cache.
    explanation_cache_hits:
        Whole ``explain_node`` results served from Revelio's memo (see
        :mod:`repro.core.revelio`).
    stage_seconds:
        Accumulated wall-clock per named stage (see :meth:`stage`).
    """

    __slots__ = (
        "single_forwards",
        "batched_forwards",
        "batched_rows",
        "flow_enumerations",
        "flow_cache_hits",
        "context_cache_hits",
        "explanation_cache_hits",
        "stage_seconds",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter and stage timer."""
        self.single_forwards = 0
        self.batched_forwards = 0
        self.batched_rows = 0
        self.flow_enumerations = 0
        self.flow_cache_hits = 0
        self.context_cache_hits = 0
        self.explanation_cache_hits = 0
        self.stage_seconds: dict[str, float] = {}

    def snapshot(self) -> dict:
        """Return a plain-dict copy of the current counter state."""
        return {
            "single_forwards": self.single_forwards,
            "batched_forwards": self.batched_forwards,
            "batched_rows": self.batched_rows,
            "flow_enumerations": self.flow_enumerations,
            "flow_cache_hits": self.flow_cache_hits,
            "context_cache_hits": self.context_cache_hits,
            "explanation_cache_hits": self.explanation_cache_hits,
            "stage_seconds": dict(self.stage_seconds),
        }

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Difference of two :meth:`snapshot` dicts (after − before)."""
        out = {
            k: after[k] - before[k]
            for k in after
            if k != "stage_seconds"
        }
        stages = {}
        for name, seconds in after["stage_seconds"].items():
            diff = seconds - before["stage_seconds"].get(name, 0.0)
            if diff > 0.0:
                stages[name] = diff
        out["stage_seconds"] = stages
        return out

    def merge(self, delta: dict) -> None:
        """Add a :meth:`delta` dict into these counters.

        The worker-pool protocol: each worker ships the delta of its own
        process-global counters with every job result and the parent
        merges it, so forwards/enumerations/cache hits and stage timings
        stay truthful under multiprocess runs. Also useful standalone for
        combining measurements from any out-of-process work.
        """
        for name in self.__slots__:
            if name == "stage_seconds":
                continue
            setattr(self, name, getattr(self, name) + int(delta.get(name, 0)))
        for stage, seconds in delta.get("stage_seconds", {}).items():
            self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    @contextmanager
    def stage(self, name: str):
        """Accumulate the wall-clock of the enclosed block under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + time.perf_counter() - t0
            )

    def __repr__(self) -> str:
        return (
            f"PerfCounters(single={self.single_forwards}, "
            f"batched={self.batched_forwards} calls/{self.batched_rows} rows, "
            f"enumerations={self.flow_enumerations}, "
            f"cache_hits={self.flow_cache_hits})"
        )


PERF = PerfCounters()


def perf_snapshot() -> dict:
    """Snapshot of the global counters (convenience wrapper)."""
    return PERF.snapshot()


def reset_perf() -> None:
    """Reset the global counters (convenience wrapper)."""
    PERF.reset()
