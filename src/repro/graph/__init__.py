"""Graph data structures and utilities (the PyG ``Data`` substitute)."""

from .batch import GraphBatch
from .data import Graph
from .generators import (
    balanced_tree_edges,
    barabasi_albert_edges,
    cycle_edges,
    erdos_renyi_edges,
    house_motif_edges,
    path_edges,
    sbm_edges,
)
from .io import load_graph, load_state_dict, save_graph, save_state_dict
from .transforms import (
    add_noise_edges,
    drop_edges,
    perturb_features,
    shuffle_labels,
    zero_features,
)
from .sampled import SampledSubgraph, extract_receptive_field, khop_in_nodes
from .utils import (
    add_reverse_edges,
    coalesce_edges,
    connected_components,
    edge_list,
    from_networkx,
    induced_subgraph,
    k_hop_subgraph,
    sparse_cache,
    to_csr,
    to_networkx,
    to_undirected,
)

__all__ = [
    "Graph",
    "GraphBatch",
    "coalesce_edges",
    "sparse_cache",
    "to_csr",
    "to_undirected",
    "add_reverse_edges",
    "k_hop_subgraph",
    "SampledSubgraph",
    "extract_receptive_field",
    "khop_in_nodes",
    "induced_subgraph",
    "connected_components",
    "edge_list",
    "from_networkx",
    "to_networkx",
    "save_graph",
    "load_graph",
    "save_state_dict",
    "load_state_dict",
    "barabasi_albert_edges",
    "balanced_tree_edges",
    "erdos_renyi_edges",
    "sbm_edges",
    "cycle_edges",
    "path_edges",
    "house_motif_edges",
    "add_noise_edges",
    "drop_edges",
    "perturb_features",
    "zero_features",
    "shuffle_labels",
]
