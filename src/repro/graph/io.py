"""Serialization for graphs and model checkpoints (npz / JSON).

Keeps experiments resumable: trained models and generated datasets can be
cached to disk and reloaded, which the benchmark harness uses to avoid
retraining a model for every figure.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import GraphError
from .data import Graph

__all__ = ["save_graph", "load_graph", "save_state_dict", "load_state_dict"]


def save_graph(graph: Graph, path: str | Path) -> None:
    """Serialize a :class:`Graph` to an ``.npz`` file."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "edge_index": graph.edge_index,
        "x": graph.x,
    }
    if isinstance(graph.y, np.ndarray):
        payload["y_array"] = graph.y
    elif graph.y is not None:
        payload["y_scalar"] = np.array([int(graph.y)])
    for name in ("train_mask", "val_mask", "test_mask"):
        mask = getattr(graph, name)
        if mask is not None:
            payload[name] = mask
    if graph.motif_edges is not None:
        payload["motif_edges"] = np.array(sorted(graph.motif_edges), dtype=np.int64)
    payload["meta_json"] = np.frombuffer(
        json.dumps(graph.meta, default=str).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_graph(path: str | Path) -> Graph:
    """Load a :class:`Graph` saved by :func:`save_graph`."""
    path = Path(path)
    if not path.exists():
        raise GraphError(f"no such graph file: {path}")
    with np.load(path, allow_pickle=False) as data:
        y: np.ndarray | int | None = None
        if "y_array" in data:
            y = data["y_array"]
        elif "y_scalar" in data:
            y = int(data["y_scalar"][0])
        motif = None
        if "motif_edges" in data:
            motif = frozenset((int(u), int(v)) for u, v in data["motif_edges"])
        meta = {}
        if "meta_json" in data:
            meta = json.loads(bytes(data["meta_json"]).decode())
        return Graph(
            edge_index=data["edge_index"],
            x=data["x"],
            y=y,
            train_mask=data["train_mask"] if "train_mask" in data else None,
            val_mask=data["val_mask"] if "val_mask" in data else None,
            test_mask=data["test_mask"] if "test_mask" in data else None,
            motif_edges=motif,
            meta=meta,
        )


def save_state_dict(state: dict[str, np.ndarray], path: str | Path) -> None:
    """Save a model state dict (name → array) to ``.npz``."""
    np.savez_compressed(Path(path), **{k.replace(".", "__"): v for k, v in state.items()})


def load_state_dict(path: str | Path) -> dict[str, np.ndarray]:
    """Load a model state dict saved by :func:`save_state_dict`."""
    path = Path(path)
    if not path.exists():
        raise GraphError(f"no such checkpoint file: {path}")
    with np.load(path, allow_pickle=False) as data:
        return {k.replace("__", "."): data[k].copy() for k in data.files}
