"""Graph utilities: degrees, subgraphs, k-hop neighborhoods, conversions.

These mirror the PyG ``torch_geometric.utils`` helpers the paper's code
relies on, implemented on numpy / scipy sparse.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
# Re-exported: the compiled scatter-structure cache lives with the sparse
# core but is naturally discovered next to the other graph helpers.
from ..sparse import sparse_cache  # noqa: F401
from .data import Graph
from .sampled import SampledSubgraph, extract_receptive_field

__all__ = [
    "coalesce_edges",
    "sparse_cache",
    "to_csr",
    "to_undirected",
    "add_reverse_edges",
    "k_hop_subgraph",
    "SampledSubgraph",
    "extract_receptive_field",
    "induced_subgraph",
    "connected_components",
    "edge_list",
    "from_networkx",
    "to_networkx",
]


def coalesce_edges(edge_index: np.ndarray) -> np.ndarray:
    """Sort edges lexicographically and drop duplicates."""
    edge_index = np.asarray(edge_index, dtype=np.int64)
    if edge_index.size == 0:
        return edge_index.reshape(2, 0)
    pairs = np.unique(edge_index.T, axis=0)
    return pairs.T


def to_csr(graph: Graph, weights: np.ndarray | None = None) -> sp.csr_matrix:
    """Adjacency as scipy CSR; ``A[i, j] = 1`` (or weight) for edge i→j."""
    data = np.ones(graph.num_edges) if weights is None else np.asarray(weights, dtype=np.float64)
    return sp.csr_matrix(
        (data, (graph.src, graph.dst)), shape=(graph.num_nodes, graph.num_nodes)
    )


def add_reverse_edges(edge_index: np.ndarray) -> np.ndarray:
    """Return edge_index with reversed edges appended (then coalesced)."""
    edge_index = np.asarray(edge_index, dtype=np.int64)
    both = np.concatenate([edge_index, edge_index[::-1]], axis=1)
    return coalesce_edges(both)


def to_undirected(graph: Graph) -> Graph:
    """Return a copy with edges symmetrized."""
    g = graph.copy()
    g.edge_index = add_reverse_edges(g.edge_index)
    return g


def k_hop_subgraph(graph: Graph, node: int, num_hops: int) -> SampledSubgraph:
    """Nodes and edges reachable *into* ``node`` within ``num_hops`` steps.

    Follows edges backwards (an L-layer GNN's prediction at ``node`` depends
    only on nodes with a directed path of length ≤ L *to* it). Returns a
    :class:`SampledSubgraph` whose ``node_ids`` / ``edge_mask`` match the
    historical two-tuple contract: ``edge_mask`` marks original edges whose
    endpoints both lie in the neighborhood. Unpacking the result as a
    two-tuple still works one release behind a ``DeprecationWarning``; the
    batched generalization is :func:`extract_receptive_field`.
    """
    return extract_receptive_field(graph, [int(node)], num_hops)


def induced_subgraph(graph: Graph, nodes: np.ndarray) -> tuple[Graph, np.ndarray, np.ndarray]:
    """Subgraph induced by ``nodes``, with relabelled ids.

    Returns ``(subgraph, node_ids, edge_mask)`` where ``node_ids[i]`` is the
    original id of new node ``i`` and ``edge_mask`` selects the original
    edges kept. Labels and masks are sliced accordingly; ``motif_edges`` are
    relabelled when present.
    """
    node_ids = np.asarray(sorted(set(int(n) for n in np.asarray(nodes).reshape(-1))), dtype=np.int64)
    if node_ids.size and (node_ids.min() < 0 or node_ids.max() >= graph.num_nodes):
        raise GraphError("induced_subgraph received out-of-range node ids")
    remap = -np.ones(graph.num_nodes, dtype=np.int64)
    remap[node_ids] = np.arange(node_ids.size)
    edge_mask = (remap[graph.src] >= 0) & (remap[graph.dst] >= 0)
    new_edges = np.stack([remap[graph.src[edge_mask]], remap[graph.dst[edge_mask]]])

    motif = None
    if graph.motif_edges is not None:
        motif = frozenset(
            (int(remap[u]), int(remap[v]))
            for u, v in graph.motif_edges
            if remap[u] >= 0 and remap[v] >= 0
        )
    y = graph.y[node_ids] if isinstance(graph.y, np.ndarray) else graph.y
    sub = Graph(
        edge_index=new_edges,
        x=graph.x[node_ids],
        y=y,
        num_nodes=node_ids.size,
        train_mask=None if graph.train_mask is None else graph.train_mask[node_ids],
        val_mask=None if graph.val_mask is None else graph.val_mask[node_ids],
        test_mask=None if graph.test_mask is None else graph.test_mask[node_ids],
        motif_edges=motif,
        meta=dict(graph.meta),
    )
    return sub, node_ids, edge_mask


def connected_components(graph: Graph) -> np.ndarray:
    """Weakly-connected component label per node."""
    adj = to_csr(graph)
    n_components, labels = sp.csgraph.connected_components(adj, directed=True, connection="weak")
    return labels


def edge_list(graph: Graph) -> list[tuple[int, int]]:
    """Edges as a list of ``(src, dst)`` tuples."""
    return list(zip(graph.src.tolist(), graph.dst.tolist()))


def from_networkx(nx_graph, x: np.ndarray | None = None, y=None) -> Graph:
    """Convert a networkx (Di)Graph into a :class:`Graph`.

    Undirected graphs contribute both edge directions, matching the paper's
    treatment of benchmark datasets as directed edge pairs.
    """
    import networkx as nx

    nodes = sorted(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = []
    for u, v in nx_graph.edges():
        edges.append((index[u], index[v]))
        if not nx_graph.is_directed():
            edges.append((index[v], index[u]))
    edge_index = (
        np.array(edges, dtype=np.int64).T if edges else np.zeros((2, 0), dtype=np.int64)
    )
    edge_index = coalesce_edges(edge_index)
    if x is None:
        x = np.ones((len(nodes), 1))
    return Graph(edge_index=edge_index, x=x, y=y, num_nodes=len(nodes))


def to_networkx(graph: Graph):
    """Convert to a networkx DiGraph (node ids preserved)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_nodes))
    g.add_edges_from(edge_list(graph))
    return g
