"""Disjoint-union batching for graph classification.

Mirrors PyG's ``Batch``: node features are stacked, edge indices are offset
per graph, and a ``batch`` vector maps every node to its graph so pooling
layers can aggregate per graph.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import GraphError
from .data import Graph

__all__ = ["GraphBatch"]


class GraphBatch:
    """A batch of graphs packed into one disjoint-union graph.

    Attributes
    ----------
    x:
        ``(ΣN_i, F)`` stacked node features.
    edge_index:
        ``(2, ΣE_i)`` offset edge indices.
    batch:
        ``(ΣN_i,)`` graph id per node.
    y:
        ``(num_graphs,)`` graph labels (when every member has a label).
    """

    def __init__(self, graphs: Sequence[Graph]):
        if not graphs:
            raise GraphError("GraphBatch requires at least one graph")
        feature_dims = {g.num_features for g in graphs}
        if len(feature_dims) != 1:
            raise GraphError(f"inconsistent feature dims in batch: {sorted(feature_dims)}")

        self.graphs = list(graphs)
        xs, edges, batch_ids = [], [], []
        offset = 0
        for gid, g in enumerate(self.graphs):
            xs.append(g.x)
            edges.append(g.edge_index + offset)
            batch_ids.append(np.full(g.num_nodes, gid, dtype=np.int64))
            offset += g.num_nodes
        self.x = np.concatenate(xs, axis=0)
        self.edge_index = np.concatenate(edges, axis=1)
        self.batch = np.concatenate(batch_ids)
        self.num_nodes = offset
        self.num_graphs = len(self.graphs)

        labels = [g.y for g in self.graphs]
        if all(isinstance(y, (int, np.integer)) for y in labels):
            self.y = np.array(labels, dtype=np.int64)
        else:
            self.y = None

    @property
    def num_edges(self) -> int:
        """Total edge count across the batch."""
        return self.edge_index.shape[1]

    @property
    def src(self) -> np.ndarray:
        return self.edge_index[0]

    @property
    def dst(self) -> np.ndarray:
        return self.edge_index[1]

    def node_offsets(self) -> np.ndarray:
        """Cumulative node offsets; graph ``i`` owns nodes ``[off[i], off[i+1])``."""
        sizes = [g.num_nodes for g in self.graphs]
        return np.cumsum([0, *sizes])

    def __len__(self) -> int:
        return self.num_graphs

    def __repr__(self) -> str:
        return (
            f"GraphBatch(num_graphs={self.num_graphs}, num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges})"
        )

    @staticmethod
    def iter_minibatches(graphs: Sequence[Graph], batch_size: int,
                         rng: np.random.Generator | None = None):
        """Yield :class:`GraphBatch` mini-batches, optionally shuffled."""
        order = np.arange(len(graphs))
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, len(graphs), batch_size):
            chunk = [graphs[i] for i in order[start:start + batch_size]]
            yield GraphBatch(chunk)
