"""Graph perturbation transforms.

Controlled corruptions used by robustness experiments and failure-
injection tests: noise edges, edge dropout, feature noise/zeroing and
label shuffling. All transforms are pure (return a new :class:`Graph`)
and seeded.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..rng import ensure_rng
from .data import Graph
from .utils import coalesce_edges

__all__ = ["add_noise_edges", "drop_edges", "perturb_features",
           "zero_features", "shuffle_labels"]


def add_noise_edges(graph: Graph, num_edges: int,
                    rng: int | np.random.Generator | None = 0,
                    bidirectional: bool = True) -> Graph:
    """Add ``num_edges`` random edges (both directions when requested)."""
    rng = ensure_rng(rng)
    if num_edges < 0:
        raise GraphError("num_edges must be non-negative")
    out = graph.copy()
    pairs = []
    attempts = 0
    while len(pairs) < num_edges and attempts < 50 * (num_edges + 1):
        attempts += 1
        u, v = rng.integers(graph.num_nodes, size=2)
        if u != v:
            pairs.append((int(u), int(v)))
            if bidirectional:
                pairs.append((int(v), int(u)))
    if pairs:
        extra = np.array(pairs, dtype=np.int64).T
        out.edge_index = coalesce_edges(np.concatenate([out.edge_index, extra], axis=1))
    return out


def drop_edges(graph: Graph, fraction: float,
               rng: int | np.random.Generator | None = 0) -> Graph:
    """Remove a random fraction of edges."""
    if not 0.0 <= fraction <= 1.0:
        raise GraphError(f"fraction must be in [0, 1], got {fraction}")
    rng = ensure_rng(rng)
    keep = rng.random(graph.num_edges) >= fraction
    return graph.with_edges(keep)


def perturb_features(graph: Graph, noise_std: float,
                     rng: int | np.random.Generator | None = 0) -> Graph:
    """Add Gaussian noise to node features."""
    rng = ensure_rng(rng)
    out = graph.copy()
    out.x = out.x + rng.normal(0.0, noise_std, size=out.x.shape)
    return out


def zero_features(graph: Graph, fraction: float,
                  rng: int | np.random.Generator | None = 0) -> Graph:
    """Zero out the features of a random fraction of nodes."""
    if not 0.0 <= fraction <= 1.0:
        raise GraphError(f"fraction must be in [0, 1], got {fraction}")
    rng = ensure_rng(rng)
    out = graph.copy()
    mask = rng.random(graph.num_nodes) < fraction
    out.x[mask] = 0.0
    return out


def shuffle_labels(graph: Graph,
                   rng: int | np.random.Generator | None = 0) -> Graph:
    """Randomly permute node labels (sanity-check control)."""
    if not isinstance(graph.y, np.ndarray):
        raise GraphError("shuffle_labels requires per-node labels")
    rng = ensure_rng(rng)
    out = graph.copy()
    out.y = rng.permutation(out.y)
    return out
