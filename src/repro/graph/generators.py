"""Low-level random-graph generators.

These produce raw edge lists used by the dataset builders in
:mod:`repro.datasets`: Barabási–Albert preferential attachment, balanced
trees, Erdős–Rényi graphs and degree-corrected stochastic block models.
All take explicit RNGs and return directed edge pairs (both directions for
an undirected construction), matching the paper's "directed edges, no
self-loops" data convention.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..rng import ensure_rng

__all__ = [
    "barabasi_albert_edges",
    "balanced_tree_edges",
    "erdos_renyi_edges",
    "sbm_edges",
    "cycle_edges",
    "house_motif_edges",
    "path_edges",
]


def _directed_both(pairs: list[tuple[int, int]]) -> np.ndarray:
    """Expand undirected pairs into both directed edges, deduplicated."""
    seen: set[tuple[int, int]] = set()
    for u, v in pairs:
        if u == v:
            continue
        seen.add((u, v))
        seen.add((v, u))
    if not seen:
        return np.zeros((2, 0), dtype=np.int64)
    arr = np.array(sorted(seen), dtype=np.int64).T
    return arr


def barabasi_albert_edges(num_nodes: int, m: int,
                          rng: int | np.random.Generator | None = None) -> np.ndarray:
    """Barabási–Albert preferential attachment; returns ``(2, E)`` directed.

    Each new node attaches to ``m`` existing nodes with probability
    proportional to degree (repeated-nodes urn trick).
    """
    rng = ensure_rng(rng)
    if num_nodes < m + 1:
        raise DatasetError(f"BA graph needs > m+1 nodes (m={m}, n={num_nodes})")
    pairs: list[tuple[int, int]] = []
    # Seed with a star on the first m+1 nodes so every node has degree >= 1.
    repeated: list[int] = []
    for new in range(m, num_nodes):
        chosen = set()
        while len(chosen) < m:
            if repeated and rng.random() < 0.9:
                candidate = int(repeated[rng.integers(len(repeated))])
            else:
                candidate = int(rng.integers(new))
            if candidate != new:
                chosen.add(candidate)
        for t in chosen:
            pairs.append((new, t))
            repeated.extend([new, t])
    return _directed_both(pairs)


def balanced_tree_edges(branching: int, height: int) -> tuple[np.ndarray, int]:
    """Balanced tree; returns ``(edge_index, num_nodes)``."""
    pairs = []
    nodes = [0]
    next_id = 1
    frontier = [0]
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                child = next_id
                next_id += 1
                nodes.append(child)
                pairs.append((parent, child))
                new_frontier.append(child)
        frontier = new_frontier
    return _directed_both(pairs), next_id


def erdos_renyi_edges(num_nodes: int, p: float,
                      rng: int | np.random.Generator | None = None) -> np.ndarray:
    """Erdős–Rényi G(n, p); undirected pairs expanded to both directions."""
    rng = ensure_rng(rng)
    upper = rng.random((num_nodes, num_nodes)) < p
    iu = np.triu_indices(num_nodes, k=1)
    mask = upper[iu]
    pairs = list(zip(iu[0][mask].tolist(), iu[1][mask].tolist()))
    return _directed_both(pairs)


def sbm_edges(block_sizes: list[int], p_in: float, p_out: float,
              rng: int | np.random.Generator | None = None) -> np.ndarray:
    """Stochastic block model with within/between connection probabilities."""
    rng = ensure_rng(rng)
    labels = np.concatenate([np.full(s, b) for b, s in enumerate(block_sizes)])
    n = labels.size
    iu = np.triu_indices(n, k=1)
    same = labels[iu[0]] == labels[iu[1]]
    prob = np.where(same, p_in, p_out)
    mask = rng.random(prob.shape) < prob
    pairs = list(zip(iu[0][mask].tolist(), iu[1][mask].tolist()))
    return _directed_both(pairs)


def cycle_edges(node_ids: list[int]) -> np.ndarray:
    """Directed-both cycle through ``node_ids`` in order."""
    n = len(node_ids)
    if n < 3:
        raise DatasetError("cycle needs at least 3 nodes")
    pairs = [(node_ids[i], node_ids[(i + 1) % n]) for i in range(n)]
    return _directed_both(pairs)


def path_edges(node_ids: list[int]) -> np.ndarray:
    """Directed-both path through ``node_ids`` in order."""
    pairs = [(node_ids[i], node_ids[i + 1]) for i in range(len(node_ids) - 1)]
    return _directed_both(pairs)


def house_motif_edges(node_ids: list[int]) -> np.ndarray:
    """The five-node "house" motif used by BA-Shapes / BA-2motifs.

    ``node_ids`` order: [roof, left-shoulder, right-shoulder, left-base,
    right-base]. Structure: roof connects to both shoulders; shoulders
    connect to each other and to their base; bases connect to each other.
    """
    if len(node_ids) != 5:
        raise DatasetError("house motif needs exactly 5 nodes")
    roof, ls, rs, lb, rb = node_ids
    pairs = [(roof, ls), (roof, rs), (ls, rs), (ls, lb), (rs, rb), (lb, rb)]
    return _directed_both(pairs)
