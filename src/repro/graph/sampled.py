"""Receptive-field extraction: batched k-hop in-subgraphs with id maps.

An L-layer message-passing network's prediction at node ``v`` depends only
on nodes with a directed path of length ≤ L *into* ``v`` (PAPER.md §II;
the same locality argument FlowX and relevant-walk search rely on).
:func:`extract_receptive_field` materializes that dependency cone — for a
*batch* of targets at once — as a :class:`SampledSubgraph`: a compact
relabeled graph plus the node/edge id maps needed to translate local
results (edge scores, flows, contexts) back to global ids.

The frontier expansion is one CSR row-slice per hop over the graph's
compiled :func:`~repro.sparse.cache.sparse_cache` aggregation operator
(rows are destinations, so ``adj[frontier].indices`` *is* the in-neighbor
set), replacing the per-hop ``np.isin`` scan over all ``E`` edges that the
original :func:`~repro.graph.utils.k_hop_subgraph` performed.

``k_hop_subgraph`` now returns a :class:`SampledSubgraph`; unpacking it as
the historical ``(node_ids, edge_mask)`` two-tuple still works for one
release behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..errors import GraphError
from ..sparse import sparse_cache
from .data import Graph

__all__ = ["SampledSubgraph", "khop_in_nodes", "extract_receptive_field"]


def khop_in_nodes(graph: Graph, targets, num_hops: int) -> np.ndarray:
    """Sorted global ids of all nodes within ``num_hops`` backward steps of
    any target — the union of the targets' receptive fields.

    Batched backward BFS: each hop slices the rows of the cached CSR
    aggregation operator at the current frontier and takes the unseen
    column indices, so the cost per hop is proportional to the frontier's
    in-edges, not to the size of the graph.
    """
    targets = np.atleast_1d(np.asarray(targets, dtype=np.int64))
    if targets.ndim != 1:
        raise GraphError(f"targets must be a 1-D sequence, got shape {targets.shape}")
    if targets.size == 0:
        raise GraphError("receptive-field extraction needs at least one target")
    if targets.min() < 0 or targets.max() >= graph.num_nodes:
        raise GraphError(
            f"target {int(targets.min() if targets.min() < 0 else targets.max())} "
            f"out of range for graph with {graph.num_nodes} nodes")
    if num_hops < 0:
        raise GraphError(f"num_hops must be non-negative, got {num_hops}")

    adj = sparse_cache(graph).adj  # rows = destinations, cols = sources
    indptr, indices = adj.indptr, adj.indices
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[targets] = True
    frontier = np.unique(targets)
    for _ in range(num_hops):
        if frontier.size == 0:
            break
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather the concatenated neighbor slices without a Python loop:
        # position i of the output reads indices[starts[row(i)] + offset(i)].
        ends = np.cumsum(counts)
        flat = np.arange(total, dtype=np.int64) + np.repeat(starts - (ends - counts), counts)
        neighbors = indices[flat]
        fresh = neighbors[~visited[neighbors]]
        frontier = np.unique(fresh)
        visited[frontier] = True
    return np.flatnonzero(visited).astype(np.int64)


class SampledSubgraph:
    """A compact relabeled receptive-field subgraph with global id maps.

    Local node ``i`` is global node ``node_ids[i]`` (``node_ids`` is
    sorted, so the relabeling is monotone); local edge ``j`` is global
    edge ``edge_positions[j]``. The relabeled :class:`Graph` itself is
    built lazily — callers that only need the id maps (the historical
    ``k_hop_subgraph`` contract) never pay for feature slicing.

    Unpacking as the legacy ``(node_ids, edge_mask)`` two-tuple still
    works behind a :class:`DeprecationWarning`.
    """

    __slots__ = ("node_ids", "edge_mask", "targets", "num_hops",
                 "_source", "_graph", "_edge_positions", "_local_of")

    def __init__(self, source: Graph, node_ids: np.ndarray,
                 edge_mask: np.ndarray, targets=(), num_hops: int = 0):
        self.node_ids = np.asarray(node_ids, dtype=np.int64)
        self.edge_mask = np.asarray(edge_mask, dtype=bool)
        self.targets = tuple(int(t) for t in np.atleast_1d(np.asarray(targets, dtype=np.int64)))
        self.num_hops = int(num_hops)
        self._source = source
        self._graph: Graph | None = None
        self._edge_positions: np.ndarray | None = None
        self._local_of: np.ndarray | None = None

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the sampled subgraph."""
        return int(self.node_ids.size)

    @property
    def num_edges(self) -> int:
        """Number of global edges kept by the extraction."""
        return int(self.edge_positions.size)

    @property
    def edge_positions(self) -> np.ndarray:
        """Global edge index of each local edge, shape ``(e,)``."""
        if self._edge_positions is None:
            self._edge_positions = np.flatnonzero(self.edge_mask).astype(np.int64)
        return self._edge_positions

    @property
    def graph(self) -> Graph:
        """The relabeled induced subgraph (built on first access).

        Local edge order follows global edge order, so ``graph.edge_index``
        column ``j`` is global edge ``edge_positions[j]``.
        """
        if self._graph is None:
            # Local import: graph.utils re-exports from this module.
            from .utils import induced_subgraph
            sub, node_ids, edge_mask = induced_subgraph(self._source, self.node_ids)
            # The extraction already fixed the node set; the induced edge
            # set over it must agree with the recorded mask.
            assert np.array_equal(node_ids, self.node_ids)
            assert np.array_equal(edge_mask, self.edge_mask)
            self._graph = sub
        return self._graph

    def local_index(self, global_ids) -> np.ndarray:
        """Local node id(s) for global node id(s); raises if absent."""
        if self._local_of is None:
            local = -np.ones(self._source.num_nodes, dtype=np.int64)
            local[self.node_ids] = np.arange(self.node_ids.size)
            self._local_of = local
        out = self._local_of[np.asarray(global_ids, dtype=np.int64)]
        if np.any(out < 0):
            missing = np.asarray(global_ids)[np.asarray(out < 0)]
            raise GraphError(
                f"global node(s) {np.atleast_1d(missing).tolist()} are not in "
                f"the sampled subgraph")
        return out

    @property
    def local_targets(self) -> tuple[int, ...]:
        """The extraction targets, relabeled into local ids."""
        return tuple(int(i) for i in np.atleast_1d(self.local_index(list(self.targets))))

    def to_global_nodes(self, local_ids) -> np.ndarray:
        """Global node id(s) for local node id(s)."""
        return self.node_ids[np.asarray(local_ids, dtype=np.int64)]

    def lift_edge_scores(self, local_scores: np.ndarray) -> np.ndarray:
        """Scatter per-local-edge scores into a global ``(E,)`` vector
        (absent edges score 0 — they cannot reach any target)."""
        local_scores = np.asarray(local_scores, dtype=np.float64)
        if local_scores.shape != (self.num_edges,):
            raise GraphError(
                f"expected {self.num_edges} local edge scores, got shape "
                f"{local_scores.shape}")
        out = np.zeros(self._source.num_edges, dtype=np.float64)
        out[self.edge_positions] = local_scores
        return out

    # ------------------------------------------------------------------
    # legacy (node_ids, edge_mask) tuple shim — one release
    # ------------------------------------------------------------------
    def astuple(self) -> tuple[np.ndarray, np.ndarray]:
        """The historical ``(node_ids, edge_mask)`` pair, without warning."""
        return self.node_ids, self.edge_mask

    def _warn_tuple(self) -> None:
        warnings.warn(  # repro: sunset[2.0]
            "unpacking k_hop_subgraph() as a (node_ids, edge_mask) tuple is "
            "deprecated; use the SampledSubgraph fields (.node_ids, "
            ".edge_mask, .graph, .edge_positions) instead",
            DeprecationWarning, stacklevel=3)

    def __iter__(self):
        self._warn_tuple()
        return iter((self.node_ids, self.edge_mask))

    def __len__(self) -> int:
        return 2

    def __getitem__(self, index):
        self._warn_tuple()
        return (self.node_ids, self.edge_mask)[index]

    def __repr__(self) -> str:
        return (f"SampledSubgraph(num_nodes={self.num_nodes}, "
                f"num_edges={self.num_edges}, targets={self.targets}, "
                f"num_hops={self.num_hops})")


def extract_receptive_field(graph: Graph, targets, num_hops: int) -> SampledSubgraph:
    """The union L-hop in-subgraph of ``targets`` as a :class:`SampledSubgraph`.

    The kept edge set matches the historical ``k_hop_subgraph`` contract:
    every global edge whose endpoints both lie in the union neighborhood.
    Extra edges contributed by one target's cone never change another
    target's local prediction — message passing at a node only reads its
    in-edges, which are all present for any node that can reach a target.
    """
    node_ids = khop_in_nodes(graph, targets, num_hops)
    in_set = np.zeros(graph.num_nodes, dtype=bool)
    in_set[node_ids] = True
    edge_mask = in_set[graph.src] & in_set[graph.dst]
    return SampledSubgraph(graph, node_ids, edge_mask,
                           targets=np.atleast_1d(np.asarray(targets, dtype=np.int64)),
                           num_hops=num_hops)
