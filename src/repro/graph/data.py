"""Graph container used across the library.

A :class:`Graph` stores a directed graph in COO format (``edge_index`` of
shape ``(2, E)``), node features, labels and optional train/val/test masks —
the same layout as PyTorch Geometric's ``Data`` object, which the paper's
implementation builds on.

Edges are directed and, following the paper's experimental setup, contain no
self-loops at the data level (GNN layers add their own self-contributions;
see :mod:`repro.nn.message_passing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import GraphError

__all__ = ["Graph"]


@dataclass
class Graph:
    """A directed attributed graph.

    Parameters
    ----------
    edge_index:
        ``(2, E)`` int array; row 0 holds source nodes, row 1 destinations.
    x:
        ``(N, F)`` float node-feature matrix.
    y:
        Labels — ``(N,)`` ints for node classification, scalar int for graph
        classification, or ``None``.
    num_nodes:
        Node count; inferred from ``x`` when omitted.
    train_mask / val_mask / test_mask:
        Optional ``(N,)`` boolean split masks (node classification).
    motif_edges:
        Optional set of ``(src, dst)`` pairs that form the ground-truth
        explanation motif (synthetic datasets only); used for AUC evaluation
        (Table IV).
    meta:
        Free-form metadata (dataset name, generator parameters, …).
    """

    edge_index: np.ndarray
    x: np.ndarray
    y: np.ndarray | int | None = None
    num_nodes: int | None = None
    train_mask: np.ndarray | None = None
    val_mask: np.ndarray | None = None
    test_mask: np.ndarray | None = None
    motif_edges: frozenset[tuple[int, int]] | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64)
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise GraphError(f"edge_index must have shape (2, E), got {self.edge_index.shape}")
        self.x = np.asarray(self.x, dtype=np.float64)
        if self.x.ndim != 2:
            raise GraphError(f"x must have shape (N, F), got {self.x.shape}")
        if self.num_nodes is None:
            self.num_nodes = self.x.shape[0]
        if self.x.shape[0] != self.num_nodes:
            raise GraphError(
                f"x has {self.x.shape[0]} rows but num_nodes={self.num_nodes}"
            )
        if self.edge_index.size and self.edge_index.max() >= self.num_nodes:
            raise GraphError(
                f"edge_index references node {int(self.edge_index.max())} "
                f"but graph has {self.num_nodes} nodes"
            )
        if self.edge_index.size and self.edge_index.min() < 0:
            raise GraphError("edge_index contains negative node ids")
        if isinstance(self.y, np.ndarray):
            self.y = np.asarray(self.y, dtype=np.int64)
        for name in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(self, name)
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != (self.num_nodes,):
                    raise GraphError(f"{name} must have shape ({self.num_nodes},), got {mask.shape}")
                setattr(self, name, mask)
        if self.motif_edges is not None and not isinstance(self.motif_edges, frozenset):
            self.motif_edges = frozenset((int(u), int(v)) for u, v in self.motif_edges)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.edge_index.shape[1]

    @property
    def num_features(self) -> int:
        """Node-feature dimensionality."""
        return self.x.shape[1]

    @property
    def src(self) -> np.ndarray:
        """Source node of each edge, shape ``(E,)``."""
        return self.edge_index[0]

    @property
    def dst(self) -> np.ndarray:
        """Destination node of each edge, shape ``(E,)``."""
        return self.edge_index[1]

    def __repr__(self) -> str:
        label = "" if self.y is None else f", y={'array' if isinstance(self.y, np.ndarray) else self.y}"
        return (
            f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"num_features={self.num_features}{label})"
        )

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def edge_id_map(self) -> dict[tuple[int, int], int]:
        """Return ``(src, dst) -> edge position`` (first occurrence wins)."""
        mapping: dict[tuple[int, int], int] = {}
        for i, (u, v) in enumerate(zip(self.src.tolist(), self.dst.tolist())):
            mapping.setdefault((u, v), i)
        return mapping

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists."""
        return bool(np.any((self.src == u) & (self.dst == v)))

    def in_degree(self) -> np.ndarray:
        """Incoming degree per node, shape ``(N,)``."""
        return np.bincount(self.dst, minlength=self.num_nodes)

    def out_degree(self) -> np.ndarray:
        """Outgoing degree per node, shape ``(N,)``."""
        return np.bincount(self.src, minlength=self.num_nodes)

    def with_edges(self, keep: np.ndarray) -> "Graph":
        """Return a copy keeping only edges where ``keep`` is True.

        Node set, features and labels are unchanged — exactly the operation
        fidelity metrics use to build explanatory / unexplanatory subgraphs.
        """
        keep = np.asarray(keep)
        if keep.dtype != bool:
            mask = np.zeros(self.num_edges, dtype=bool)
            mask[keep] = True
            keep = mask
        if keep.shape != (self.num_edges,):
            raise GraphError(f"edge keep mask must have shape ({self.num_edges},), got {keep.shape}")
        return Graph(
            edge_index=self.edge_index[:, keep],
            x=self.x,
            y=self.y,
            num_nodes=self.num_nodes,
            train_mask=self.train_mask,
            val_mask=self.val_mask,
            test_mask=self.test_mask,
            motif_edges=self.motif_edges,
            meta=dict(self.meta),
        )

    def copy(self) -> "Graph":
        """Deep copy of all array payloads."""
        return Graph(
            edge_index=self.edge_index.copy(),
            x=self.x.copy(),
            y=self.y.copy() if isinstance(self.y, np.ndarray) else self.y,
            num_nodes=self.num_nodes,
            train_mask=None if self.train_mask is None else self.train_mask.copy(),
            val_mask=None if self.val_mask is None else self.val_mask.copy(),
            test_mask=None if self.test_mask is None else self.test_mask.copy(),
            motif_edges=self.motif_edges,
            meta=dict(self.meta),
        )

    def validate(self) -> None:
        """Re-run the construction-time invariant checks."""
        self.__post_init__()
