"""Top-k message-flow tables (paper Tables VI and VII).

Formats the highest-scoring flows of one or several explanations as
aligned text tables, matching the paper's qualitative presentation
(``31 -> 31 -> 31 -> 28   102.632``).
"""

from __future__ import annotations

from ..errors import ExplainerError
from ..explain.base import Explanation

__all__ = ["format_top_flows", "format_flow_comparison"]


def format_top_flows(explanation: Explanation, k: int = 10,
                     title: str | None = None) -> str:
    """One method's top-``k`` flows as an aligned text table."""
    if explanation.flow_scores is None:
        raise ExplainerError(f"{explanation.method} produced no flow scores")
    flows = explanation.top_flows(k)
    lines = []
    if title:
        lines.append(title)
    width = max((len(_arrow(seq)) for seq, _ in flows), default=12)
    lines.append(f"{'Message Flow':<{width}}  Score")
    for seq, score in flows:
        lines.append(f"{_arrow(seq):<{width}}  {score:.3f}")
    return "\n".join(lines)


def format_flow_comparison(explanations: list[Explanation], k: int = 10) -> str:
    """Side-by-side top-``k`` flow tables for several methods (Table VI/VII)."""
    blocks = []
    for exp in explanations:
        blocks.append(format_top_flows(exp, k=k, title=f"[{exp.method}]").split("\n"))
    height = max(len(b) for b in blocks)
    widths = [max(len(line) for line in b) for b in blocks]
    rows = []
    for i in range(height):
        cells = []
        for b, w in zip(blocks, widths):
            cells.append((b[i] if i < len(b) else "").ljust(w))
        rows.append("   |   ".join(cells))
    return "\n".join(rows)


def _arrow(seq: tuple[int, ...]) -> str:
    return " -> ".join(str(v) for v in seq)
