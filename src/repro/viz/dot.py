"""Graphviz DOT export of graphs and explanations.

Produces files renderable with ``dot -Tpng`` for publication-style figures
(the offline counterpart of the paper's Fig. 6 plots).
"""

from __future__ import annotations

from pathlib import Path

from ..explain.base import Explanation
from ..graph import Graph

__all__ = ["to_dot", "explanation_to_dot"]


def to_dot(graph: Graph, highlight_edges: set[int] | None = None,
           highlight_nodes: set[int] | None = None, name: str = "G") -> str:
    """Render a graph as DOT; highlighted elements are drawn bold/colored."""
    highlight_edges = highlight_edges or set()
    highlight_nodes = highlight_nodes or set()
    motif = graph.motif_edges or frozenset()

    lines = [f"digraph {name} {{", "  node [shape=circle, fontsize=10];"]
    for v in range(graph.num_nodes):
        attrs = []
        if v in highlight_nodes:
            attrs.append('style=filled, fillcolor="gold"')
        if attrs:
            lines.append(f"  {v} [{', '.join(attrs)}];")
    for e in range(graph.num_edges):
        u, v = int(graph.src[e]), int(graph.dst[e])
        attrs = []
        if e in highlight_edges:
            attrs.append('color="black", penwidth=2.5')
        elif (u, v) in motif:
            attrs.append('color="red", style=dashed')
        else:
            attrs.append('color="gray70"')
        lines.append(f"  {u} -> {v} [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines)


def explanation_to_dot(graph: Graph, explanation: Explanation, k: int = 12,
                       path: str | Path | None = None) -> str:
    """DOT rendering of an explanation's top-``k`` edges.

    Explanatory edges are bold black; unrecognized motif edges show dashed
    red (matching Fig. 6's conventions). Optionally writes to ``path``.
    """
    top = set(int(e) for e in explanation.top_edges(k))
    nodes: set[int] = set()
    for e in top:
        nodes.add(int(graph.src[e]))
        nodes.add(int(graph.dst[e]))
    if explanation.target is not None:
        nodes.add(int(explanation.target))
    dot = to_dot(graph, highlight_edges=top, highlight_nodes=nodes,
                 name=explanation.method)
    if path is not None:
        Path(path).write_text(dot)
    return dot
