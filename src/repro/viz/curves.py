"""Terminal line charts for fidelity curves (the Figs. 3–5 visual).

Renders sparsity-vs-fidelity curves as an ASCII grid so `repro experiment`
output and the benchmark artifacts can show the *shape* of each figure —
crossovers included — without a plotting stack.
"""

from __future__ import annotations

from ..errors import EvaluationError

__all__ = ["render_curves", "render_fidelity_result"]

_MARKERS = "ox+*#@%&"


def render_curves(curves: dict[str, dict[float, float]], width: int = 60,
                  height: int = 16, x_label: str = "sparsity",
                  y_label: str = "fidelity") -> str:
    """Plot one or more named curves in a character grid.

    Parameters
    ----------
    curves:
        ``{name: {x: y}}`` — e.g. one entry per explanation method.
    width, height:
        Plot area size in characters.
    """
    if not curves:
        raise EvaluationError("no curves to render")
    xs = sorted({x for c in curves.values() for x in c})
    ys = [y for c in curves.values() for y in c.values()]
    if not xs or not ys:
        raise EvaluationError("curves are empty")
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return int(round((1.0 - (y - y_min) / (y_max - y_min)) * (height - 1)))

    # zero line, when visible
    if y_min < 0 < y_max:
        zero_row = to_row(0.0)
        for c in range(width):
            grid[zero_row][c] = "·"

    legend = []
    for i, (name, curve) in enumerate(curves.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        points = sorted(curve.items())
        cells = [(to_col(x), to_row(y)) for x, y in points]
        # connect consecutive points with interpolated marks
        for (c0, r0), (c1, r1) in zip(cells[:-1], cells[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for s in range(steps + 1):
                c = round(c0 + (c1 - c0) * s / steps)
                r = round(r0 + (r1 - r0) * s / steps)
                grid[r][c] = marker
        for c, r in cells:
            grid[r][c] = marker

    lines = []
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_max:+.2f} "
        elif r == height - 1:
            label = f"{y_min:+.2f} "
        else:
            label = " " * 7
        lines.append(label + "|" + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(" " * 8 + f"{x_min:<.2f}{' ' * (width - 10)}{x_max:>.2f}  ({x_label})")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def render_fidelity_result(result: dict, width: int = 60, height: int = 14) -> str:
    """Render the output of ``run_fidelity_experiment`` as a chart."""
    title = (f"{result.get('dataset', '?')} / {result.get('conv', '?').upper()} "
             f"({result.get('mode', 'factual')})")
    chart = render_curves(result["curves"], width=width, height=height)
    return f"{title}\n{chart}"
