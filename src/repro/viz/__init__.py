"""Visualization: flow tables, ASCII subgraph rendering, DOT export."""

from .ascii import explanation_summary, render_explanation
from .curves import render_curves, render_fidelity_result
from .dot import explanation_to_dot, to_dot
from .flows_table import format_flow_comparison, format_top_flows

__all__ = [
    "format_top_flows",
    "format_flow_comparison",
    "render_explanation",
    "explanation_summary",
    "to_dot",
    "explanation_to_dot",
    "render_curves",
    "render_fidelity_result",
]
