"""Text rendering of explanatory subgraphs (paper Fig. 6).

Terminal-friendly substitute for the paper's matplotlib plots: lists
explanatory edges, marks motif membership, and reports which ground-truth
edges each method failed to recognize (the dashed red edges of Fig. 6).
"""

from __future__ import annotations

import numpy as np

from ..explain.base import Explanation
from ..graph import Graph

__all__ = ["render_explanation", "explanation_summary"]


def render_explanation(graph: Graph, explanation: Explanation, k: int = 12) -> str:
    """Render an explanation's top-``k`` edges with motif annotations.

    Legend: ``**`` explanatory edge inside the motif, ``* `` explanatory
    edge outside the motif, ``!!`` missed motif edge (ground truth not in
    the explanation).
    """
    top = explanation.top_edges(k)
    top_set = set(int(e) for e in top)
    motif = graph.motif_edges or frozenset()

    lines = [f"explanation: {explanation.method} (mode={explanation.mode}, "
             f"class={explanation.predicted_class}"
             + (f", target={explanation.target}" if explanation.target is not None else "")
             + ")"]
    lines.append(f"top-{len(top)} explanatory edges:")
    for e in top:
        u, v = int(graph.src[e]), int(graph.dst[e])
        marker = "**" if (u, v) in motif else "* "
        lines.append(f"  {marker} {u:>4} -> {v:<4}  score={explanation.edge_scores[e]:.3f}")

    if motif:
        candidates = explanation.context_edge_positions
        if candidates is None:
            candidates = np.arange(graph.num_edges)
        missed = []
        for e in candidates:
            u, v = int(graph.src[e]), int(graph.dst[e])
            if (u, v) in motif and int(e) not in top_set:
                missed.append((u, v))
        if missed:
            lines.append("missed motif edges (dashed red in the paper's figure):")
            for u, v in missed:
                lines.append(f"  !! {u:>4} -> {v:<4}")
        else:
            lines.append("all motif edges recognized.")
    return "\n".join(lines)


def explanation_summary(graph: Graph, explanation: Explanation, k: int = 12) -> dict:
    """Machine-readable counterpart of :func:`render_explanation`."""
    top = [int(e) for e in explanation.top_edges(k)]
    motif = graph.motif_edges or frozenset()
    in_motif = sum(
        (int(graph.src[e]), int(graph.dst[e])) in motif for e in top
    )
    return {
        "method": explanation.method,
        "mode": explanation.mode,
        "target": explanation.target,
        "top_edges": top,
        "top_in_motif": in_motif,
        "motif_size": len(motif),
    }
