"""Seeded random-number-generator helpers.

Every stochastic component in the library (dataset generators, model
initialization, explainer sampling) accepts either an integer seed or a
:class:`numpy.random.Generator`. :func:`ensure_rng` normalizes both into a
``Generator`` so call sites never touch global numpy random state, keeping
experiments reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "DEFAULT_SEED"]

DEFAULT_SEED = 0


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh default seed), an ``int`` seed, or an existing
        ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used when an experiment fans out over instances and each instance needs
    its own reproducible stream regardless of how many draws earlier
    instances made.
    """
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
