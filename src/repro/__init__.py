"""repro — reproduction of *Revelio: Revealing Important Message Flows in
Graph Neural Networks* (He, King & Huang, ICDE 2025).

Quickstart
----------
>>> from repro import load_dataset, get_model, Revelio
>>> model, dataset, _ = get_model("ba_shapes", "gcn", scale=0.25)
>>> explainer = Revelio(model, epochs=200)
>>> node = int(dataset.motif_nodes[0])
>>> explanation = explainer.explain(dataset.graph, target=node)
>>> explanation.top_flows(5)          # the most important message flows
>>> explanation.top_edges(6)          # transferred edge importance

Package map
-----------
``repro.core``      Revelio (the paper's contribution)
``repro.explain``   nine baselines + explainer framework
``repro.flows``     message-flow enumeration / incidence / patterns
``repro.nn``        GNN layers, models, training, pretrained-model zoo
``repro.datasets``  paper benchmarks (synthetics exact; surrogates offline)
``repro.eval``      fidelity / AUC / timing + per-artifact experiment runners
``repro.graph``     graph containers and utilities
``repro.autograd``  the numpy autodiff substrate
``repro.viz``       flow tables, ASCII and DOT rendering
"""

from .core import Revelio
from .datasets import DATASET_NAMES, load_dataset
from .errors import ReproError
from .explain import EXPLAINERS, Explainer, Explanation, make_explainer
from .flows import FlowIndex, cached_enumerate_flows, count_flows, enumerate_flows, match_flows
from .graph import Graph, GraphBatch
from .obs.counters import PERF, perf_snapshot, reset_perf
from .nn import GNN, Trainer, build_model, get_model
from .version import __version__

__all__ = [
    "__version__",
    "Revelio",
    "Explainer",
    "Explanation",
    "make_explainer",
    "EXPLAINERS",
    "FlowIndex",
    "enumerate_flows",
    "cached_enumerate_flows",
    "count_flows",
    "match_flows",
    "PERF",
    "perf_snapshot",
    "reset_perf",
    "Graph",
    "GraphBatch",
    "GNN",
    "build_model",
    "get_model",
    "Trainer",
    "load_dataset",
    "DATASET_NAMES",
    "ReproError",
]
