"""repro — reproduction of *Revelio: Revealing Important Message Flows in
Graph Neural Networks* (He, King & Huang, ICDE 2025).

Quickstart
----------
>>> from repro import load_dataset, get_model, Revelio
>>> model, dataset, _ = get_model("ba_shapes", "gcn", scale=0.25)
>>> explainer = Revelio(model, epochs=200)
>>> node = int(dataset.motif_nodes[0])
>>> explanation = explainer.explain(dataset.graph, target=node)
>>> explanation.top_flows(5)          # the most important message flows
>>> explanation.top_edges(6)          # transferred edge importance

Package map
-----------
``repro.core``      Revelio (the paper's contribution)
``repro.explain``   nine baselines + explainer framework
``repro.flows``     message-flow enumeration / incidence / patterns
``repro.nn``        GNN layers, models, training, pretrained-model zoo
``repro.datasets``  paper benchmarks (synthetics exact; surrogates offline)
``repro.eval``      fidelity / AUC / timing + per-artifact experiment runners
``repro.graph``     graph containers and utilities
``repro.autograd``  the numpy autodiff substrate
``repro.viz``       flow tables, ASCII and DOT rendering
``repro.checks``    repo-aware static analysis (pure stdlib)

The top-level namespace is a lazy façade (PEP 562): the numeric
subpackages import on first attribute access, so stdlib-only consumers
— ``repro.checks`` and its whole-program lint above all — can run on a
machine without numpy installed. ``repro.errors`` and ``repro.version``
stay eager; they are dependency-free and everything assumes them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import ReproError
from .version import __version__

if TYPE_CHECKING:
    from .core import Revelio
    from .datasets import DATASET_NAMES, load_dataset
    from .explain import EXPLAINERS, Explainer, Explanation, make_explainer
    from .flows import (FlowIndex, cached_enumerate_flows, count_flows,
                        enumerate_flows, match_flows)
    from .graph import Graph, GraphBatch
    from .nn import GNN, Trainer, build_model, get_model
    from .obs.counters import PERF, perf_snapshot, reset_perf

__all__ = [
    "__version__",
    "Revelio",
    "Explainer",
    "Explanation",
    "make_explainer",
    "EXPLAINERS",
    "FlowIndex",
    "enumerate_flows",
    "cached_enumerate_flows",
    "count_flows",
    "match_flows",
    "PERF",
    "perf_snapshot",
    "reset_perf",
    "Graph",
    "GraphBatch",
    "GNN",
    "build_model",
    "get_model",
    "Trainer",
    "load_dataset",
    "DATASET_NAMES",
    "ReproError",
]

#: Re-exported name -> defining submodule, resolved on first access.
_EXPORTS = {
    "Revelio": "repro.core",
    "DATASET_NAMES": "repro.datasets",
    "load_dataset": "repro.datasets",
    "EXPLAINERS": "repro.explain",
    "Explainer": "repro.explain",
    "Explanation": "repro.explain",
    "make_explainer": "repro.explain",
    "FlowIndex": "repro.flows",
    "cached_enumerate_flows": "repro.flows",
    "count_flows": "repro.flows",
    "enumerate_flows": "repro.flows",
    "match_flows": "repro.flows",
    "Graph": "repro.graph",
    "GraphBatch": "repro.graph",
    "PERF": "repro.obs.counters",
    "perf_snapshot": "repro.obs.counters",
    "reset_perf": "repro.obs.counters",
    "GNN": "repro.nn",
    "Trainer": "repro.nn",
    "build_model": "repro.nn",
    "get_model": "repro.nn",
}


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache: __getattr__ runs once per name
        return value
    # PEP 562 contract: __getattr__ must raise AttributeError, not a
    # ReproError — hasattr()/dir() tooling depends on the builtin type.
    raise AttributeError(  # repro: noqa[RPR012]
        f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(globals()))
