"""The paper's primary contribution: the Revelio flow explainer."""

from .link import LinkRevelio
from .preselect import (
    PRESELECT_STRATEGIES,
    gradient_flow_scores,
    preselect_flows,
    walk_weight_flow_scores,
)
from .revelio import LAYER_WEIGHT_ACTIVATIONS, MASK_ACTIVATIONS, Revelio
from .topk import TopKRevelio

__all__ = [
    "Revelio",
    "TopKRevelio",
    "LinkRevelio",
    "MASK_ACTIVATIONS",
    "LAYER_WEIGHT_ACTIVATIONS",
    "PRESELECT_STRATEGIES",
    "preselect_flows",
    "gradient_flow_scores",
    "walk_weight_flow_scores",
]
