"""REVELIO: learning-based message-flow explanation (paper §IV).

The method in one page
----------------------
Given a pretrained GNN Φ, an input graph and the class ``c`` to explain,
Revelio learns one mask per message flow:

1. **Flow masks** ``M ∈ R^{|F|}`` are free parameters, mapped to bounded
   importance scores ``ω[F] = tanh(M)`` (Eq. 4). tanh (not sigmoid) lets
   scores go negative, so layer edges that merely carry *many* flows do not
   automatically accumulate large masks.
2. **Mask transformation** (Eqs. 3/5): each flow's score is added onto the
   L layer edges of its path; per-layer learnable weights ``w ∈ R^L`` pass
   through ``exp`` (positive, low gradient on (0,1), high above 1) and
   rescale the accumulated sums, which are squashed by a sigmoid:
   ``ω[e^l] = σ(Σ_{F through e at l} ω[F] · exp(w_l))``.
3. **Masked forward** (Eq. 6): the layer-edge scores multiply messages in
   the corresponding GNN layer.
4. **Objective**: factual ``-log P(Y=c | G, F̂)`` (Eq. 1) or counterfactual
   ``-log(1 − P(Y=c | G, F̂))`` (Eq. 2), plus the sparsity regularizer
   ``α·mean(ω[E])`` (Eq. 8) — or ``α·mean(1−ω[E])`` for counterfactual
   (Eq. 9) — averaged over layer edges actually used by flows.
5. After ``T`` epochs of Adam, the flow scores are ``tanh(M)``; for
   counterfactual explanations the final scores are negated
   (``ω' = −ω``), and layer-edge scores become ``1 − ω[e]``, so in both
   modes higher values mean more important.

Because each flow's mask reaches the model through *all* of its layer
edges, down-weighting one flow suppresses exactly that flow's contribution
multiplicatively (L times), which is what disentangles flows sharing edges.
"""

from __future__ import annotations

import copy
import hashlib
from contextlib import contextmanager

import numpy as np

from ..autograd import Adam, Tensor, log_softmax
from ..errors import ExplainerError
from ..explain.base import Explainer, Explanation
from ..flows import FlowIndex, cached_enumerate_flows, graph_fingerprint
from ..flows.cache import LRUCache
from ..graph import Graph
from ..nn.models import GNN
from ..obs import PERF, span
from ..obs.names import SPAN_EPOCH, SPAN_OPTIMIZE
from ..rng import ensure_rng

__all__ = ["Revelio", "MASK_ACTIVATIONS", "LAYER_WEIGHT_ACTIVATIONS",
           "clear_explanation_cache", "explanation_cache_disabled"]

# Ablation knobs discussed in §IV-B of the paper.
MASK_ACTIVATIONS = ("tanh", "sigmoid")
LAYER_WEIGHT_ACTIVATIONS = ("exp", "softplus", "identity")

#: Whole-result memo for Revelio explanations. An explanation is a pure
#: function of (graph structure, features, frozen model weights, target,
#: mode, hyperparameters, seed) — mask initialization and Adam are both
#: seeded — so a repeat request can skip the optimize loop entirely, which
#: profiling shows is >90% of ``explain_node`` even with the flow and
#: context caches warm. Cache hits return an independent copy; entries can
#: never go stale because every input is part of the key.
EXPLANATION_CACHE = LRUCache(maxsize=128)
_EXPLANATION_CACHE_ENABLED = [True]


def clear_explanation_cache() -> None:
    """Explicitly drop every memoized Revelio explanation."""
    EXPLANATION_CACHE.clear()


@contextmanager
def explanation_cache_disabled():
    """Temporarily bypass the explanation memo (cold-path benchmarks)."""
    prev = _EXPLANATION_CACHE_ENABLED[0]
    _EXPLANATION_CACHE_ENABLED[0] = False
    try:
        yield
    finally:
        _EXPLANATION_CACHE_ENABLED[0] = prev


def _copy_explanation(e: Explanation) -> Explanation:
    """Independent copy of a memoized explanation.

    Arrays are copied and ``meta`` deep-copied (``Explainer.explain``
    writes ``trace_id`` / ``perf`` into it per call); the
    :class:`FlowIndex` is shared — it is immutable by library convention
    and already shared through :data:`repro.flows.FLOW_CACHE`.
    """
    return Explanation(
        edge_scores=e.edge_scores.copy(),
        predicted_class=e.predicted_class,
        method=e.method,
        mode=e.mode,
        target=e.target,
        layer_edge_scores=None if e.layer_edge_scores is None else e.layer_edge_scores.copy(),
        flow_scores=None if e.flow_scores is None else e.flow_scores.copy(),
        flow_index=e.flow_index,
        context_node_ids=None if e.context_node_ids is None else e.context_node_ids.copy(),
        context_edge_positions=(None if e.context_edge_positions is None
                                else e.context_edge_positions.copy()),
        meta=copy.deepcopy(e.meta),
    )


class Revelio(Explainer):
    """The paper's method.

    Parameters
    ----------
    model:
        Pretrained target :class:`GNN` (frozen by the base class).
    epochs:
        Mask-learning epochs ``T`` (paper: 500).
    lr:
        Adam learning rate (paper: 1e-2).
    alpha:
        Sparsity-regularizer strength (paper: tuned per dataset; Fig. 5).
    mask_activation:
        ``"tanh"`` (paper) or ``"sigmoid"`` (ablation A2).
    layer_weight_activation:
        ``"exp"`` (paper), ``"softplus"`` or ``"identity"`` (ablation A1).
    max_flows:
        Enumeration safety ceiling.
    seed:
        Mask-initialization seed.
    """

    name = "revelio"
    is_flow_based = True
    supports_counterfactual = True

    def __init__(self, model: GNN, epochs: int = 500, lr: float = 1e-2,
                 alpha: float = 0.05, mask_activation: str = "tanh",
                 layer_weight_activation: str = "exp",
                 max_flows: int = 2_000_000, seed: int = 0):
        super().__init__(model, seed=seed)
        if mask_activation not in MASK_ACTIVATIONS:
            raise ExplainerError(f"mask_activation must be one of {MASK_ACTIVATIONS}")
        if layer_weight_activation not in LAYER_WEIGHT_ACTIVATIONS:
            raise ExplainerError(
                f"layer_weight_activation must be one of {LAYER_WEIGHT_ACTIVATIONS}"
            )
        self.epochs = epochs
        self.lr = lr
        self.alpha = alpha
        self.mask_activation = mask_activation
        self.layer_weight_activation = layer_weight_activation
        self.max_flows = max_flows

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        """Explain the prediction at ``node`` via message-flow masks."""
        key = self._memo_key(graph, int(node), mode)
        hit = EXPLANATION_CACHE.get(key) if key is not None else None
        if hit is not None:
            PERF.explanation_cache_hits += 1
            return _copy_explanation(hit)
        # The explained class comes from the *full* graph: the L-hop context
        # can shift GCN renormalization enough to flip the argmax, and the
        # explanation must target what the model actually predicts.
        class_idx = self.predicted_class(graph, target=node)
        context = self.node_context(graph, node)
        flow_index = cached_enumerate_flows(context.subgraph, self.model.num_layers,
                                            target=context.local_target,
                                            max_flows=self.max_flows)
        explanation = self._optimize(context.subgraph, flow_index, mode,
                                     target=context.local_target, class_idx=class_idx)
        explanation.target = node
        explanation.context_node_ids = context.node_ids
        explanation.context_edge_positions = context.edge_positions
        explanation.edge_scores = self.lift_edge_scores(
            context, explanation.edge_scores, graph.num_edges
        )
        if key is not None:
            EXPLANATION_CACHE.put(key, _copy_explanation(explanation))
        return explanation

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        """Explain a graph-level prediction via message-flow masks."""
        key = self._memo_key(graph, None, mode)
        hit = EXPLANATION_CACHE.get(key) if key is not None else None
        if hit is not None:
            PERF.explanation_cache_hits += 1
            return _copy_explanation(hit)
        flow_index = cached_enumerate_flows(graph, self.model.num_layers,
                                            max_flows=self.max_flows)
        explanation = self._optimize(graph, flow_index, mode, target=None)
        if key is not None:
            EXPLANATION_CACHE.put(key, _copy_explanation(explanation))
        return explanation

    # ------------------------------------------------------------------
    # result memoization
    # ------------------------------------------------------------------
    def _memo_key(self, graph: Graph, target: int | None, mode: str):
        """Complete-input cache key, or ``None`` while the memo is bypassed.

        Everything the optimize loop reads is hashed: graph structure and
        features, the frozen model weights, the explained instance and
        every hyperparameter including the seed. Hashing costs microseconds
        against the multi-millisecond epoch loop it saves.
        """
        if not _EXPLANATION_CACHE_ENABLED[0]:
            return None
        h = hashlib.sha1()
        h.update(np.ascontiguousarray(graph.x).tobytes())
        for name, param in sorted(self.model.named_parameters()):
            h.update(name.encode())
            h.update(np.ascontiguousarray(param.data).tobytes())
        return (
            type(self).__qualname__,
            graph_fingerprint(graph), h.hexdigest(), target, mode,
            self.model.num_layers, self.epochs, self.lr, self.alpha,
            self.mask_activation, self.layer_weight_activation,
            self.max_flows, self.seed,
        ) + self._memo_extras()

    def _memo_extras(self) -> tuple:
        """Extra memo-key components contributed by subclasses.

        A subclass that adds hyperparameters its ``_optimize`` reads MUST
        extend this (the class name alone only separates subclasses from
        each other, not two differently-configured instances of the same
        subclass).
        """
        return ()

    # ------------------------------------------------------------------
    # the learning loop
    # ------------------------------------------------------------------
    def _flow_scores(self, masks: Tensor) -> Tensor:
        """Eq. (4): bounded flow scores from raw masks."""
        if self.mask_activation == "tanh":
            return masks.tanh()
        return masks.sigmoid()

    def _layer_scale(self, w: Tensor) -> Tensor:
        """Positive per-layer scale from the weight vector (choice of §IV-B)."""
        if self.layer_weight_activation == "exp":
            return w.exp()
        if self.layer_weight_activation == "softplus":
            return w.softplus()
        return w  # identity (ablation; may go negative, as the paper warns)

    def _layer_edge_scores(self, masks: Tensor, w: Tensor, flow_index: FlowIndex) -> Tensor:
        """Eqs. (3)/(5)/(7): transform flow masks into layer-edge masks."""
        omega_f = self._flow_scores(masks)
        accumulated = flow_index.aggregate_scores(omega_f)          # (L, E+N)
        scaled = accumulated * self._layer_scale(w).reshape(-1, 1)  # exp(w_l) per layer
        return scaled.sigmoid()

    def _optimize(self, graph: Graph, flow_index: FlowIndex, mode: str,
                  target: int | None, class_idx: int | None = None) -> Explanation:
        rng = ensure_rng(self.seed)
        if flow_index.num_flows == 0:
            raise ExplainerError("instance has no message flows to explain")

        if class_idx is None:
            class_idx = self.predicted_class(graph, target=target)
        used = flow_index.used_layer_edges()
        used_tensor = Tensor(used.astype(np.float64))
        num_used = float(used.sum())

        masks = Tensor(rng.normal(0.0, 0.1, size=flow_index.num_flows), requires_grad=True)
        w = Tensor(np.zeros(flow_index.num_layers), requires_grad=True)
        optimizer = Adam([masks, w], lr=self.lr)

        row = target if target is not None else 0
        losses = []
        with span(SPAN_OPTIMIZE, epochs=self.epochs,
                  num_flows=flow_index.num_flows):
            for _ in range(self.epochs):
                with span(SPAN_EPOCH):
                    optimizer.zero_grad()
                    omega_e = self._layer_edge_scores(masks, w, flow_index)
                    layer_masks = [omega_e[l] for l in range(flow_index.num_layers)]
                    logits = self.model.forward_graph(graph, edge_masks=layer_masks)
                    log_probs = log_softmax(logits, axis=-1)
                    log_p = log_probs[row, class_idx]

                    if mode == "factual":
                        objective = -log_p                                    # Eq. (1)
                        regularizer = (omega_e * used_tensor).sum() / num_used  # Eq. (8)
                    else:
                        # Eq. (2): BCE against target 0 for the explained class.
                        p = log_p.exp()
                        objective = -(1.0 - p.clip(0.0, 1.0 - 1e-12)).log()
                        regularizer = ((1.0 - omega_e) * used_tensor).sum() / num_used  # Eq. (9)

                    loss = objective + self.alpha * regularizer
                    loss.backward()
                    optimizer.step()
                    losses.append(loss.item())

        # Final scores (no gradient needed).
        omega_f = self._flow_scores(masks).numpy().copy()
        omega_e = self._layer_edge_scores(masks, w, flow_index).numpy().copy()
        if mode == "counterfactual":
            # ω'[F] = −ω[F]; ω'[e] = 1 − ω[e]: higher still means more
            # important, now "important to remove".
            omega_f = -omega_f
            omega_e = 1.0 - omega_e

        edge_scores = self._edges_from_layers(omega_e, used, flow_index)
        return Explanation(
            edge_scores=edge_scores,
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            layer_edge_scores=omega_e,
            flow_scores=omega_f,
            flow_index=flow_index,
            meta={
                "final_loss": losses[-1],
                "params": {"epochs": self.epochs, "lr": self.lr,
                           "alpha": self.alpha},
                "layer_weights": w.numpy().copy(),
                "num_flows": flow_index.num_flows,
            },
        )

    @staticmethod
    def _edges_from_layers(omega_e: np.ndarray, used: np.ndarray,
                           flow_index: FlowIndex) -> np.ndarray:
        """Whole-GNN data-edge scores: average over layers using the edge.

        The paper transfers flow scores "into the importance scores for
        edges within individual GNN layers or across the entire GNN"; the
        across-GNN transfer averages each edge's per-layer scores over the
        layers where it actually carries flows.
        """
        num_edges = flow_index.num_edges
        scores = omega_e[:, :num_edges]
        mask = used[:, :num_edges]
        counts = np.maximum(mask.sum(axis=0), 1)
        return (scores * mask).sum(axis=0) / counts
