"""Top-k Revelio: the paper's future-work efficiency variant.

Learns individual masks for only the ``k`` flows a cheap preselection pass
(:mod:`repro.core.preselect`) deems promising; every other flow shares a
single learnable *background* mask. The parameter count drops from
``|F|`` to ``k + 1`` and, more importantly, the per-epoch scatter work
shrinks to the selected flows — on dense instances where ``|F|`` explodes
this is the difference between feasible and not.

The masked forward stays exact: background flows still contribute to the
layer-edge accumulation (Eq. 3), just through a tied mask.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Adam, Tensor, log_softmax
from ..errors import ExplainerError
from ..explain.base import Explanation
from ..flows import FlowIndex
from ..graph import Graph
from ..nn.models import GNN
from ..rng import ensure_rng
from .preselect import PRESELECT_STRATEGIES, preselect_flows
from .revelio import Revelio

__all__ = ["TopKRevelio"]


class TopKRevelio(Revelio):
    """Revelio with flow preselection (paper §VI, "future work").

    Parameters
    ----------
    k:
        Number of flows that receive individual masks.
    strategy:
        Preselection strategy: ``"gradient"`` (default), ``"walk_weight"``
        or ``"random"`` (ablation control).
    (remaining parameters as in :class:`~repro.core.Revelio`)
    """

    name = "revelio_topk"

    def __init__(self, model: GNN, k: int = 64, strategy: str = "gradient",
                 **kwargs):
        super().__init__(model, **kwargs)
        if k <= 0:
            raise ExplainerError("k must be positive")
        if strategy not in PRESELECT_STRATEGIES:
            raise ExplainerError(
                f"unknown strategy {strategy!r}; expected one of {PRESELECT_STRATEGIES}"
            )
        self.k = k
        self.strategy = strategy

    def _memo_extras(self) -> tuple:
        return (self.k, self.strategy)

    # The learning loop overrides Revelio's `_optimize` to work on the
    # reduced parameterization.
    def _optimize(self, graph: Graph, flow_index: FlowIndex, mode: str,
                  target: int | None, class_idx: int | None = None) -> Explanation:
        rng = ensure_rng(self.seed)
        if flow_index.num_flows == 0:
            raise ExplainerError("instance has no message flows to explain")
        if class_idx is None:
            class_idx = self.predicted_class(graph, target=target)

        selected = preselect_flows(self.model, graph, flow_index, self.k,
                                   class_idx, target, strategy=self.strategy,
                                   seed=rng)
        # Gather map: position i of the full mask vector reads parameter
        # slot selected_slot[i] (k slots for selected flows, slot k shared).
        slot = np.full(flow_index.num_flows, selected.size, dtype=np.int64)
        slot[selected] = np.arange(selected.size)

        params = Tensor(rng.normal(0.0, 0.1, size=selected.size + 1), requires_grad=True)
        w = Tensor(np.zeros(flow_index.num_layers), requires_grad=True)
        optimizer = Adam([params, w], lr=self.lr)

        used = flow_index.used_layer_edges()
        used_tensor = Tensor(used.astype(np.float64))
        num_used = float(used.sum())
        row = target if target is not None else 0
        losses = []
        for _ in range(self.epochs):
            optimizer.zero_grad()
            masks = params.gather_rows(slot)          # expand to |F| via tying
            omega_e = self._layer_edge_scores(masks, w, flow_index)
            layer_masks = [omega_e[l] for l in range(flow_index.num_layers)]
            log_probs = log_softmax(
                self.model.forward_graph(graph, edge_masks=layer_masks), axis=-1
            )
            log_p = log_probs[row, class_idx]
            if mode == "factual":
                objective = -log_p
                regularizer = (omega_e * used_tensor).sum() / num_used
            else:
                p = log_p.exp()
                objective = -(1.0 - p.clip(0.0, 1.0 - 1e-12)).log()
                regularizer = ((1.0 - omega_e) * used_tensor).sum() / num_used
            loss = objective + self.alpha * regularizer
            loss.backward()
            optimizer.step()
            losses.append(loss.item())

        full_masks = Tensor(params.numpy()[slot])
        omega_f = self._flow_scores(full_masks).numpy().copy()
        omega_e = self._layer_edge_scores(full_masks, w, flow_index).numpy().copy()
        if mode == "counterfactual":
            omega_f = -omega_f
            omega_e = 1.0 - omega_e

        edge_scores = self._edges_from_layers(omega_e, used, flow_index)
        return Explanation(
            edge_scores=edge_scores,
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            layer_edge_scores=omega_e,
            flow_scores=omega_f,
            flow_index=flow_index,
            meta={
                "final_loss": losses[-1],
                "params": {"epochs": self.epochs, "alpha": self.alpha,
                           "k": int(selected.size),
                           "strategy": self.strategy},
                "num_flows": flow_index.num_flows,
                "selected_flows": selected,
                "layer_weights": w.numpy().copy(),
            },
        )
