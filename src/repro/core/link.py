"""Flow explanation of link predictions.

The paper applies Revelio to node and graph classification; link
prediction is the third message-passing task its §II lists. The extension
is mechanically natural: a predicted link ``(u, v)`` depends on the
message flows ending at *either endpoint*, so the flow set is the union of
the two endpoints' flow sets and the objective is the link probability:

    factual          min −log σ(z_u · z_v)        (keep the link)
    counterfactual   min −log (1 − σ(z_u · z_v))  (break the link)

with exactly the Eq. (4)/(5) mask transformation of node-level Revelio.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..autograd import Adam, Tensor
from ..errors import ExplainerError
from ..explain.base import Explanation
from ..explain.target import ExplainTarget
from ..flows import FlowIndex, cached_enumerate_flows
from ..graph import Graph, extract_receptive_field
from ..nn.link_prediction import LinkPredictor
from ..rng import ensure_rng
from .revelio import LAYER_WEIGHT_ACTIVATIONS, MASK_ACTIVATIONS, Revelio

__all__ = ["LinkRevelio"]


class LinkRevelio:
    """Revelio for link prediction targets.

    Parameters
    ----------
    model:
        A trained :class:`~repro.nn.link_prediction.LinkPredictor`.
    epochs, lr, alpha, mask_activation, layer_weight_activation, max_flows,
    seed:
        As in :class:`~repro.core.Revelio`.
    """

    name = "link_revelio"
    is_flow_based = True

    def __init__(self, model: LinkPredictor, epochs: int = 300, lr: float = 1e-2,
                 alpha: float = 0.05, mask_activation: str = "tanh",
                 layer_weight_activation: str = "exp",
                 max_flows: int = 2_000_000, seed: int = 0):
        if mask_activation not in MASK_ACTIVATIONS:
            raise ExplainerError(f"mask_activation must be one of {MASK_ACTIVATIONS}")
        if layer_weight_activation not in LAYER_WEIGHT_ACTIVATIONS:
            raise ExplainerError(
                f"layer_weight_activation must be one of {LAYER_WEIGHT_ACTIVATIONS}")
        self.model = model
        self.epochs = epochs
        self.lr = lr
        self.alpha = alpha
        self.mask_activation = mask_activation
        self.layer_weight_activation = layer_weight_activation
        self.max_flows = max_flows
        self.seed = seed
        model.eval()
        model.freeze()

    # Reuse Revelio's transformation statics through small shims.
    _flow_scores = Revelio._flow_scores
    _layer_scale = Revelio._layer_scale
    _layer_edge_scores = Revelio._layer_edge_scores
    _edges_from_layers = staticmethod(Revelio._edges_from_layers)

    # ------------------------------------------------------------------
    def link_context(self, graph: Graph, u: int, v: int):
        """Union of the two endpoints' L-hop incoming neighborhoods.

        One batched extraction: the backward BFS expands from both
        endpoints simultaneously, so the union is computed inside the
        frontier loop instead of as a Python-level merge of two
        single-target traversals.
        """
        field = extract_receptive_field(graph, [u, v], self.model.num_layers)
        lu, lv = field.local_targets
        return field.graph, field.node_ids, field.edge_positions, lu, lv

    def _link_flows(self, graph: Graph, u: int, v: int) -> FlowIndex:
        """Flows ending at either endpoint, as one FlowIndex."""
        fi_u = cached_enumerate_flows(graph, self.model.num_layers, target=u,
                                      max_flows=self.max_flows)
        fi_v = cached_enumerate_flows(graph, self.model.num_layers, target=v,
                                      max_flows=self.max_flows)
        return FlowIndex(
            nodes=np.concatenate([fi_u.nodes, fi_v.nodes]),
            layer_edges=np.concatenate([fi_u.layer_edges, fi_v.layer_edges]),
            num_layers=self.model.num_layers,
            num_edges=graph.num_edges,
            num_nodes=graph.num_nodes,
            target=None,
        )

    # ------------------------------------------------------------------
    def explain(self, graph: Graph, target: ExplainTarget | int | None = None,
                _legacy_v: int | None = None, mode: str = "factual") -> Explanation:
        """Explain a predicted link via message-flow masks.

        ``target`` is an ``ExplainTarget.link(u, v)``. The historical
        ``explain(graph, u, v[, mode])`` positional form (and a bare
        ``(u, v)`` tuple) keeps working one release behind a
        ``DeprecationWarning``.
        """
        if _legacy_v is not None:
            warnings.warn(  # repro: sunset[2.0]
                "link_revelio.explain(graph, u, v) is deprecated; pass "
                "ExplainTarget.link(u, v)", DeprecationWarning, stacklevel=2)
            target = ExplainTarget.link(int(target), int(_legacy_v))  # type: ignore[arg-type]
        else:
            target = ExplainTarget.coerce(target, task="node",
                                          where=f"{self.name}.explain")
        if not isinstance(target, ExplainTarget) or target.kind != "link":
            raise ExplainerError(
                f"link explanation requires an ExplainTarget.link(u, v) target, "
                f"got {target!r}")
        u, v = target.endpoints
        if mode not in ("factual", "counterfactual"):
            raise ExplainerError(f"unknown mode {mode!r}")
        for node in (u, v):
            if not 0 <= node < graph.num_nodes:
                raise ExplainerError(f"node {node} out of range")

        subgraph, node_ids, edge_positions, lu, lv = self.link_context(graph, u, v)
        flow_index = self._link_flows(subgraph, lu, lv)
        if flow_index.num_flows == 0:
            raise ExplainerError("link has no message flows to explain")

        rng = ensure_rng(self.seed)
        used = flow_index.used_layer_edges()
        used_tensor = Tensor(used.astype(np.float64))
        num_used = float(used.sum())
        pair = np.array([[lu, lv]])

        masks = Tensor(rng.normal(0.0, 0.1, size=flow_index.num_flows), requires_grad=True)
        w = Tensor(np.zeros(flow_index.num_layers), requires_grad=True)
        optimizer = Adam([masks, w], lr=self.lr)
        losses = []
        for _ in range(self.epochs):
            optimizer.zero_grad()
            omega_e = self._layer_edge_scores(masks, w, flow_index)
            layer_masks = [omega_e[l] for l in range(flow_index.num_layers)]
            logit = self.model.link_logits(subgraph, pair, edge_masks=layer_masks)[0]
            p = logit.sigmoid().clip(1e-12, 1.0 - 1e-12)
            if mode == "factual":
                objective = -p.log()
                regularizer = (omega_e * used_tensor).sum() / num_used
            else:
                objective = -(1.0 - p).log()
                regularizer = ((1.0 - omega_e) * used_tensor).sum() / num_used
            loss = objective + self.alpha * regularizer
            loss.backward()
            optimizer.step()
            losses.append(loss.item())

        omega_f = self._flow_scores(masks).numpy().copy()
        omega_e = self._layer_edge_scores(masks, w, flow_index).numpy().copy()
        if mode == "counterfactual":
            omega_f = -omega_f
            omega_e = 1.0 - omega_e

        local_edge_scores = self._edges_from_layers(omega_e, used, flow_index)
        edge_scores = np.zeros(graph.num_edges)
        edge_scores[edge_positions] = local_edge_scores
        return Explanation(
            edge_scores=edge_scores,
            predicted_class=1,  # the positive link class
            method=self.name,
            mode=mode,
            layer_edge_scores=omega_e,
            flow_scores=omega_f,
            flow_index=flow_index,
            context_node_ids=node_ids,
            context_edge_positions=edge_positions,
            meta={
                "link": (int(u), int(v)),
                "final_loss": losses[-1],
                "num_flows": flow_index.num_flows,
                "p_link": float(self.model.predict_proba(graph, np.array([[u, v]]))[0]),
            },
        )
