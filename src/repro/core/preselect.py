"""Flow preselection — the paper's §VI future-work direction, implemented.

    "if one could identify the top-k most important message flows before
    using REVELIO, and only propagate those top-k flow masks, it would
    save a significant amount of memory, and improve running time."

This module provides cheap preliminary flow scores and the pruning logic
:class:`~repro.core.topk.TopKRevelio` uses: keep learnable masks only for
the ``k`` most promising flows; all remaining flows share a single
background mask, so the optimization problem shrinks from ``|F|`` to
``k + 1`` parameters while the masked forward stays exact.

Three preselection strategies, all far cheaper than mask learning:

``"gradient"``
    One backward pass: the gradient of the class log-probability w.r.t. an
    all-ones layer-edge mask, accumulated along each flow's path (first-
    order Taylor estimate of the flow's leverage).
``"walk_weight"``
    Data-independent: the product of per-edge propagation weights (GCN
    normalization coefficients, or uniform for other convs) along the
    path — flows through high-conductance paths rank first.
``"random"``
    Control strategy for ablations.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, log_softmax
from ..errors import ExplainerError
from ..flows import FlowIndex
from ..graph import Graph
from ..nn.message_passing import augment_edges
from ..nn.models import GNN
from ..rng import ensure_rng

__all__ = ["preselect_flows", "gradient_flow_scores", "walk_weight_flow_scores",
           "PRESELECT_STRATEGIES"]

PRESELECT_STRATEGIES = ("gradient", "walk_weight", "random")


def gradient_flow_scores(model: GNN, graph: Graph, flow_index: FlowIndex,
                         class_idx: int, target: int | None) -> np.ndarray:
    """First-order flow leverage from one backward pass.

    Runs the model with an all-ones mask that requires grad, backprops the
    class log-probability, and sums |∂ log p / ∂ ω[e^l]| over each flow's
    layer edges. Cost: one forward + one backward, independent of |F|.
    """
    masks = [Tensor(np.ones(flow_index.num_layer_edges), requires_grad=True)
             for _ in range(flow_index.num_layers)]
    logits = model.forward_graph(graph, edge_masks=masks)
    log_probs = log_softmax(logits, axis=-1)
    row = target if target is not None else 0
    log_probs[row, class_idx].backward()

    grads = np.stack([
        (m.grad.reshape(-1) if m.grad is not None else np.zeros(flow_index.num_layer_edges))
        for m in masks
    ])
    scores = np.zeros(flow_index.num_flows)
    for l in range(flow_index.num_layers):
        scores += np.abs(grads[l, flow_index.layer_edges[:, l]])
    return scores


def walk_weight_flow_scores(graph: Graph, flow_index: FlowIndex) -> np.ndarray:
    """Structural flow scores: product of GCN propagation weights per path."""
    src, dst = augment_edges(graph.edge_index, graph.num_nodes)
    deg = np.bincount(dst, minlength=graph.num_nodes).astype(np.float64)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1.0))
    edge_weight = inv_sqrt[src] * inv_sqrt[dst]

    scores = np.ones(flow_index.num_flows)
    for l in range(flow_index.num_layers):
        scores *= edge_weight[flow_index.layer_edges[:, l]]
    return scores


def preselect_flows(model: GNN, graph: Graph, flow_index: FlowIndex, k: int,
                    class_idx: int, target: int | None,
                    strategy: str = "gradient",
                    seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Indices of the ``k`` most promising flows under a cheap strategy.

    Returns all flows (identity selection) when ``k >= |F|``.
    """
    if strategy not in PRESELECT_STRATEGIES:
        raise ExplainerError(
            f"unknown preselect strategy {strategy!r}; expected one of {PRESELECT_STRATEGIES}"
        )
    if k <= 0:
        raise ExplainerError("preselection k must be positive")
    if k >= flow_index.num_flows:
        return np.arange(flow_index.num_flows)

    if strategy == "gradient":
        scores = gradient_flow_scores(model, graph, flow_index, class_idx, target)
    elif strategy == "walk_weight":
        scores = walk_weight_flow_scores(graph, flow_index)
    else:
        scores = ensure_rng(seed).random(flow_index.num_flows)
    return np.argsort(-scores, kind="stable")[:k]
