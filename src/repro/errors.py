"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of this package with a single ``except`` clause,
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AutogradError(ReproError):
    """Raised for invalid operations on the autograd tape."""


class ShapeError(AutogradError):
    """Raised when tensor shapes are incompatible for an operation."""


class GraphError(ReproError):
    """Raised for malformed graph data (bad edge indices, shapes, masks)."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid generator parameters."""


class ModelError(ReproError):
    """Raised for invalid model configuration or usage."""


class FlowError(ReproError):
    """Raised for invalid message-flow enumeration requests."""


class ExplainerError(ReproError):
    """Raised for invalid explainer configuration or inputs."""


class EvaluationError(ReproError):
    """Raised for invalid evaluation requests (bad sparsity, empty sets)."""


class RunnerError(ReproError):
    """Raised for invalid experiment plans or unknown job kinds."""


class CheckError(ReproError):
    """Raised for invalid static-analysis requests (unknown rule codes)."""


class KernelError(ReproError):
    """Raised for invalid sparse-kernel registry requests (unknown ops or
    backends, mismatched scatter plans)."""


class BenchError(ReproError):
    """Raised for unreadable benchmark artifacts (missing or malformed
    BENCH_history.jsonl / BENCH_perf.json)."""


class ServeError(ReproError):
    """Raised by the serving daemon: malformed requests, backpressure
    rejections, and submissions against a draining server."""
