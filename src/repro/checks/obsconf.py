"""Observability-conformance rules: RPR030 (span names) and RPR031
(PERF stage/counter names) must resolve against :mod:`repro.obs.names`.

A typo'd counter attribute or stage string does not crash — it opens a
fresh bucket and the real one silently reads zero in every manifest.
These rules resolve every observability string literal in the ``repro``
package against the declared registry at lint time, with a
did-you-mean hint from the registered names.
"""

from __future__ import annotations

import ast
import difflib
from typing import Iterator

from .engine import FileContext, Violation, dotted_name
from .registry import Rule, register

__all__: list[str] = []

#: Non-counter attributes legal on the PERF object.
_PERF_METHODS = frozenset({
    "snapshot", "delta", "merge", "stage", "reset", "stage_seconds",
})


def _registry() -> tuple[frozenset[str], frozenset[str], frozenset[str]]:
    """(span names, stage names, counter names) from the live registry."""
    from ..obs import names

    return names.SPAN_NAMES, names.STAGE_NAMES, names.COUNTER_NAMES


def _hint(bad: str, known: frozenset[str]) -> str:
    close = difflib.get_close_matches(bad, known, n=1)
    if close:
        return f" (did you mean {close[0]!r}?)"
    return f" (registered: {', '.join(sorted(known))})"


class _ObsRule(Rule):
    """Shared scoping: only the ``repro`` package must conform — tests
    and scratch scripts open ad-hoc spans on purpose."""

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_is("repro")


@register
class UnregisteredSpanName(_ObsRule):
    code = "RPR030"
    name = "unregistered-span-name"
    rationale = ("A span name not declared in repro.obs.names fragments "
                 "trace summaries and manifests silently; declare the "
                 "constant and import it at the call site.")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        span_names, _, _ = _registry()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            is_span_call = (isinstance(func, ast.Name) and func.id == "span") \
                or (isinstance(func, ast.Attribute)
                    and func.attr in ("span", "start_span"))
            if not is_span_call:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                if first.value not in span_names:
                    yield self.violation(
                        ctx, first,
                        f"span name {first.value!r} is not declared in "
                        f"repro.obs.names{_hint(first.value, span_names)}")


@register
class UnregisteredPerfName(_ObsRule):
    code = "RPR031"
    name = "unregistered-perf-name"
    rationale = ("A typo'd PERF counter or stage string creates a fresh "
                 "bucket instead of failing, so the real metric silently "
                 "reads zero; every name must exist in repro.obs.names.")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        _, stage_names, counter_names = _registry()
        for node in ast.walk(ctx.tree):
            # PERF.stage("...") literals must be registered stages.
            if isinstance(node, ast.Call) and node.args \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "stage" \
                    and dotted_name(node.func.value) == "PERF":
                first = node.args[0]
                if isinstance(first, ast.Constant) \
                        and isinstance(first.value, str) \
                        and first.value not in stage_names:
                    yield self.violation(
                        ctx, first,
                        f"stage name {first.value!r} is not declared in "
                        f"repro.obs.names{_hint(first.value, stage_names)}")
            # PERF.<attr> must be a declared counter or a method.
            if isinstance(node, ast.Attribute) \
                    and dotted_name(node.value) == "PERF" \
                    and node.attr not in counter_names \
                    and node.attr not in _PERF_METHODS:
                yield self.violation(
                    ctx, node,
                    f"PERF.{node.attr} is not a declared counter"
                    f"{_hint(node.attr, counter_names)}")
