"""repro.checks — repo-aware static analysis for the reproduction.

An AST lint pass that machine-checks the invariants the reproduction's
claims rest on, in six families:

* **determinism** — no module-global RNG state, no wall-clock seeds, no
  set-order-sensitive iteration in scoring code (RPR001–RPR003);
* **error discipline** — no bare/swallowing excepts, library raises stay
  inside the ``ReproError`` hierarchy (RPR010–RPR012);
* **API contracts** — public explain/eval entry points keyword-only, no
  re-exploded ``ExecutionConfig`` flat kwargs (RPR020–RPR021);
* **observability conformance** — every span/stage/counter name resolves
  against the declared registry in :mod:`repro.obs.names`
  (RPR030–RPR031);
* **benchmark conformance** — workload keys written to BENCH_perf.json
  by ``bench_*`` scripts resolve against the declared workload registry
  (RPR040);
* **scatter discipline** — no raw ``np.add.at``/``np.maximum.at`` in
  library code outside :mod:`repro.sparse`; hot scatters dispatch
  through the plan-backed kernel registry (RPR050);
* **event-loop discipline** — no blocking calls (``time.sleep``, sync
  subprocess/socket/file waits) inside :mod:`repro.serve` coroutines;
  slow work runs on the coalescer's executor thread (RPR060);
* **target typing** — public explain/eval/serve/sampling entry points
  type their ``target``/``targets`` parameters as ``ExplainTarget``, the
  one vocabulary for "what is being explained" (RPR070).

Run as ``repro lint src tests`` (CI gates on it) or through
:func:`lint_paths` / :func:`run_lint`. Per-line suppression:
``# repro: noqa[RPR012]`` (with the code — bare ``# repro: noqa``
suppresses every rule on the line).

The pass is *repo-aware*: rules read the live ``ReproError`` hierarchy,
the ``ExecutionConfig`` legacy-field table and the ``repro.obs.names``
registry from the package itself, so extending those automatically
extends the lint without touching the rules.
"""

from __future__ import annotations

from .engine import FileContext, LintResult, Violation, collect_files, lint_paths
from .registry import RULES, Rule, all_rules, register, resolve_codes
from .report import format_rule_listing, run_lint

# Importing the rule modules registers their rules (stable-code registry).
from . import (api, benchconf, blocking, determinism, discipline, obsconf,
               scatter, targets)

__all__ = [
    "Violation",
    "FileContext",
    "LintResult",
    "lint_paths",
    "collect_files",
    "Rule",
    "RULES",
    "register",
    "all_rules",
    "resolve_codes",
    "run_lint",
    "format_rule_listing",
    "api",
    "benchconf",
    "blocking",
    "determinism",
    "discipline",
    "obsconf",
    "scatter",
    "targets",
]
