"""repro.checks — repo-aware static analysis for the reproduction.

An AST lint pass that machine-checks the invariants the reproduction's
claims rest on, in six families:

* **determinism** — no module-global RNG state, no wall-clock seeds, no
  set-order-sensitive iteration in scoring code (RPR001–RPR003);
* **error discipline** — no bare/swallowing excepts, library raises stay
  inside the ``ReproError`` hierarchy (RPR010–RPR012);
* **API contracts** — public explain/eval entry points keyword-only, no
  re-exploded ``ExecutionConfig`` flat kwargs (RPR020–RPR021);
* **observability conformance** — every span/stage/counter name resolves
  against the declared registry in :mod:`repro.obs.names`
  (RPR030–RPR031);
* **benchmark conformance** — workload keys written to BENCH_perf.json
  by ``bench_*`` scripts resolve against the declared workload registry
  (RPR040);
* **scatter discipline** — no raw ``np.add.at``/``np.maximum.at`` in
  library code outside :mod:`repro.sparse`; hot scatters dispatch
  through the plan-backed kernel registry (RPR050);
* **event-loop discipline** — no blocking calls (``time.sleep``, sync
  subprocess/socket/file waits) inside :mod:`repro.serve` coroutines;
  slow work runs on the coalescer's executor thread (RPR060);
* **target typing** — public explain/eval/serve/sampling entry points
  type their ``target``/``targets`` parameters as ``ExplainTarget``, the
  one vocabulary for "what is being explained" (RPR070);
* **whole-program analysis** (:mod:`repro.checks.program`) — import
  cycles and the declared layering contract (RPR100–RPR101), dead
  exports / ``__all__`` drift / private-module reach-ins
  (RPR110–RPR112), kernel-backend signature contracts and deprecation
  sunsets (RPR120–RPR121), and transitive blocking-call reachability
  from serve coroutines (RPR130).

Run as ``repro lint src tests benchmarks examples`` (CI gates on it) or
through :func:`lint_paths` / :func:`run_lint`. Per-line suppression:
``# repro: noqa[RPR012]`` (with the code — bare ``# repro: noqa``
suppresses every rule on the line); a noqa anywhere on a multi-line
statement or its decorators covers the whole logical line. Warm runs
reuse the mtime+size parse cache (:mod:`repro.checks.cache`,
``--no-cache`` to bypass); ``--format sarif`` emits SARIF 2.1.0 for
code-scanning upload.

The pass is *repo-aware*: rules read the live ``ReproError`` hierarchy,
the ``ExecutionConfig`` legacy-field table and the ``repro.obs.names``
registry from the package itself, so extending those automatically
extends the lint without touching the rules.
"""

from __future__ import annotations

from .cache import LintCache
from .engine import FileContext, LintResult, Violation, collect_files, lint_paths
from .registry import RULES, ProgramRule, Rule, all_rules, register, resolve_codes
from .report import format_rule_listing, run_lint
from .sarif import to_sarif

# Importing the rule modules registers their rules (stable-code registry);
# program comes last — its rules consume the engine's FileSummary digests.
from . import (api, benchconf, blocking, determinism, discipline, obsconf,
               program, scatter, targets)

__all__ = [
    "Violation",
    "FileContext",
    "LintResult",
    "LintCache",
    "lint_paths",
    "collect_files",
    "Rule",
    "ProgramRule",
    "RULES",
    "register",
    "all_rules",
    "resolve_codes",
    "run_lint",
    "format_rule_listing",
    "to_sarif",
]
