"""The lint engine: file discovery, AST contexts, suppression, results.

One :class:`FileContext` is built per Python file (source, parsed tree,
dotted module name, ``# repro: noqa`` line map) and handed to every
selected per-file rule; :func:`lint_paths` folds the per-file findings
into a :class:`LintResult`. Whole-program rules (scope ``"program"``,
see :mod:`repro.checks.program`) run after the per-file sweep over a
:class:`~repro.checks.program.context.ProgramContext` assembled from
one :class:`~repro.checks.program.summary.FileSummary` per file — the
JSON-serializable module digest that also backs the warm-run parse
cache (:mod:`repro.checks.cache`). The engine is pure stdlib — linting
must not require the numeric stack — and deterministic: files are
visited in sorted order and violations are reported sorted by location.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from .registry import Rule, resolve_codes

if TYPE_CHECKING:
    from .cache import LintCache

__all__ = ["Violation", "FileContext", "LintResult", "lint_paths",
           "collect_files", "dotted_name", "module_name",
           "expand_noqa_map", "statement_spans"]

#: Per-line suppression: ``# repro: noqa`` (all codes) or
#: ``# repro: noqa[RPR001]`` / ``# repro: noqa[RPR001,RPR010]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache",
              ".mypy_cache", "build", "dist"}


@dataclass(frozen=True)
class Violation:
    """One rule finding at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message, "path": self.path,
                "line": self.line, "col": self.col}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    The shared resolver rules use to match calls like ``np.random.seed``
    without caring how deep the attribute chain is.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name(path: Path) -> str:
    """Dotted module name derived from ``__init__.py`` package nesting.

    Walks up from the file while the parent directory is a package, so
    ``src/repro/flows/cache.py`` resolves to ``repro.flows.cache`` no
    matter where the repository is checked out. Files outside any
    package resolve to their bare stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


def statement_spans(tree: ast.Module) -> Iterable[tuple[int, int]]:
    """``(start, end)`` logical-line ranges for every statement.

    A simple statement spans its whole node (a call broken over four
    lines is one logical line); a compound statement (def/class/if/...)
    spans its decorators plus the header up to — not including — the
    first body statement. A ``# repro: noqa`` anywhere in the range
    applies to the whole range, which is what lets a suppression on a
    decorator or a trailing argument line cover the finding reported on
    the statement's first line.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        decorators = getattr(node, "decorator_list", [])
        start = min([d.lineno for d in decorators] + [node.lineno])
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = node.end_lineno or node.lineno
        if end > start:
            yield start, end


def expand_noqa_map(literal: dict[int, frozenset[str] | None],
                    tree: ast.Module) -> dict[int, frozenset[str] | None]:
    """Spread per-line noqa entries across their logical lines."""
    effective: dict[int, frozenset[str] | None] = dict(literal)
    for start, end in statement_spans(tree):
        span = [n for n in range(start, end + 1) if n in literal]
        if not span:
            continue
        suppress_all = any(literal[n] is None for n in span)
        merged: frozenset[str] = frozenset().union(
            *(literal[n] or frozenset() for n in span))
        for line in range(start, end + 1):
            if suppress_all:
                effective[line] = None
            elif effective.get(line, frozenset()) is not None:
                effective[line] = merged | (effective.get(line) or frozenset())
    return effective


class FileContext:
    """Everything a rule may need about one source file."""

    def __init__(self, path: Path, display: str, source: str):
        self.path = path
        self.display = display
        self.source = source
        self.tree = ast.parse(source, filename=display)
        self.module = module_name(path)
        literal: dict[int, frozenset[str] | None] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            codes = match.group("codes")
            literal[lineno] = None if codes is None else frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip())
        self._noqa = expand_noqa_map(literal, self.tree)

    def module_is(self, *prefixes: str) -> bool:
        """Whether this file's module equals or lives under any prefix."""
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)

    def suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed on ``line`` by a noqa comment."""
        if line not in self._noqa:
            return False
        codes = self._noqa[line]
        return codes is None or code in codes


@dataclass
class LintResult:
    """Outcome of one lint run over a set of paths."""

    violations: list[Violation] = field(default_factory=list)
    #: ``(path, message)`` for files that could not be checked at all
    #: (unreadable, syntax error) — these fail the run independently.
    errors: list[tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0
    #: Of :attr:`files_checked`, how many were served from the parse
    #: cache without re-reading or re-parsing the source.
    files_from_cache: int = 0
    rule_codes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and not self.errors

    @property
    def exit_code(self) -> int:
        """0 clean; 1 violations; 2 engine errors (unparsable files)."""
        if self.errors:
            return 2
        return 1 if self.violations else 0

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "files_from_cache": self.files_from_cache,
            "rules": list(self.rule_codes),
            "violations": [v.to_dict() for v in self.violations],
            "errors": [{"path": p, "message": m} for p, m in self.errors],
        }


def collect_files(paths: Sequence[str | Path]) -> list[tuple[Path, str]]:
    """Expand files/directories into ``(path, display)`` pairs, sorted.

    Directories are walked recursively for ``*.py``; cache and VCS
    directories are skipped. A path that does not exist is returned with
    itself so the caller can report it as an error.
    """
    out: list[tuple[Path, str]] = []
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            for file in sorted(base.rglob("*.py")):
                if any(part in _SKIP_DIRS for part in file.parts):
                    continue
                out.append((file, file.as_posix()))
        else:
            out.append((base, base.as_posix()))
    return out


def lint_paths(paths: Sequence[str | Path],
               select: Iterable[str] | None = None,
               rules: Sequence[Rule] | None = None,
               cache: "LintCache | None" = None) -> LintResult:
    """Run the rule set over ``paths`` and return a :class:`LintResult`.

    ``select`` limits the run to specific codes (unknown codes raise
    :class:`~repro.errors.CheckError`); ``rules`` injects pre-built rule
    instances instead (tests). Violations on lines carrying a matching
    ``# repro: noqa[...]`` comment are dropped. With a ``cache``, files
    whose mtime+size match a prior run are served from their cached
    per-file findings and :class:`FileSummary` instead of being
    re-parsed; whole-program rules always run afresh over the assembled
    summaries — they are cheap once parsing is paid for.
    """
    # Imported lazily: the program package registers rules through
    # repro.checks.__init__, so a top-level import here would be circular.
    from .program.context import ProgramContext
    from .program.summary import FileSummary, summarize

    active = list(rules) if rules is not None else resolve_codes(select)
    file_rules = [r for r in active if r.scope == "file"]
    program_rules = [r for r in active if r.scope == "program"]
    file_codes = sorted(r.code for r in file_rules)
    need_summary = bool(program_rules) or cache is not None
    result = LintResult(rule_codes=[r.code for r in active])
    summaries: list[FileSummary] = []
    for path, display in collect_files(paths):
        try:
            stat = path.stat()
        except OSError as exc:
            result.errors.append((display, f"unreadable: {exc}"))
            continue
        entry = cache.lookup(display, stat, file_codes) if cache else None
        if entry is not None:
            result.files_checked += 1
            result.files_from_cache += 1
            result.violations.extend(
                Violation(**v) for v in entry["violations"])
            if program_rules:
                summaries.append(FileSummary.from_dict(entry["summary"]))
            continue
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            result.errors.append((display, f"unreadable: {exc}"))
            continue
        try:
            ctx = FileContext(path, display, source)
        except SyntaxError as exc:
            result.errors.append((display, f"syntax error: {exc.msg} "
                                           f"(line {exc.lineno})"))
            continue
        result.files_checked += 1
        file_violations = []
        for rule in file_rules:
            if not rule.applies(ctx):
                continue
            for violation in rule.check(ctx):
                if not ctx.suppressed(violation.line, violation.code):
                    file_violations.append(violation)
        result.violations.extend(file_violations)
        if need_summary:
            summary = summarize(ctx)
            if program_rules:
                summaries.append(summary)
            if cache is not None:
                cache.store(display, stat, file_codes, file_violations,
                            summary)
    if program_rules:
        program = ProgramContext(summaries)
        for rule in program_rules:
            for violation in rule.check_program(program):
                if not program.suppressed(violation.path, violation.line,
                                          violation.code):
                    result.violations.append(violation)
    if cache is not None:
        cache.save()
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return result
