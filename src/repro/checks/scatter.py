"""Scatter-discipline rule: RPR050 keeps serial scatters out of hot paths.

``np.add.at`` / ``np.maximum.at`` are the serial buffered ufunc scatters
the sparse core exists to replace: every call site converted to a
plan-backed ``Tensor.scatter_add`` / ``kernel("scatter_add")`` dispatch
got 2–4× faster and became backend-swappable for free. A raw call
reintroduced anywhere in the library silently re-serializes that path —
no test fails, the bench floors just erode. This rule flags raw ufunc
``.at`` scatters in library code outside :mod:`repro.sparse` (where the
numpy backend legitimately *is* the dense-scatter reference
implementation). Call sites where no ``SegmentPlan`` can exist (e.g.
generic fancy indexing) carry an audited ``# repro: noqa[RPR050]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext, Violation, dotted_name
from .registry import Rule, register

__all__: list[str] = []

#: Dotted call names that bypass the kernel registry.
_SERIAL_SCATTERS = {
    "np.add.at": "Tensor.scatter_add / kernel(\"scatter_add\") over a SegmentPlan",
    "numpy.add.at": "Tensor.scatter_add / kernel(\"scatter_add\") over a SegmentPlan",
    "np.maximum.at": "kernel(\"segment_max\") over a SegmentPlan",
    "numpy.maximum.at": "kernel(\"segment_max\") over a SegmentPlan",
}


@register
class RawUfuncScatter(Rule):
    code = "RPR050"
    name = "raw-ufunc-scatter"
    rationale = ("A raw np.add.at/np.maximum.at in library code bypasses the "
                 "repro.sparse kernel registry — serial again, invisible to "
                 "backend selection; dispatch through a plan-backed "
                 "scatter_add/segment_max instead.")

    def applies(self, ctx: FileContext) -> bool:
        # Library code only. repro.sparse hosts the numpy dense-scatter
        # reference backend; tests and benchmarks keep raw scatters as the
        # oracle the kernels are checked against.
        return ctx.module_is("repro") and not ctx.module_is("repro.sparse")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            called = dotted_name(node.func)
            if called in _SERIAL_SCATTERS:
                yield self.violation(
                    ctx, node,
                    f"raw {called} bypasses the sparse kernel registry; "
                    f"use {_SERIAL_SCATTERS[called]} (or add an audited "
                    f"'# repro: noqa[RPR050]' where no segment plan can exist)")
