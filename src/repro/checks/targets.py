"""Target-typing rule: RPR070 (public entry points take ExplainTarget).

The PR-9 target redesign made :class:`~repro.explain.target.ExplainTarget`
the one vocabulary for "what is being explained" — node ids, link
endpoints and graph indices all flow through it, and the bare-int /
``(u, v)``-tuple shapes survive only one release behind a
``DeprecationWarning``. This rule keeps the surface from regressing: a
public explain/eval/serve/sampling function whose ``target``/``targets``
parameter is untyped (or typed as a bare int) is a new entry point
quietly reintroducing the legacy shape, and fails lint instead of
review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext, Violation
from .registry import Rule, register

__all__: list[str] = []

#: Parameter names the rule considers target-carrying.
_TARGET_PARAMS = frozenset({"target", "targets"})


def _function_nodes(tree: ast.Module) -> Iterator[tuple[ast.AST, bool]]:
    """Yield ``(function_node, is_public)`` for module- and class-level defs.

    A method is public only when both it and its class avoid a leading
    underscore; nested (closure) functions are implementation detail and
    are not visited.
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, not node.name.startswith("_")
        elif isinstance(node, ast.ClassDef):
            public_cls = not node.name.startswith("_")
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, public_cls and not item.name.startswith("_")


@register
class UntypedExplainTargets(Rule):
    code = "RPR070"
    name = "untyped-explain-targets"
    rationale = ("Public explain/eval/serve/sampling entry points must "
                 "type their target/targets parameters as ExplainTarget: "
                 "an untyped target parameter is a new entry point "
                 "reintroducing the deprecated bare-int/tuple shapes.")

    _SCOPED = ("repro.explain", "repro.eval", "repro.serve", "repro.sampling")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_is(*self._SCOPED)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for fn, public in _function_nodes(ctx.tree):
            if not public:
                continue
            params = [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
            for arg in params:
                if arg.arg not in _TARGET_PARAMS:
                    continue
                annotation = ast.unparse(arg.annotation) \
                    if arg.annotation is not None else None
                if annotation is not None and "ExplainTarget" in annotation:
                    continue
                current = f"annotated {annotation!r}" if annotation else "unannotated"
                hint = "ExplainTarget.node(i) / ExplainTarget.link(u, v)" \
                    if arg.arg == "target" else "a sequence of ExplainTarget"
                yield self.violation(
                    ctx, arg,
                    f"public function {fn.name}(): parameter {arg.arg!r} is "
                    f"{current} — did you mean 'ExplainTarget | int | None'? "
                    f"Targets are {hint}")
