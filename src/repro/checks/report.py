"""Lint output: human one-line-per-finding text and the ``--json`` form.

:func:`run_lint` is the single entry point both the ``repro lint`` CLI
subcommand and tests call: it resolves the rule selection, lints, prints
to the given stream, and returns the process exit code (0 clean,
1 violations, 2 engine/usage errors).
"""

from __future__ import annotations

import json
import sys
from typing import Sequence, TextIO

from ..errors import CheckError
from .engine import lint_paths
from .registry import all_rules, resolve_codes

__all__ = ["run_lint", "format_rule_listing"]


def format_rule_listing() -> list[str]:
    """``code  name  rationale`` rows for every registered rule."""
    rows = []
    for rule in all_rules():
        rows.append(f"{rule.code}  {rule.name:<24} {rule.rationale}")
    return rows


def run_lint(paths: Sequence[str], *, select: Sequence[str] | None = None,
             json_output: bool = False, list_rules: bool = False,
             stream: TextIO | None = None) -> int:
    """Lint ``paths`` and print findings; returns the exit code."""
    out = stream if stream is not None else sys.stdout
    if list_rules:
        for row in format_rule_listing():
            print(row, file=out)
        return 0
    try:
        rules = resolve_codes(select)
    except CheckError as exc:
        if json_output:
            print(json.dumps({"error": str(exc)}), file=out)
        else:
            print(f"error: {exc}", file=out)
        return 2
    result = lint_paths(paths, rules=rules)
    if json_output:
        print(json.dumps(result.to_dict(), indent=2), file=out)
        return result.exit_code
    for violation in result.violations:
        print(violation.format(), file=out)
    for path, message in result.errors:
        print(f"{path}: error: {message}", file=out)
    n = len(result.violations)
    if result.clean:
        print(f"{result.files_checked} file(s) clean "
              f"({len(result.rule_codes)} rules)", file=out)
    else:
        print(f"{n} violation(s), {len(result.errors)} error(s) in "
              f"{result.files_checked} file(s)", file=out)
    return result.exit_code
