"""Lint output: text, ``--json``, and SARIF 2.1.0 forms.

:func:`run_lint` is the single entry point both the ``repro lint`` CLI
subcommand and tests call: it resolves the rule selection (optionally
narrowed to the per-file or whole-program scope), lints — through the
warm-run parse cache when given a ``cache_path`` — prints to the given
stream in the requested format, and returns the process exit code
(0 clean, 1 violations, 2 engine/usage errors).
"""

from __future__ import annotations

import json
import sys
from typing import Sequence, TextIO

from ..errors import CheckError
from .engine import lint_paths
from .registry import all_rules, resolve_codes

__all__ = ["run_lint", "format_rule_listing"]

_FORMATS = ("text", "json", "sarif")
_SCOPES = ("all", "file", "program")


def format_rule_listing() -> list[str]:
    """``code  name  rationale`` rows for every registered rule."""
    rows = []
    for rule in all_rules():
        rows.append(f"{rule.code}  {rule.name:<24} {rule.rationale}")
    return rows


def run_lint(paths: Sequence[str], *, select: Sequence[str] | None = None,
             json_output: bool = False, list_rules: bool = False,
             output_format: str | None = None, scope: str = "all",
             cache_path: str | None = None,
             stream: TextIO | None = None) -> int:
    """Lint ``paths`` and print findings; returns the exit code.

    ``json_output=True`` is the legacy spelling of
    ``output_format="json"``; ``scope`` narrows the run to per-file or
    whole-program rules (the CI job split); ``cache_path`` enables the
    mtime+size parse cache at that location.
    """
    out = stream if stream is not None else sys.stdout
    fmt = output_format or ("json" if json_output else "text")
    if list_rules:
        for row in format_rule_listing():
            print(row, file=out)
        return 0

    def usage_error(message: str) -> int:
        if fmt == "text":
            print(f"error: {message}", file=out)
        else:
            print(json.dumps({"error": message}), file=out)
        return 2

    if fmt not in _FORMATS:
        return usage_error(f"unknown format {fmt!r}; "
                           f"expected one of {', '.join(_FORMATS)}")
    if scope not in _SCOPES:
        return usage_error(f"unknown scope {scope!r}; "
                           f"expected one of {', '.join(_SCOPES)}")
    try:
        rules = resolve_codes(select)
    except CheckError as exc:
        return usage_error(str(exc))
    if scope != "all":
        rules = [r for r in rules if r.scope == scope]
    cache = None
    if cache_path is not None:
        from .cache import LintCache

        cache = LintCache(cache_path)
    result = lint_paths(paths, rules=rules, cache=cache)
    if fmt == "json":
        print(json.dumps(result.to_dict(), indent=2), file=out)
        return result.exit_code
    if fmt == "sarif":
        from .sarif import to_sarif

        print(json.dumps(to_sarif(result), indent=2), file=out)
        return result.exit_code
    for violation in result.violations:
        print(violation.format(), file=out)
    for path, message in result.errors:
        print(f"{path}: error: {message}", file=out)
    n = len(result.violations)
    cached = f", {result.files_from_cache} from cache" \
        if result.files_from_cache else ""
    if result.clean:
        print(f"{result.files_checked} file(s) clean "
              f"({len(result.rule_codes)} rules{cached})", file=out)
    else:
        print(f"{n} violation(s), {len(result.errors)} error(s) in "
              f"{result.files_checked} file(s){cached}", file=out)
    return result.exit_code
