"""SARIF 2.1.0 output for ``repro lint --format sarif``.

One static-analysis interchange document per run, built from a
:class:`~repro.checks.engine.LintResult`: the registered rules become
``tool.driver.rules`` (stable RPRxxx ids with their rationale), findings
become ``results`` with 1-based line/column regions, and files the
engine could not check (unreadable, syntax errors) become
``toolExecutionNotifications`` on the invocation so they surface in
code-scanning UIs instead of vanishing. CI uploads the document to
GitHub code scanning; the schema is the plain published 2.1.0 one, no
extensions.
"""

from __future__ import annotations

from typing import Any

from ..version import __version__
from .engine import LintResult
from .registry import all_rules

__all__ = ["to_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def to_sarif(result: LintResult) -> dict[str, Any]:
    """The SARIF 2.1.0 document for one lint run, as plain dicts."""
    rules = []
    rule_index: dict[str, int] = {}
    for rule in all_rules():
        rule_index[rule.code] = len(rules)
        rules.append({
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name.replace("-", " ")},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        })
    results = []
    for violation in result.violations:
        entry: dict[str, Any] = {
            "ruleId": violation.code,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path},
                    "region": {
                        "startLine": violation.line,
                        # SARIF columns are 1-based; the engine's are
                        # 0-based AST offsets.
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        }
        if violation.code in rule_index:
            entry["ruleIndex"] = rule_index[violation.code]
        results.append(entry)
    notifications = [{
        "level": "error",
        "message": {"text": message},
        "locations": [{
            "physicalLocation": {"artifactLocation": {"uri": path}},
        }],
    } for path, message in result.errors]
    return {
        "version": _SARIF_VERSION,
        "$schema": _SCHEMA_URI,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": __version__,
                    "rules": rules,
                },
            },
            "results": results,
            "invocations": [{
                "executionSuccessful": not result.errors,
                "toolExecutionNotifications": notifications,
            }],
        }],
    }
