"""Event-loop discipline: RPR060 keeps blocking calls out of serve coroutines.

The serving daemon's latency contract rests on a single-threaded event
loop: every coroutine that blocks — ``time.sleep``, a synchronous
subprocess, a blocking socket connect — stalls *every* connected client,
not just its own. The daemon's design routes all slow work through the
coalescer's executor thread, so a blocking call inside a coroutine in
:mod:`repro.serve` is always a bug. This rule flags them with
did-you-mean-async hints.

Scoping: only calls whose **nearest enclosing function is async** are
flagged. A synchronous helper nested inside (or dispatched from) a
coroutine legitimately blocks — it runs on the executor, which is the
whole point.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext, Violation, dotted_name
from .registry import Rule, register

__all__ = ["BLOCKING_CALLS", "BLOCKING_BARE"]

#: Blocking dotted calls -> the async replacement to suggest. Shared
#: with RPR130, which extends the same table transitively through the
#: call graph (repro.checks.program.dataflow).
BLOCKING_CALLS = {
    "time.sleep": "await asyncio.sleep(...)",
    "subprocess.run": "await asyncio.create_subprocess_exec(...)",
    "subprocess.call": "await asyncio.create_subprocess_exec(...)",
    "subprocess.check_call": "await asyncio.create_subprocess_exec(...)",
    "subprocess.check_output": "await asyncio.create_subprocess_exec(...)",
    "subprocess.Popen": "await asyncio.create_subprocess_exec(...)",
    "os.system": "await asyncio.create_subprocess_shell(...)",
    "os.waitpid": "await process.wait() on an asyncio subprocess",
    "socket.create_connection": "await asyncio.open_connection(...)",
    "select.select": "awaiting the stream/future on the event loop",
    "urllib.request.urlopen":
        "loop.run_in_executor(...) (or an asyncio HTTP client)",
    "requests.get": "loop.run_in_executor(...)",
    "requests.post": "loop.run_in_executor(...)",
}

#: Blocking bare-name calls (builtins) -> suggestion.
BLOCKING_BARE = {
    "open": "loop.run_in_executor(...) — file I/O belongs on the "
            "numerics thread, not the event loop",
    "input": "an out-of-band control channel; coroutines must not wait "
             "on the terminal",
}


def _calls_with_async_scope(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls whose nearest enclosing function is ``func`` itself.

    Nested ``def``/``lambda`` subtrees are skipped: their bodies run
    wherever they are *called* (typically the executor), so blocking
    there is legal. Nested ``async def``s are skipped here too — the
    rule's outer walk visits them as their own scope.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BlockingCallInCoroutine(Rule):
    code = "RPR060"
    name = "blocking-call-in-coroutine"
    rationale = ("A blocking call inside a repro.serve coroutine stalls the "
                 "event loop and every connected client with it; slow work "
                 "belongs on the coalescer's executor thread or behind the "
                 "asyncio equivalent.")

    def applies(self, ctx: FileContext) -> bool:
        # The daemon package only: everywhere else synchronous waits are
        # ordinary code, and test coroutines drive real sockets on purpose.
        return ctx.module_is("repro.serve")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, ast.AsyncFunctionDef):
                continue
            for call in _calls_with_async_scope(scope):
                called = dotted_name(call.func)
                if called in BLOCKING_CALLS:
                    yield self.violation(
                        ctx, call,
                        f"blocking {called}() inside coroutine "
                        f"{scope.name!r} stalls the event loop; use "
                        f"{BLOCKING_CALLS[called]}")
                elif called in BLOCKING_BARE:
                    yield self.violation(
                        ctx, call,
                        f"blocking {called}() inside coroutine "
                        f"{scope.name!r} stalls the event loop; use "
                        f"{BLOCKING_BARE[called]}")
