"""Warm-run parse cache for ``repro lint``.

Parsing ~250 files dominates a lint run; findings only change when a
file (or the checker itself) changes. The cache keys every linted file
on ``(mtime, size)`` plus a fingerprint of the :mod:`repro.checks`
package sources, and stores the per-file findings together with the
file's :class:`~repro.checks.program.summary.FileSummary` — so a warm
run re-parses only what changed while the whole-program rules still see
every module's imports, exports and call edges.

The cache lives in ``.repro_lint_cache.json`` (git-ignored) next to
wherever lint runs; ``repro lint --no-cache`` bypasses it. Corrupt or
stale-schema caches are discarded silently — the cache can only ever
cost a re-parse, never a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from .engine import Violation
    from .program.summary import FileSummary

__all__ = ["LintCache", "DEFAULT_CACHE_PATH", "checks_fingerprint"]

DEFAULT_CACHE_PATH = ".repro_lint_cache.json"

#: Bump when the entry layout changes shape.
_SCHEMA = 1


def checks_fingerprint() -> str:
    """Digest of the checker's own sources (name, mtime, size per file).

    Editing any rule or engine module invalidates every cached finding —
    the cheap, conservative stand-in for hashing rule semantics.
    """
    package_root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        try:
            stat = path.stat()
        except OSError:
            continue
        digest.update(f"{path.name}:{stat.st_mtime_ns}:{stat.st_size};"
                      .encode())
    return digest.hexdigest()[:16]


class LintCache:
    """mtime+size-keyed store of per-file findings and summaries."""

    def __init__(self, path: str | Path = DEFAULT_CACHE_PATH):
        self.path = Path(path)
        self._fingerprint = checks_fingerprint()
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) \
                or payload.get("schema") != _SCHEMA \
                or payload.get("fingerprint") != self._fingerprint:
            return
        entries = payload.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def lookup(self, display: str, stat: os.stat_result,
               rule_codes: list[str]) -> dict[str, Any] | None:
        """The cached entry for ``display``, if still valid."""
        entry = self._entries.get(display)
        if entry is None:
            return None
        if entry.get("mtime_ns") != stat.st_mtime_ns \
                or entry.get("size") != stat.st_size \
                or entry.get("rules") != rule_codes:
            return None
        return entry

    def store(self, display: str, stat: os.stat_result,
              rule_codes: list[str], violations: "list[Violation]",
              summary: "FileSummary") -> None:
        self._entries[display] = {
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "rules": list(rule_codes),
            "violations": [v.to_dict() for v in violations],
            "summary": summary.to_dict(),
        }
        self._dirty = True

    def save(self) -> None:
        """Persist atomically (write-rename); failures are non-fatal."""
        if not self._dirty:
            return
        payload = {"schema": _SCHEMA, "fingerprint": self._fingerprint,
                   "files": self._entries}
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            tmp.unlink(missing_ok=True)
        self._dirty = False
