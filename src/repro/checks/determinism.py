"""Determinism rules: RPR001 (global RNG), RPR002 (wall-clock seeds),
RPR003 (set-order-sensitive iteration in scoring code).

The reproduction's headline claims (fidelity curves, AUC, the runtime
table) are only comparable across machines and reruns if every random
draw flows from an explicit seed and no score depends on hash order.
These rules make the conventions in :mod:`repro.rng` machine-checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext, Violation, dotted_name
from .registry import Rule, register

__all__: list[str] = []

#: numpy.random attributes that construct *seeded, instance-local*
#: generators — everything else on the module touches process-global state.
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: stdlib ``random`` attributes that are instance constructors, not
#: module-global draws.
_STDLIB_RANDOM_OK = frozenset({"Random", "SystemRandom"})

#: Call targets that consume a seed (constructors and repro.rng helpers).
_SEED_SINKS = frozenset({
    "default_rng", "ensure_rng", "spawn_rngs", "seed", "RandomState",
    "Generator", "SeedSequence", "Random",
})

#: Dotted suffixes whose call result varies run to run.
_WALL_CLOCK_SUFFIXES = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "os.urandom", "os.getpid",
    "uuid.uuid1", "uuid.uuid4",
)

#: Expressions producing a set (hash-ordered, nondeterministic for str
#: keys under PYTHONHASHSEED) — iterating one directly is the hazard.
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


def _random_module_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the stdlib ``random`` module by imports."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases


@register
class GlobalRandomState(Rule):
    code = "RPR001"
    name = "global-random-state"
    rationale = ("Draws from module-global RNG state (np.random.*, "
                 "random.*) make results depend on call order across the "
                 "whole process; every draw must come from a seeded "
                 "Generator (repro.rng.ensure_rng).")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        random_aliases = _random_module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _STDLIB_RANDOM_OK:
                            yield self.violation(
                                ctx, node,
                                f"'from random import {alias.name}' binds a "
                                f"module-global RNG function; use a seeded "
                                f"Generator (repro.rng.ensure_rng)")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _NP_RANDOM_OK:
                            yield self.violation(
                                ctx, node,
                                f"'from numpy.random import {alias.name}' "
                                f"binds process-global RNG state; use "
                                f"np.random.default_rng")
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) >= 3 and parts[0] in ("np", "numpy") \
                    and parts[1] == "random" \
                    and parts[2] not in _NP_RANDOM_OK:
                yield self.violation(
                    ctx, node,
                    f"{dotted}() draws from numpy's process-global RNG "
                    f"state; pass a seeded np.random.Generator "
                    f"(repro.rng.ensure_rng)")
            elif len(parts) == 2 and parts[0] in random_aliases \
                    and parts[1] not in _STDLIB_RANDOM_OK:
                yield self.violation(
                    ctx, node,
                    f"{dotted}() draws from the stdlib's process-global "
                    f"RNG state; use random.Random(seed) or a numpy "
                    f"Generator")


@register
class WallClockSeed(Rule):
    code = "RPR002"
    name = "wall-clock-seed"
    rationale = ("A seed derived from the clock or the pid gives every "
                 "run a different stream — results can never be "
                 "reproduced from the logged config.")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or dotted.split(".")[-1] not in _SEED_SINKS:
                continue
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                for inner in ast.walk(arg):
                    if not isinstance(inner, ast.Call):
                        continue
                    inner_dotted = dotted_name(inner.func)
                    if inner_dotted is None:
                        continue
                    if any(inner_dotted == s or inner_dotted.endswith("." + s)
                           for s in _WALL_CLOCK_SUFFIXES):
                        yield self.violation(
                            ctx, inner,
                            f"seed derived from {inner_dotted}() is "
                            f"different on every run; thread an explicit "
                            f"integer seed instead")


@register
class SetOrderIteration(Rule):
    code = "RPR003"
    name = "set-order-iteration"
    rationale = ("Iterating a set feeds hash order — which varies with "
                 "PYTHONHASHSEED — into whatever consumes the loop; in "
                 "scoring code that silently changes flow scores between "
                 "runs. Sort (or otherwise order) the elements first.")

    #: Only scoring code is in scope: flow enumeration/aggregation and
    #: the explainers that rank them. Elsewhere set iteration is fine.
    _SCOPED = ("repro.flows", "repro.explain", "repro.core")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_is(*self._SCOPED)

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _SET_METHODS:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        iter_exprs: list[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                iter_exprs.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iter_exprs.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and node.args \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in ("list", "tuple", "enumerate"):
                iter_exprs.append(node.args[0])
        for expr in iter_exprs:
            if self._is_set_expr(expr):
                yield self.violation(
                    ctx, expr,
                    "iteration over a set feeds hash order into scoring "
                    "code; wrap in sorted(...) for a deterministic order")
