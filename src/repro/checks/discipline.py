"""Error-discipline rules: RPR010 (bare except), RPR011 (swallowed
exceptions), RPR012 (library raises outside the ReproError hierarchy).

The runner's fault-tolerance contract is that *every* failure is
captured with its type and traceback (``BatchResult.failures``, the job
journal); a bare ``except`` or an ``except Exception: pass`` anywhere in
the stack silently rewrites a crashed worker as a clean result. And the
public promise that ``except ReproError`` catches everything the library
raises only holds if no module reaches for a builtin exception instead.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from .engine import FileContext, Violation
from .registry import Rule, register

__all__: list[str] = []


def _repro_error_names() -> set[str]:
    """Names of the ReproError hierarchy, read from :mod:`repro.errors`.

    Imported lazily so the rule always reflects the current hierarchy —
    adding a subsystem error automatically whitelists it.
    """
    from .. import errors

    names = set()
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, errors.ReproError):
            names.add(name)
    return names


#: Builtin exception names (computed, so new Python versions stay covered).
_BUILTIN_EXCEPTIONS = frozenset(
    name for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
)

#: Builtins that are legitimate outside the hierarchy: abstract-method
#: and iterator protocol markers, interpreter control flow, and
#: assertion-style invariant checks.
_ALLOWED_BUILTINS = frozenset({
    "NotImplementedError", "StopIteration", "StopAsyncIteration",
    "GeneratorExit", "KeyboardInterrupt", "SystemExit", "AssertionError",
})


def _covers_everything(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches Exception/BaseException (or is bare)."""
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for cand in candidates:
        if isinstance(cand, ast.Name) and cand.id in ("Exception",
                                                      "BaseException"):
            return True
    return False


def _body_is_noop(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant) \
                and stmt.value.value is Ellipsis:
            continue
        return False
    return True


@register
class BareExcept(Rule):
    code = "RPR010"
    name = "bare-except"
    rationale = ("A bare `except:` also catches KeyboardInterrupt and "
                 "SystemExit, turning a cancelled run into a fake "
                 "success; name the exception type.")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    ctx, node,
                    "bare `except:` catches KeyboardInterrupt/SystemExit; "
                    "catch a named exception type")


@register
class SwallowedException(Rule):
    code = "RPR011"
    name = "swallowed-exception"
    rationale = ("`except Exception: pass` erases the failure entirely — "
                 "no record, no re-raise — masking worker crashes and "
                 "corrupting aggregated results.")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) \
                    and _covers_everything(node) \
                    and _body_is_noop(node.body):
                yield self.violation(
                    ctx, node,
                    "broad except with a pass body silently discards the "
                    "error; record it (e.g. BatchResult.failures) or "
                    "re-raise")


@register
class ForeignRaise(Rule):
    code = "RPR012"
    name = "foreign-raise"
    rationale = ("Library code must raise ReproError subclasses so "
                 "`except ReproError` catches everything the package "
                 "raises; a stray ValueError escapes that contract.")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_is("repro")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        hierarchy = sorted(_repro_error_names())
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name in _BUILTIN_EXCEPTIONS and name not in _ALLOWED_BUILTINS:
                yield self.violation(
                    ctx, node,
                    f"raise {name} from library code escapes the "
                    f"ReproError hierarchy; raise one of "
                    f"{', '.join(hierarchy)} (repro.errors)")
