"""Rule base class and the stable-code rule registry.

Every rule has a stable ``RPRxxx`` code (never reused, never renumbered)
so suppression comments and CI baselines stay meaningful across
releases. Rules register themselves at import time via :func:`register`;
:func:`resolve_codes` turns a user's ``--select`` list into rule
instances, raising :class:`~repro.errors.CheckError` on unknown codes.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator

from ..errors import CheckError

if TYPE_CHECKING:
    from .engine import FileContext, Violation
    from .program.context import ProgramContext

__all__ = ["Rule", "ProgramRule", "RULES", "register", "all_rules",
           "resolve_codes"]

_CODE_RE = re.compile(r"^RPR\d{3}$")

#: code -> rule class, populated by the :func:`register` decorator.
RULES: dict[str, type["Rule"]] = {}


class Rule:
    """One static check: a stable code, a rationale, and a tree walk.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies` lets a rule scope itself to parts of the tree (e.g.
    observability conformance only makes sense inside the ``repro``
    package — test suites open ad-hoc spans on purpose).
    """

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    #: One-sentence why — surfaced by ``repro lint --list-rules`` and DESIGN.md.
    rationale: ClassVar[str] = ""
    #: ``"file"`` rules see one :class:`FileContext` at a time;
    #: ``"program"`` rules (subclass :class:`ProgramRule`) see the whole
    #: tree at once through a ``ProgramContext``.
    scope: ClassVar[str] = "file"

    def applies(self, ctx: "FileContext") -> bool:
        """Whether this rule runs on ``ctx`` at all (default: every file)."""
        return True

    def check(self, ctx: "FileContext") -> Iterator["Violation"]:
        """Yield every violation of this rule in ``ctx.tree``."""
        raise NotImplementedError

    def violation(self, ctx: "FileContext", node: ast.AST,
                  message: str) -> "Violation":
        """Build a :class:`Violation` anchored at ``node``."""
        from .engine import Violation

        return Violation(code=self.code, message=message, path=ctx.display,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0))


class ProgramRule(Rule):
    """A rule that reasons across files instead of within one.

    The engine collects one :class:`~repro.checks.program.summary.FileSummary`
    per linted file, assembles them into a
    :class:`~repro.checks.program.context.ProgramContext` (symbol tables,
    import DAG, call graphs) and hands the whole thing to
    :meth:`check_program` exactly once per run. Per-line ``# repro:
    noqa[...]`` suppression applies to the reported locations the same
    way it does for per-file rules.
    """

    scope: ClassVar[str] = "program"

    def check(self, ctx: "FileContext") -> Iterator["Violation"]:
        raise CheckError(
            f"{self.code} is a whole-program rule; the engine must call "
            f"check_program(), not check()")

    def check_program(self, program: "ProgramContext") -> Iterator["Violation"]:
        """Yield every violation of this rule across ``program``."""
        raise NotImplementedError

    def program_violation(self, display: str, line: int, col: int,
                          message: str) -> "Violation":
        """Build a :class:`Violation` at an explicit location."""
        from .engine import Violation

        return Violation(code=self.code, message=message, path=display,
                         line=line, col=col)


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`RULES` (stable, unique code)."""
    if not _CODE_RE.match(cls.code):
        raise CheckError(f"rule code {cls.code!r} does not match RPRxxx")
    if cls.code in RULES:
        raise CheckError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def all_rules() -> list[Rule]:
    """Instantiate every registered rule, ordered by code."""
    return [RULES[code]() for code in sorted(RULES)]


def resolve_codes(select: Iterable[str] | None) -> list[Rule]:
    """Rules for a ``--select`` list (``None`` / empty means all).

    Raises :class:`~repro.errors.CheckError` naming each unknown code so
    a typo'd selection fails loudly instead of silently checking nothing.
    """
    if not select:
        return all_rules()
    codes = [c.strip().upper() for c in select if c.strip()]
    unknown = sorted(set(codes) - set(RULES))
    if unknown:
        raise CheckError(
            f"unknown rule code(s): {', '.join(unknown)}; "
            f"known codes: {', '.join(sorted(RULES))}")
    return [RULES[code]() for code in sorted(set(codes))]
