"""API-contract rules: RPR020 (keyword-only public surfaces) and RPR021
(no re-exploded ExecutionConfig flat kwargs).

The PR-3 API redesign made every public ``repro.explain`` /
``repro.eval`` entry point keyword-only past its core positionals and
funnelled all execution options through one ``ExecutionConfig``. These
rules stop the tree from regressing: a new public helper with optional
positional parameters, or a call site resurrecting ``jobs=4`` flat
kwargs, fails lint instead of review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext, Violation, dotted_name
from .registry import Rule, register

__all__: list[str] = []

#: Entry points that take an ``execution=ExecutionConfig(...)`` object.
_EXECUTION_ENTRY_POINTS = frozenset({
    "run_fidelity_experiment", "run_auc_experiment", "run_runtime_experiment",
})


def _legacy_execution_fields() -> frozenset[str]:
    """The flat kwargs the deprecation shim still accepts, read from the
    shim itself so the rule and runtime can never disagree."""
    from ..execution import _LEGACY_FIELDS

    return frozenset(_LEGACY_FIELDS)


def _public_names(tree: ast.Module) -> set[str] | None:
    """Names in a literal module ``__all__``, or ``None`` when undefined."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value,
                                                  (ast.List, ast.Tuple)):
                return {elt.value for elt in node.value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)}
    return None


@register
class PositionalDefaults(Rule):
    code = "RPR020"
    name = "positional-defaults"
    rationale = ("Optional parameters of public explain/eval entry points "
                 "must be keyword-only: positional optionals freeze "
                 "parameter order into every call site, which is exactly "
                 "what the PR-3 keyword-only redesign removed.")

    _SCOPED = ("repro.explain", "repro.eval")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_is(*self._SCOPED)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        exported = _public_names(ctx.tree)
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            public = node.name in exported if exported is not None \
                else not node.name.startswith("_")
            if not public:
                continue
            positional = [*node.args.posonlyargs, *node.args.args]
            defaulted = positional[len(positional) - len(node.args.defaults):]
            if defaulted:
                names = ", ".join(a.arg for a in defaulted)
                yield self.violation(
                    ctx, node,
                    f"public function {node.name}(): optional "
                    f"parameter(s) {names} must be keyword-only — move "
                    f"them behind `*`")


@register
class FlatExecutionKwargs(Rule):
    code = "RPR021"
    name = "flat-execution-kwargs"
    rationale = ("Passing jobs=/resume=/batched=/... directly to the "
                 "experiment drivers re-explodes ExecutionConfig into "
                 "flat kwargs; that shape only exists in the deprecation "
                 "shim and dies with it.")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        legacy = _legacy_execution_fields()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None \
                    or dotted.split(".")[-1] not in _EXECUTION_ENTRY_POINTS:
                continue
            flat = sorted(kw.arg for kw in node.keywords
                          if kw.arg is not None and kw.arg in legacy)
            if flat:
                yield self.violation(
                    ctx, node,
                    f"{dotted.split('.')[-1]}() called with deprecated "
                    f"flat execution kwarg(s) {', '.join(flat)}; pass "
                    f"execution=ExecutionConfig(...)")
