"""Dataflow rule: RPR130 — transitive blocking-call reachability.

RPR060 catches ``time.sleep`` written directly inside a serve
coroutine; it is blind to the same call one helper away. This rule
closes the gap: starting from every ``async def`` in :mod:`repro.serve`,
it follows direct calls into *synchronous* functions — across modules,
through the program's import bindings and ``self.``-method dispatch —
and flags any chain that reaches a blocking call, printing the chain so
the fix site is obvious.

What does **not** create an edge, by construction: a function passed as
a value (``loop.run_in_executor(None, fn)``, ``functools.partial``)
is never *called* at the reference site, so executor dispatch — the
sanctioned way to run slow work — cannot trip the rule. Chains through
``async`` callees are also not followed: an awaited coroutine is its
own RPR130 root, so every blocking chain is reported exactly once, at
its entry from async into sync code.

Bare ``open``/``input`` are flagged only as *direct* calls (RPR060's
job): one transitive hop away they are overwhelmingly startup/config
reads on the executor path, and the dotted table (sleep, subprocess,
sockets) is where the latency bodies are buried.
"""

from __future__ import annotations

from typing import Iterator

from ..blocking import BLOCKING_CALLS
from ..registry import ProgramRule, register
from .context import ProgramContext
from .summary import CallRecord, FunctionSummary

__all__ = ["TransitiveBlockingCall"]

#: Hop budget for call-graph traversal; deep chains past this are
#: architecture problems before they are lint problems.
_MAX_DEPTH = 10


@register
class TransitiveBlockingCall(ProgramRule):
    code = "RPR130"
    name = "transitive-blocking-call"
    rationale = ("A blocking call one helper away stalls the serve event "
                 "loop exactly as badly as one written inline; the rule "
                 "follows the call graph from every serve coroutine so "
                 "the sync-dispatch boundary, not the coroutine body, is "
                 "the checked contract.")

    _ROOT_PREFIX = "repro.serve"

    def _blocking_in(self, fn: FunctionSummary) -> CallRecord | None:
        for call in fn.calls:
            if call.callee in BLOCKING_CALLS:
                return call
        return None

    def check_program(self, program: ProgramContext) -> Iterator:
        # (module, qualname) -> (blocking chain, blocking call) | None,
        # memoized across roots; None means "no blocking reachable".
        memo: dict[tuple[str, str],
                   tuple[list[str], CallRecord] | None] = {}

        def chain_from(module: str, fn: FunctionSummary, depth: int,
                       visiting: set[tuple[str, str]]) \
                -> tuple[list[str], CallRecord] | None:
            key = (module, fn.qualname)
            if key in memo:
                return memo[key]
            if key in visiting or depth > _MAX_DEPTH:
                return None
            visiting.add(key)
            found: tuple[list[str], CallRecord] | None = None
            direct = self._blocking_in(fn)
            if direct is not None:
                found = ([f"{fn.qualname} ({module})"], direct)
            else:
                for call in fn.calls:
                    resolved = program.resolve_call(module, fn, call.callee)
                    if resolved is None:
                        continue
                    callee_module, callee_fn = resolved
                    if callee_fn.is_async:
                        continue
                    deeper = chain_from(callee_module, callee_fn,
                                        depth + 1, visiting)
                    if deeper is not None:
                        found = ([f"{fn.qualname} ({module})"] + deeper[0],
                                 deeper[1])
                        break
            visiting.discard(key)
            memo[key] = found
            return found

        for summary in program.iter_modules():
            if not (summary.module == self._ROOT_PREFIX or
                    summary.module.startswith(self._ROOT_PREFIX + ".")):
                continue
            for fn in summary.functions:
                if not fn.is_async:
                    continue
                for call in fn.calls:
                    resolved = program.resolve_call(summary.module, fn,
                                                    call.callee)
                    if resolved is None:
                        continue
                    callee_module, callee_fn = resolved
                    if callee_fn.is_async:
                        continue
                    chain = chain_from(callee_module, callee_fn, 1, set())
                    if chain is None:
                        continue
                    hops, blocking = chain
                    path = " -> ".join([f"{fn.qualname} (coroutine)"] + hops)
                    yield self.program_violation(
                        summary.display, call.lineno, call.col,
                        f"blocking {blocking.callee}() reachable from "
                        f"coroutine {fn.qualname!r} via {path}; move the "
                        f"chain onto the coalescer's executor or make "
                        f"the boundary async")
