"""Per-file module digests — the unit of whole-program analysis.

A :class:`FileSummary` is everything the cross-file rules need to know
about one module, extracted from its AST exactly once: resolved import
records, top-level bindings, the literal ``__all__``, per-function call
lists, ``register_kernel`` registrations and ``DeprecationWarning``
sites with their ``# repro: sunset[X.Y]`` markers. Summaries are plain
JSON-serializable data — no AST nodes — which is what lets the warm-run
parse cache (:mod:`repro.checks.cache`) persist them: a cached file
contributes to the import DAG and call graph without ever being re-read.
"""

from __future__ import annotations

import ast
import re
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:
    from ..engine import FileContext

__all__ = ["CallRecord", "FunctionSummary", "FileSummary", "summarize"]

#: Machine-readable deprecation sunset: ``# repro: sunset[2.0]``.
_SUNSET_RE = re.compile(r"#\s*repro:\s*sunset\[(?P<version>[^\]]*)\]")


@dataclass
class ImportRecord:
    """One import statement alias, with its target resolved to an
    absolute dotted module path (relative levels already applied)."""

    kind: str                 # "import" | "from"
    target: str               # absolute dotted module ("" if unresolvable)
    #: ``(imported name, local binding)`` pairs. For ``kind="import"``
    #: the imported name is the full module path and the binding is the
    #: asname (or the root package when there is none). For
    #: ``kind="from"`` the name may be ``"*"``.
    names: list[list[str]]
    lineno: int
    col: int
    toplevel: bool            # module scope (not nested in a function)
    type_checking: bool       # inside an `if TYPE_CHECKING:` block


@dataclass
class CallRecord:
    """One call whose nearest enclosing function is the summarized one."""

    callee: str               # dotted name ("" when not a Name/Attribute chain)
    lineno: int
    col: int


@dataclass
class FunctionSummary:
    """One function or method: signature shape plus its direct calls."""

    name: str
    qualname: str             # "f", "Cls.f", or "outer.<locals>.f"
    is_async: bool
    lineno: int
    params: list[str]         # positional parameters, in order
    calls: list[CallRecord] = field(default_factory=list)


@dataclass
class RegisterCall:
    """A ``register_kernel(op, backend, fn)`` call with literal args."""

    op: str | None
    backend: str | None
    fn: str | None            # bare name of the implementation, if a Name
    lineno: int
    col: int


@dataclass
class WarnSite:
    """A ``warnings.warn(...)`` call and its sunset marker, if any."""

    lineno: int
    col: int
    category: str | None      # dotted name of the category argument
    sunset: str | None        # the X.Y inside `# repro: sunset[X.Y]`


@dataclass
class FileSummary:
    """The JSON-serializable digest of one linted file."""

    module: str
    display: str
    path: str
    is_package: bool
    #: name -> "func" | "class" | "const" for top-level definitions.
    defs: dict[str, str]
    #: name -> string value, for top-level ``NAME = "literal"`` assigns.
    consts: dict[str, str]
    #: The literal ``__all__`` (None when undefined).
    dunder_all: list[str] | None
    all_lineno: int | None
    #: True when ``__all__`` exists but is not one literal list/tuple.
    all_dynamic: bool
    imports: list[ImportRecord]
    functions: list[FunctionSummary]
    register_calls: list[RegisterCall]
    warns: list[WarnSite]
    #: Dotted attribute chains whose root is an import binding.
    attr_uses: list[str]
    #: Effective noqa map (logical lines already expanded); None = all.
    noqa: dict[int, list[str] | None]

    def suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is noqa-suppressed at ``line``."""
        if line not in self.noqa:
            return False
        codes = self.noqa[line]
        return codes is None or code in codes

    def bound_names(self) -> set[str]:
        """Every name bound at module top level (defs + import bindings)."""
        bound = set(self.defs) | set(self.consts)
        for record in self.imports:
            if not record.toplevel:
                continue
            for name, binding in record.names:
                if name != "*":
                    bound.add(binding)
        return bound

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        # JSON object keys are strings; widen back in from_dict.
        payload["noqa"] = {str(k): v for k, v in self.noqa.items()}
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FileSummary":
        return cls(
            module=payload["module"],
            display=payload["display"],
            path=payload["path"],
            is_package=payload["is_package"],
            defs=dict(payload["defs"]),
            consts=dict(payload["consts"]),
            dunder_all=payload["dunder_all"],
            all_lineno=payload["all_lineno"],
            all_dynamic=payload["all_dynamic"],
            imports=[ImportRecord(**{**r, "names": [list(p) for p in r["names"]]})
                     for r in payload["imports"]],
            functions=[FunctionSummary(
                **{**f, "calls": [CallRecord(**c) for c in f["calls"]]})
                for f in payload["functions"]],
            register_calls=[RegisterCall(**r)
                            for r in payload["register_calls"]],
            warns=[WarnSite(**w) for w in payload["warns"]],
            attr_uses=list(payload["attr_uses"]),
            noqa={int(k): (None if v is None else list(v))
                  for k, v in payload["noqa"].items()},
        )


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: str | None) -> str:
    """Absolute dotted path for a level-``level`` relative import."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return ""
    base = parts[:len(parts) - drop] if drop else parts
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _is_type_checking_test(test: ast.expr) -> bool:
    """Whether an ``if`` test is the TYPE_CHECKING guard."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _direct_calls(func: ast.FunctionDef | ast.AsyncFunctionDef) \
        -> Iterator[ast.Call]:
    """Calls whose nearest enclosing function is ``func`` itself —
    nested defs and lambdas run where they are *called*, so their bodies
    belong to their own summaries."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _sunset_for(lines: list[str], start: int, end: int) -> str | None:
    """The first sunset marker on the statement's physical lines."""
    for lineno in range(start, min(end, len(lines)) + 1):
        match = _SUNSET_RE.search(lines[lineno - 1])
        if match is not None:
            return match.group("version")
    return None


def summarize(ctx: "FileContext") -> FileSummary:
    """Extract a :class:`FileSummary` from a parsed :class:`FileContext`."""
    module = ctx.module
    is_package = ctx.path.name == "__init__.py"
    source_lines = ctx.source.splitlines()

    defs: dict[str, str] = {}
    consts: dict[str, str] = {}
    dunder_all: list[str] | None = None
    all_lineno: int | None = None
    all_dynamic = False
    imports: list[ImportRecord] = []
    functions: list[FunctionSummary] = []
    register_calls: list[RegisterCall] = []
    warns: list[WarnSite] = []
    attr_uses: set[str] = set()

    def record_import(node: ast.Import | ast.ImportFrom, toplevel: bool,
                      type_checking: bool) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                binding = alias.asname or alias.name.split(".")[0]
                imports.append(ImportRecord(
                    kind="import", target=alias.name,
                    names=[[alias.name, binding]],
                    lineno=node.lineno, col=node.col_offset,
                    toplevel=toplevel, type_checking=type_checking))
        else:
            target = _resolve_relative(module, is_package, node.level,
                                       node.module)
            names = [[alias.name, alias.asname or alias.name]
                     for alias in node.names]
            imports.append(ImportRecord(
                kind="from", target=target, names=names,
                lineno=node.lineno, col=node.col_offset,
                toplevel=toplevel, type_checking=type_checking))

    def collect_function(node: ast.FunctionDef | ast.AsyncFunctionDef,
                         qualprefix: str) -> None:
        qualname = f"{qualprefix}{node.name}" if qualprefix else node.name
        params = [a.arg for a in (*node.args.posonlyargs, *node.args.args)]
        calls = [CallRecord(callee=_dotted(call.func) or "",
                            lineno=call.lineno, col=call.col_offset)
                 for call in _direct_calls(node)]
        calls.sort(key=lambda c: (c.lineno, c.col))
        functions.append(FunctionSummary(
            name=node.name, qualname=qualname,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            lineno=node.lineno, params=params, calls=calls))
        # Nested defs get their own (unresolvable-by-name) records so
        # async defs hiding inside factories still serve as roots.
        walk_scope(node.body, toplevel=False, type_checking=False,
                   qualprefix=f"{qualname}.<locals>.")

    def walk_scope(body: list[ast.stmt], toplevel: bool, type_checking: bool,
                   qualprefix: str) -> None:
        nonlocal dunder_all, all_lineno, all_dynamic
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                record_import(node, toplevel, type_checking)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if toplevel:
                    defs[node.name] = "func"
                collect_function(node, qualprefix)
            elif isinstance(node, ast.ClassDef):
                if toplevel:
                    defs[node.name] = "class"
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        collect_function(
                            item, f"{qualprefix}{node.name}.")
            elif isinstance(node, ast.If):
                guarded = type_checking or _is_type_checking_test(node.test)
                walk_scope(node.body, toplevel, guarded, qualprefix)
                walk_scope(node.orelse, toplevel, type_checking, qualprefix)
            elif isinstance(node, ast.Try):
                walk_scope(node.body, toplevel, type_checking, qualprefix)
                for handler in node.handlers:
                    walk_scope(handler.body, toplevel, type_checking,
                               qualprefix)
                walk_scope(node.orelse, toplevel, type_checking, qualprefix)
                walk_scope(node.finalbody, toplevel, type_checking, qualprefix)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                walk_scope(node.body, toplevel, type_checking, qualprefix)
            elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                walk_scope(node.body, False, type_checking, qualprefix)
                walk_scope(node.orelse, False, type_checking, qualprefix)
            elif toplevel and isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__all__":
                        all_lineno = node.lineno
                        if isinstance(node.value, (ast.List, ast.Tuple)) and \
                                all(isinstance(e, ast.Constant)
                                    and isinstance(e.value, str)
                                    for e in node.value.elts):
                            dunder_all = [e.value  # type: ignore[misc]
                                          for e in node.value.elts]
                        else:
                            all_dynamic = True
                        continue
                    defs.setdefault(target.id, "const")
                    if isinstance(node.value, ast.Constant) and \
                            isinstance(node.value.value, str):
                        consts[target.id] = node.value.value
            elif toplevel and isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    defs.setdefault(node.target.id, "const")
            elif toplevel and isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name) and \
                        node.target.id == "__all__":
                    all_dynamic = True

    walk_scope(ctx.tree.body, toplevel=True, type_checking=False,
               qualprefix="")

    # Whole-tree sweeps that do not care about scope nesting.
    import_bindings = {binding for record in imports
                       for _, binding in record.names}
    stmt_end: dict[int, int] = {}
    for stmt in ast.walk(ctx.tree):
        if isinstance(stmt, ast.stmt):
            stmt_end.setdefault(stmt.lineno, stmt.end_lineno or stmt.lineno)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted and dotted.split(".")[0] in import_bindings:
                attr_uses.add(dotted)
        elif isinstance(node, ast.Call):
            callee = _dotted(node.func)
            if callee is not None and \
                    callee.split(".")[-1] == "register_kernel":
                args: list[str | None] = []
                for arg in node.args[:3]:
                    if isinstance(arg, ast.Constant) and \
                            isinstance(arg.value, str):
                        args.append(arg.value)
                    elif isinstance(arg, ast.Name):
                        args.append(arg.id)
                    else:
                        args.append(None)
                args.extend([None] * (3 - len(args)))
                register_calls.append(RegisterCall(
                    op=args[0], backend=args[1], fn=args[2],
                    lineno=node.lineno, col=node.col_offset))
            elif callee in ("warnings.warn", "warn"):
                category: str | None = None
                if len(node.args) >= 2:
                    category = _dotted(node.args[1])
                for keyword in node.keywords:
                    if keyword.arg == "category":
                        category = _dotted(keyword.value)
                end = stmt_end.get(node.lineno, node.end_lineno or node.lineno)
                warns.append(WarnSite(
                    lineno=node.lineno, col=node.col_offset,
                    category=category,
                    sunset=_sunset_for(source_lines, node.lineno, end)))

    register_calls.sort(key=lambda r: (r.lineno, r.col))
    warns.sort(key=lambda w: (w.lineno, w.col))
    noqa = {line: (None if codes is None else sorted(codes))
            for line, codes in ctx._noqa.items()}
    return FileSummary(
        module=module, display=ctx.display, path=str(ctx.path),
        is_package=is_package, defs=defs, consts=consts,
        dunder_all=dunder_all, all_lineno=all_lineno,
        all_dynamic=all_dynamic, imports=imports, functions=functions,
        register_calls=register_calls, warns=warns,
        attr_uses=sorted(attr_uses), noqa=noqa)
