"""Architecture rules: RPR100 (import cycles) and RPR101 (layering).

The execution substrate grew to a dozen subpackages; what keeps it
refactorable is that the dependency structure stays a DAG with a
declared direction. These rules pin both facts:

* **RPR100** — the eager (module-scope, non-``TYPE_CHECKING``) import
  graph must be acyclic at module granularity. A cycle is reported once,
  with the shortest path through it, anchored at the lexicographically
  first module's offending import.
* **RPR101** — the declared layering contract. Each named subpackage is
  assigned a layer; an eager import from a lower layer into a strictly
  higher one is a violation naming the offending edge and both layers.
  Function-level (lazy) imports are exempt by design: deferring an
  import to call time is the sanctioned escape hatch for upward
  references (the CLI booting the daemon, ``repro.nn`` reaching eval
  helpers), because it cannot deadlock package initialization and costs
  nothing at import time.

The contract (see DESIGN.md §14 for the per-edge rationale)::

    errors/rng/version            < sparse/obs/execution
    < graph/datasets              < autograd/nn
    < flows                       < core/explain/analysis
    < eval/sampling/viz           < runner/serve/checks/cli

``repro.core`` (the paper's algorithm) sits with ``explain``, not at the
bottom: Revelio *is* an Explainer over trained models, so the compute
floor of the tree is ``repro.sparse``, not ``repro.core``.
"""

from __future__ import annotations

from typing import Iterator

from ..registry import ProgramRule, register
from .context import ImportEdge, ProgramContext

__all__ = ["ImportCycle", "LayeringContract", "LAYERS", "layer_of"]

#: The declared layering contract: ordered low → high. A module belongs
#: to the layer of its longest matching prefix; unlisted modules are
#: unconstrained (new subpackages opt in by being added here).
LAYERS: tuple[tuple[str, frozenset[str]], ...] = (
    ("foundation", frozenset({"repro.errors", "repro.version", "repro.rng"})),
    ("substrate", frozenset({"repro.sparse", "repro.obs",
                             "repro.execution"})),
    ("data", frozenset({"repro.graph", "repro.datasets"})),
    ("models", frozenset({"repro.autograd", "repro.nn"})),
    ("flows", frozenset({"repro.flows"})),
    ("explain", frozenset({"repro.core", "repro.explain",
                           "repro.analysis"})),
    ("evaluation", frozenset({"repro.eval", "repro.sampling", "repro.viz"})),
    ("orchestration", frozenset({"repro.runner", "repro.serve",
                                 "repro.checks", "repro.cli",
                                 "repro.instrumentation", "repro.__main__",
                                 "repro"})),
)


def layer_of(module: str) -> tuple[int, str] | None:
    """``(index, name)`` of the layer owning ``module``, longest prefix
    wins; ``None`` for modules outside the contract."""
    best: tuple[int, str] | None = None
    best_len = -1
    for index, (name, prefixes) in enumerate(LAYERS):
        for prefix in prefixes:
            if module == prefix or module.startswith(prefix + "."):
                if len(prefix) > best_len:
                    best, best_len = (index, name), len(prefix)
    return best


def _shortest_cycle(graph: dict[str, list[ImportEdge]],
                    start: str) -> list[str] | None:
    """Shortest eager-import cycle through ``start`` (BFS), as the node
    list ``[start, ..., start]``."""
    parents: dict[str, str] = {}
    frontier = [start]
    visited = {start}
    while frontier:
        next_frontier: list[str] = []
        for node in frontier:
            for edge in graph.get(node, ()):
                target = edge.target
                if target == start:
                    path = [node]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path + [start]
                if target not in visited:
                    visited.add(target)
                    parents[target] = node
                    next_frontier.append(target)
        frontier = next_frontier
    return None


@register
class ImportCycle(ProgramRule):
    code = "RPR100"
    name = "import-cycle"
    rationale = ("An eager import cycle makes module initialization "
                 "order-dependent: whichever module happens to be "
                 "imported first sees a half-initialized partner. Break "
                 "the cycle or defer one edge to function scope.")

    def check_program(self, program: ProgramContext) -> Iterator:
        graph = program.eager_graph()
        # Iterative Tarjan SCC over the eager graph.
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_index = work.pop()
                if edge_index == 0:
                    index_of[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                edges = graph.get(node, [])
                for position in range(edge_index, len(edges)):
                    target = edges[position].target
                    if target not in index_of:
                        work.append((node, position + 1))
                        work.append((target, 0))
                        recurse = True
                        break
                    if target in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[target])
                if recurse:
                    continue
                if lowlink[node] == index_of[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for node in sorted(graph):
            if node not in index_of:
                strongconnect(node)

        for component in sorted(components):
            anchor = component[0]
            cycle = _shortest_cycle(
                {n: graph.get(n, []) for n in component}, anchor)
            path = " -> ".join(cycle) if cycle else " <-> ".join(component)
            summary = program.modules[anchor]
            edge = next((e for e in graph.get(anchor, ())
                         if e.target in component), None)
            yield self.program_violation(
                summary.display,
                edge.lineno if edge else 1, edge.col if edge else 0,
                f"eager import cycle among {len(component)} module(s): "
                f"{path}; defer one edge to function scope or invert it")


@register
class LayeringContract(ProgramRule):
    code = "RPR101"
    name = "layering-contract"
    rationale = ("The declared layer order (foundation < substrate < data "
                 "< models < flows < explain < evaluation < orchestration) "
                 "is what keeps the substrate swappable under the "
                 "numerics; an eager upward import couples a lower layer "
                 "to its callers. Lazy (function-scope) imports are the "
                 "sanctioned escape hatch.")

    def check_program(self, program: ProgramContext) -> Iterator:
        for edge in program.import_edges():
            if not edge.eager:
                continue
            source_layer = layer_of(edge.source)
            target_layer = layer_of(edge.target)
            if source_layer is None or target_layer is None:
                continue
            if target_layer[0] <= source_layer[0]:
                continue
            summary = program.modules[edge.source]
            yield self.program_violation(
                summary.display, edge.lineno, edge.col,
                f"layering violation: {edge.source} (layer "
                f"'{source_layer[1]}') eagerly imports {edge.target} "
                f"(higher layer '{target_layer[1]}'); invert the "
                f"dependency or defer the import to function scope")
