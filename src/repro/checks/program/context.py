"""The whole-program view: module tables, the import DAG, call graphs.

A :class:`ProgramContext` is assembled once per lint run from the
:class:`~repro.checks.program.summary.FileSummary` of every linted file
and handed to each :class:`~repro.checks.registry.ProgramRule`. It owns
the cross-file machinery the rules share:

* module lookup and the resolved import edge list (eager vs. lazy vs.
  ``TYPE_CHECKING`` edges are distinguished — architecture rules reason
  about *eager* edges only, because a function-level import is the
  sanctioned way to break a layering inversion);
* export-usage accounting for the API-surface rules (who imports, star
  imports, and attribute access through module aliases);
* per-module binding maps and function tables for the dataflow rules;
* the project version (read from the nearest ``pyproject.toml``) for
  deprecation-sunset enforcement.

Everything here is derived data over plain summaries, so a context can
be built from cached summaries without touching the source tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from .summary import FileSummary, FunctionSummary

__all__ = ["ImportEdge", "ProgramContext", "parse_version"]

_VERSION_RE = re.compile(r'^\s*version\s*=\s*["\']([^"\']+)["\']', re.M)


@dataclass(frozen=True)
class ImportEdge:
    """One resolved import from a linted module to another."""

    source: str          # importing module
    target: str          # imported module (always a key of .modules)
    lineno: int
    col: int
    toplevel: bool
    type_checking: bool

    @property
    def eager(self) -> bool:
        """Whether this import executes when ``source`` is imported."""
        return self.toplevel and not self.type_checking


def parse_version(text: str) -> tuple[int, ...] | None:
    """``(1, 2, 3)`` for ``"1.2.3"``-shaped strings, else ``None``."""
    parts = text.strip().split(".")
    try:
        return tuple(int(p) for p in parts)
    except ValueError:
        return None


class ProgramContext:
    """Symbol tables and graphs over every summarized module."""

    def __init__(self, summaries: Iterable[FileSummary]):
        #: module name -> summary (later files win on collisions, which
        #: only happen when two roots shadow the same dotted path).
        self.modules: dict[str, FileSummary] = {}
        self._by_display: dict[str, FileSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
            self._by_display[summary.display] = summary
        self._edges: list[ImportEdge] | None = None
        self._version: tuple[int, ...] | None = None
        self._version_resolved = False

    # ------------------------------------------------------------------
    # suppression
    # ------------------------------------------------------------------
    def suppressed(self, display: str, line: int, code: str) -> bool:
        summary = self._by_display.get(display)
        return summary is not None and summary.suppressed(line, code)

    # ------------------------------------------------------------------
    # module / package structure
    # ------------------------------------------------------------------
    def has_root_package(self) -> bool:
        """Whether a top-level package ``__init__`` is in the program —
        the completeness signal usage-absence rules gate on: without the
        tree's root the program is a slice, and "nobody imports X" would
        be an artifact of the slice, not a fact about the tree."""
        return any("." not in s.module and s.is_package
                   for s in self.modules.values())

    def resolve_import_target(self, kind: str, target: str,
                              name: str | None = None) -> str | None:
        """The program module an import record actually lands on.

        ``from pkg import name`` imports the submodule ``pkg.name`` when
        one exists, otherwise an attribute of ``pkg``; plain ``import
        a.b`` lands on ``a.b`` (falling back to the deepest known
        prefix).
        """
        if kind == "from" and name and name != "*":
            submodule = f"{target}.{name}"
            if submodule in self.modules:
                return submodule
        if target in self.modules:
            return target
        parts = target.split(".")
        while parts:
            parts.pop()
            prefix = ".".join(parts)
            if prefix in self.modules:
                return prefix
        return None

    # ------------------------------------------------------------------
    # the import DAG
    # ------------------------------------------------------------------
    def import_edges(self) -> list[ImportEdge]:
        """Every resolved module→module import edge, deterministic order."""
        if self._edges is not None:
            return self._edges
        edges: list[ImportEdge] = []
        for module in sorted(self.modules):
            summary = self.modules[module]
            for record in summary.imports:
                targets: set[str] = set()
                if record.kind == "import":
                    resolved = self.resolve_import_target("import",
                                                          record.target)
                    if resolved is not None:
                        targets.add(resolved)
                else:
                    for name, _ in record.names:
                        resolved = self.resolve_import_target(
                            "from", record.target, name)
                        if resolved is not None:
                            targets.add(resolved)
                for target in sorted(targets):
                    if target == module:
                        continue
                    edges.append(ImportEdge(
                        source=module, target=target,
                        lineno=record.lineno, col=record.col,
                        toplevel=record.toplevel,
                        type_checking=record.type_checking))
        self._edges = edges
        return edges

    def eager_graph(self) -> dict[str, list[ImportEdge]]:
        """module -> eager import edges out of it (deduped per target,
        keeping the first — lowest-line — edge)."""
        graph: dict[str, list[ImportEdge]] = {m: [] for m in self.modules}
        seen: set[tuple[str, str]] = set()
        for edge in self.import_edges():
            if not edge.eager:
                continue
            key = (edge.source, edge.target)
            if key in seen:
                continue
            seen.add(key)
            graph[edge.source].append(edge)
        return graph

    # ------------------------------------------------------------------
    # export usage (API-surface rules)
    # ------------------------------------------------------------------
    def export_uses(self) -> set[tuple[str, str]]:
        """``(module, name)`` pairs referenced anywhere in the program.

        A pair is used when some file ``from module import name``s it,
        star-imports the module (every ``__all__`` name counts), reaches
        it as an attribute through a module alias (``alias.name``), or
        imports the submodule it names by any spelling (``import
        pkg.sub`` credits ``(pkg, "sub")`` and every ancestor pair). The
        defining module's own references do not count — an export exists
        for external consumers.

        Usage propagates across re-export aliases: ``from D import N``
        in a façade module ``M`` makes ``(M, N)`` and ``(D, N)`` names
        for the same symbol, so consuming either spelling credits both —
        an ``__all__`` entry is dead only when the symbol is unreachable
        through *every* alias.
        """
        used: set[tuple[str, str]] = set()
        #: symbol-alias adjacency for the closure pass below.
        aliases: dict[tuple[str, str], set[tuple[str, str]]] = {}
        for module, summary in self.modules.items():
            # import statements
            for record in summary.imports:
                if record.kind != "from":
                    continue
                target = record.target
                for name, binding in record.names:
                    if name == "*":
                        if target == module:
                            continue
                        star_target = self.modules.get(target)
                        if star_target is not None and \
                                star_target.dunder_all:
                            for exported in star_target.dunder_all:
                                used.add((target, exported))
                        continue
                    if target != module:
                        used.add((target, name))
                    if f"{target}.{name}" in self.modules:
                        continue  # submodule import, not a symbol alias
                    origin = self.resolve_import_target("import", target)
                    if origin is None or origin == module:
                        continue
                    a, b = (module, binding), (origin, name)
                    aliases.setdefault(a, set()).add(b)
                    aliases.setdefault(b, set()).add(a)
            # attribute access through module aliases
            bindings: dict[str, str] = {}
            for record in summary.imports:
                for name, binding in record.names:
                    if name == "*":
                        continue
                    if record.kind == "import":
                        root = record.target.split(".")[0]
                        bindings[binding] = record.target \
                            if binding != root else root
                    else:
                        resolved = self.resolve_import_target(
                            "from", record.target, name)
                        if resolved == f"{record.target}.{name}":
                            bindings[binding] = resolved
            for dotted in summary.attr_uses:
                parts = dotted.split(".")
                root_module = bindings.get(parts[0])
                if root_module is None:
                    continue
                chain = root_module.split(".") + parts[1:]
                for cut in range(1, len(chain)):
                    prefix = ".".join(chain[:cut])
                    if prefix in self.modules and prefix != module:
                        used.add((prefix, chain[cut]))
        # any import landing on pkg.sub credits the (ancestor, child)
        # listings along the chain — `from pkg import sub` is just one
        # spelling of consuming the submodule.
        for edge in self.import_edges():
            parts = edge.target.split(".")
            for cut in range(1, len(parts)):
                parent = ".".join(parts[:cut])
                if parent != edge.source:
                    used.add((parent, parts[cut]))
        # closure over re-export aliases.
        queue = list(used)
        while queue:
            pair = queue.pop()
            for other in aliases.get(pair, ()):
                if other not in used:
                    used.add(other)
                    queue.append(other)
        return used

    # ------------------------------------------------------------------
    # call-graph machinery (dataflow rules)
    # ------------------------------------------------------------------
    def function_table(self, module: str) -> dict[str, FunctionSummary]:
        """qualname -> function summary for one module (resolvable names
        only — nested ``<locals>`` functions are excluded)."""
        summary = self.modules.get(module)
        if summary is None:
            return {}
        return {f.qualname: f for f in summary.functions
                if "<locals>" not in f.qualname}

    def binding_map(self, module: str) -> dict[str, tuple[str, str]]:
        """Local name -> ``(target_module, target_name)`` for names a
        module binds by importing. ``target_name`` is ``""`` when the
        binding is the module itself (``import x`` / ``from p import m``
        where ``m`` is a module)."""
        summary = self.modules.get(module)
        if summary is None:
            return {}
        bindings: dict[str, tuple[str, str]] = {}
        for record in summary.imports:
            for name, binding in record.names:
                if name == "*":
                    continue
                if record.kind == "import":
                    root = record.target.split(".")[0]
                    if binding == root and "." in record.target:
                        bindings[binding] = (root, "")
                    else:
                        bindings[binding] = (record.target, "")
                else:
                    resolved = self.resolve_import_target(
                        "from", record.target, name)
                    if resolved == f"{record.target}.{name}":
                        bindings[binding] = (resolved, "")
                    else:
                        bindings[binding] = (record.target, name)
        return bindings

    def resolve_call(self, module: str, caller: FunctionSummary,
                     callee: str) -> tuple[str, FunctionSummary] | None:
        """The ``(module, function)`` a dotted call lands on, if it can
        be resolved statically within the program."""
        if not callee:
            return None
        parts = callee.split(".")
        table = self.function_table(module)
        if len(parts) == 1:
            found = table.get(parts[0])
            if found is not None:
                return module, found
            bound = self.binding_map(module).get(parts[0])
            if bound is not None:
                target_module, target_name = bound
                if target_name:
                    remote = self.function_table(target_module).get(
                        target_name)
                    if remote is not None:
                        return target_module, remote
            return None
        if parts[0] in ("self", "cls") and "." in caller.qualname:
            cls = caller.qualname.rsplit(".", 1)[0]
            found = table.get(f"{cls}.{parts[1]}")
            if found is not None:
                return module, found
            return None
        bound = self.binding_map(module).get(parts[0])
        if bound is None:
            return None
        target_module, target_name = bound
        if target_name == "" and len(parts) >= 2:
            # alias is a module: walk the remaining parts as submodules
            # then a function name.
            chain = target_module.split(".") + parts[1:]
            for cut in range(len(chain) - 1, 0, -1):
                prefix = ".".join(chain[:cut])
                if prefix in self.modules:
                    rest = chain[cut:]
                    if len(rest) == 1:
                        remote = self.function_table(prefix).get(rest[0])
                        if remote is not None:
                            return prefix, remote
                    break
        return None

    # ------------------------------------------------------------------
    # project version (deprecation sunsets)
    # ------------------------------------------------------------------
    def project_version(self) -> tuple[int, ...] | None:
        """The ``version = "X.Y.Z"`` of the nearest ``pyproject.toml``
        above the summarized files, or ``None`` when there is none."""
        if self._version_resolved:
            return self._version
        self._version_resolved = True
        for summary in self.iter_modules():
            directory = Path(summary.path).resolve().parent
            for candidate in [directory, *directory.parents]:
                pyproject = candidate / "pyproject.toml"
                if not pyproject.is_file():
                    continue
                try:
                    match = _VERSION_RE.search(
                        pyproject.read_text(encoding="utf-8"))
                except OSError:
                    match = None
                if match is not None:
                    self._version = parse_version(match.group(1))
                return self._version
        return self._version

    # ------------------------------------------------------------------
    def iter_modules(self) -> Iterator[FileSummary]:
        """Summaries in deterministic (module-name) order."""
        for module in sorted(self.modules):
            yield self.modules[module]
