"""Cross-file contract rules: RPR120 (kernel backend signatures) and
RPR121 (deprecation sunsets).

Two promises the tree makes in prose become machine-checked facts here:

* The kernel registry's plugin contract — "a backend implements the ops
  it accelerates with the required backend's signatures" — is verified
  statically: every ``register_kernel(op, backend, fn)`` call site in
  the program is collected, the required backend's implementations
  define the reference arity per op, and every other backend's
  registered function must match it (RPR120).
* The "legacy shapes work one release behind a DeprecationWarning"
  promise (flat ExecutionConfig kwargs, bare-int targets, two-tuple
  subgraphs) is only a promise if the shims actually die. Every
  ``DeprecationWarning`` in library code must carry a machine-readable
  ``# repro: sunset[X.Y]`` marker, and once the ``pyproject.toml``
  version reaches X.Y the shim fails lint until deleted (RPR121).
"""

from __future__ import annotations

from typing import Iterator

from ..registry import ProgramRule, register
from .context import ProgramContext, parse_version
from .summary import FileSummary, FunctionSummary

__all__ = ["KernelBackendContract", "DeprecationSunset"]


@register
class KernelBackendContract(ProgramRule):
    code = "RPR120"
    name = "kernel-backend-contract"
    rationale = ("A plugin backend whose kernel signature drifts from "
                 "the required backend's fails at dispatch time on the "
                 "one machine that has the optional dependency; the "
                 "registry contract is checkable at lint time instead.")

    #: The registry module's constant naming the always-complete backend.
    _REQUIRED_CONST = "REQUIRED_BACKEND"

    def _registry_module(self, program: ProgramContext) -> FileSummary | None:
        for summary in program.iter_modules():
            if "register_kernel" in summary.defs:
                return summary
        return None

    def check_program(self, program: ProgramContext) -> Iterator:
        registry = self._registry_module(program)
        if registry is None:
            return
        required = registry.consts.get(self._REQUIRED_CONST, "scipy")
        # op -> reference positional params, from the required backend's
        # registrations (which live in the registry module itself).
        reference: dict[str, list[str]] = {}
        for call in registry.register_calls:
            if call.backend != required or call.op is None or call.fn is None:
                continue
            table = program.function_table(registry.module)
            fn = table.get(call.fn)
            if fn is not None:
                reference[call.op] = fn.params
        if not reference:
            return
        for summary in program.iter_modules():
            for call in summary.register_calls:
                if call.backend is None or call.backend == required:
                    continue
                if call.op is not None and call.op not in reference:
                    yield self.program_violation(
                        summary.display, call.lineno, call.col,
                        f"backend {call.backend!r} registers unknown op "
                        f"{call.op!r}; the required backend "
                        f"({required!r}) defines: "
                        f"{', '.join(sorted(reference))}")
                    continue
                if call.op is None or call.fn is None:
                    continue
                fn = program.function_table(summary.module).get(call.fn)
                if fn is None:
                    resolved = program.resolve_call(
                        summary.module,
                        FunctionSummary(name="", qualname="", is_async=False,
                                        lineno=0, params=[]),
                        call.fn)
                    fn = resolved[1] if resolved is not None else None
                if fn is None:
                    continue  # lambda / dynamically built — not checkable
                expected = reference[call.op]
                if len(fn.params) != len(expected):
                    yield self.program_violation(
                        summary.display, call.lineno, call.col,
                        f"backend {call.backend!r} op {call.op!r}: "
                        f"{fn.name}() takes {len(fn.params)} positional "
                        f"parameter(s) ({', '.join(fn.params) or 'none'}) "
                        f"but the required backend's signature is "
                        f"({', '.join(expected)})")


@register
class DeprecationSunset(ProgramRule):
    code = "RPR121"
    name = "deprecation-sunset"
    rationale = ("'One release behind a DeprecationWarning' is only a "
                 "promise if the shim dies on schedule: every "
                 "DeprecationWarning needs a machine-readable "
                 "`# repro: sunset[X.Y]`, and lint fails the shim once "
                 "the pyproject version reaches it.")

    #: Library scope: shims live in the package, not in tests that
    #: deliberately exercise them.
    _SCOPE = "repro"

    def check_program(self, program: ProgramContext) -> Iterator:
        version = program.project_version()
        for summary in program.iter_modules():
            if not (summary.module == self._SCOPE
                    or summary.module.startswith(self._SCOPE + ".")):
                continue
            for warn in summary.warns:
                if warn.category != "DeprecationWarning":
                    continue
                if warn.sunset is None:
                    yield self.program_violation(
                        summary.display, warn.lineno, warn.col,
                        "DeprecationWarning without a sunset: add "
                        "`# repro: sunset[X.Y]` on the warn statement "
                        "so the shim's removal release is machine-"
                        "checkable")
                    continue
                sunset = parse_version(warn.sunset)
                if sunset is None:
                    yield self.program_violation(
                        summary.display, warn.lineno, warn.col,
                        f"malformed sunset marker "
                        f"`# repro: sunset[{warn.sunset}]`: expected a "
                        f"dotted version like 2.0")
                    continue
                if version is not None and version >= sunset:
                    yield self.program_violation(
                        summary.display, warn.lineno, warn.col,
                        f"deprecation shim past its sunset: marked "
                        f"`sunset[{warn.sunset}]` but the project is at "
                        f"{'.'.join(str(p) for p in version)}; delete "
                        f"the shim and its legacy path")

