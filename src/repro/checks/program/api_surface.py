"""API-surface rules: RPR110 (dead exports), RPR111 (``__all__`` drift),
RPR112 (private-module reach-ins).

``__all__`` is the tree's public-API ledger; these rules keep the ledger
honest in both directions. A name exported but never imported anywhere
in the program is surface area that costs review attention and deprecation
work while serving nobody (RPR110). A name listed in ``__all__`` but not
actually bound in the module is a latent ``AttributeError`` behind
``from x import *`` (RPR111). And an import that reaches across
subpackages into an underscore-private module couples the consumer to
layout the owner explicitly reserved the right to change (RPR112).
"""

from __future__ import annotations

from typing import Iterator

from ..registry import ProgramRule, register
from .context import ProgramContext

__all__ = ["DeadExport", "DunderAllDrift", "PrivateModuleReachIn"]

#: Exports every distribution keeps regardless of internal consumers.
_ALWAYS_PUBLIC = frozenset({"__version__"})


@register
class DeadExport(ProgramRule):
    code = "RPR110"
    name = "dead-export"
    rationale = ("A name in __all__ that nothing in src/tests/benchmarks/"
                 "examples imports is unowned public surface: it cannot "
                 "break a test, so it only decays. Delete it or use it.")

    def check_program(self, program: ProgramContext) -> Iterator:
        # Without the tree's root package the program is a slice, and
        # "nobody imports X" would be a fact about the slice.
        if not program.has_root_package():
            return
        used = program.export_uses()
        for summary in program.iter_modules():
            if summary.dunder_all is None or summary.all_dynamic:
                continue
            dead = [name for name in summary.dunder_all
                    if (summary.module, name) not in used
                    and name not in _ALWAYS_PUBLIC]
            line = summary.all_lineno or 1
            for name in dead:
                yield self.program_violation(
                    summary.display, line, 0,
                    f"dead export: {summary.module}.__all__ lists "
                    f"{name!r} but nothing in the program imports it; "
                    f"remove it from __all__ or add a consumer")


@register
class DunderAllDrift(ProgramRule):
    code = "RPR111"
    name = "dunder-all-drift"
    rationale = ("A name in __all__ that the module never binds is a "
                 "latent AttributeError behind `from x import *` and a "
                 "lie in the API ledger; __all__ must track the module "
                 "body.")

    def check_program(self, program: ProgramContext) -> Iterator:
        for summary in program.iter_modules():
            if summary.dunder_all is None or summary.all_dynamic:
                continue
            bound = summary.bound_names()
            if summary.is_package:
                # A package __init__ may legitimately export its own
                # submodules without importing them (lazy façades).
                prefix = summary.module + "."
                bound = bound | {m[len(prefix):] for m in program.modules
                                 if m.startswith(prefix)
                                 and "." not in m[len(prefix):]}
            line = summary.all_lineno or 1
            for name in summary.dunder_all:
                if name in bound or name in _ALWAYS_PUBLIC:
                    continue
                yield self.program_violation(
                    summary.display, line, 0,
                    f"__all__ drift: {summary.module} exports {name!r} "
                    f"but never defines or imports it")


@register
class PrivateModuleReachIn(ProgramRule):
    code = "RPR112"
    name = "private-module-reach-in"
    rationale = ("An underscore-prefixed module is a subpackage's "
                 "private layout; importing it from another subpackage "
                 "couples the consumer to internals the owner reserved "
                 "the right to rearrange. Import through the package's "
                 "public surface instead.")

    @staticmethod
    def _subpackage(module: str) -> str:
        parts = module.split(".")
        return ".".join(parts[:2]) if len(parts) > 1 else module

    def check_program(self, program: ProgramContext) -> Iterator:
        for edge in program.import_edges():
            private = [part for part in edge.target.split(".")
                       if part.startswith("_") and part != "__init__"
                       and not part.startswith("__")]
            if not private:
                continue
            if self._subpackage(edge.source) == self._subpackage(edge.target):
                continue
            summary = program.modules[edge.source]
            yield self.program_violation(
                summary.display, edge.lineno, edge.col,
                f"{edge.source} reaches into {edge.target}: module "
                f"{private[0]!r} is private to "
                f"{self._subpackage(edge.target)}; import through its "
                f"public package surface")
