"""repro.checks.program — whole-program analysis for ``repro lint``.

The per-file rules (RPR001–RPR070) see one module at a time; this
package parses the linted tree once into a :class:`ProgramContext`
(module symbol tables, ``__all__`` resolution, the import DAG, call
graphs) and runs the cross-file rule families over it:

* **RPR100 architecture** — eager import cycles; the declared layering
  contract (:data:`~repro.checks.program.layering.LAYERS`);
* **RPR110 API surface** — dead public exports, ``__all__`` drift,
  cross-subpackage reach-ins to underscore-private modules;
* **RPR120 cross-file contracts** — kernel-registry backend signatures,
  deprecation shims with enforced ``# repro: sunset[X.Y]`` releases;
* **RPR130 dataflow** — blocking calls transitively reachable from
  :mod:`repro.serve` coroutines through the call graph.

Program rules run through the same CLI, ``--select``, suppression,
``--json``/``--format`` and exit-code contract as the per-file rules.
They consume :class:`~repro.checks.program.summary.FileSummary` digests
— plain JSON-serializable data the warm-run parse cache persists — so a
cached file still contributes its imports, exports and call edges
without being re-read. Like the rest of :mod:`repro.checks`, this
package is pure stdlib: it must import (and lint) without the numeric
stack installed.
"""

from __future__ import annotations

from .context import ImportEdge, ProgramContext, parse_version
from .summary import FileSummary, FunctionSummary, summarize

# Importing the rule modules registers their rules (stable-code registry).
from . import api_surface, contracts, dataflow, layering

__all__ = [
    "ProgramContext",
    "ImportEdge",
    "FileSummary",
    "FunctionSummary",
    "summarize",
    "parse_version",
]
