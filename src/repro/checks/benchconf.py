"""Benchmark-conformance rule: RPR040 keeps workload names in sync with
:mod:`repro.obs.names`.

``BENCH_perf.json`` and ``BENCH_history.jsonl`` are joined on workload
keys by CI artifact diffing and the README tables. A typo'd
``results["fidelty_curve"] = ...`` in a bench script would fork the time
series without failing anything — the same silent-bucket failure mode
the RPR03x observability rules close for spans and counters. This rule
resolves every string-literal workload key written by a ``bench_*``
module against the declared ``WORKLOAD_NAMES`` registry; call sites that
import the ``WORKLOAD_*`` constants produce ``Name`` nodes and are clean
by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import FileContext, Violation
from .obsconf import _hint
from .registry import Rule, register

__all__: list[str] = []


def _workload_names() -> frozenset[str]:
    from ..obs import names

    return names.WORKLOAD_NAMES


@register
class UnregisteredWorkloadName(Rule):
    code = "RPR040"
    name = "unregistered-workload-name"
    rationale = ("A workload key not declared in repro.obs.names forks the "
                 "BENCH_perf.json / BENCH_history.jsonl time series "
                 "silently; declare the WORKLOAD_* constant and import it "
                 "in the bench script.")

    def applies(self, ctx: FileContext) -> bool:
        # Benchmark scripts only — the convention is that every measured
        # scenario is recorded as results["<workload>"] = payload there.
        last = ctx.module.rsplit(".", 1)[-1]
        return last.startswith("bench_")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        names = _workload_names()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                base = target.value
                if not (isinstance(base, ast.Name) and base.id == "results"):
                    continue
                key = target.slice
                if isinstance(key, ast.Constant) and isinstance(key.value, str) \
                        and key.value not in names:
                    yield self.violation(
                        ctx, key,
                        f"workload name {key.value!r} is not declared in "
                        f"repro.obs.names{_hint(key.value, names)}")
