"""Datasets: the paper's synthetic benchmarks and offline surrogates."""

from .base import DatasetStats, GraphDataset, NodeDataset
from .citation import citation_surrogate, citeseer, cora, pubmed
from .molecules import bbbp, molecule_surrogate, mutag
from .registry import DATASET_NAMES, dataset_task, default_scale, load_dataset
from .synthetic import ba_2motifs, ba_shapes, tree_cycles

__all__ = [
    "NodeDataset",
    "GraphDataset",
    "DatasetStats",
    "load_dataset",
    "DATASET_NAMES",
    "dataset_task",
    "default_scale",
    "cora",
    "citeseer",
    "pubmed",
    "citation_surrogate",
    "mutag",
    "bbbp",
    "molecule_surrogate",
    "ba_shapes",
    "tree_cycles",
    "ba_2motifs",
]
