"""Molecule-like graph-classification surrogates for MUTAG and BBBP.

MUTAG (mutagenicity of nitroaromatic compounds) and BBBP (blood-brain
barrier penetration) require downloaded chemistry data. The offline
surrogates generate small "molecules" — random connected skeletons with
typed atoms — where the label is determined by a planted functional-group
motif, mirroring how the real GNN targets latch onto substructures like
NO2 groups (the canonical MUTAG explanation):

* ``mutag``: 188 graphs, 7 atom types, avg ~18 nodes. Class 1 molecules
  contain at least one nitro-like group (an N atom bonded to two O atoms,
  attached to a carbon ring); class 0 molecules contain none.
* ``bbbp``: 2039 graphs, 9 atom types, avg ~24 nodes. Class 1 molecules
  contain a lipophilic ring pattern (6-ring of C with a halogen
  substituent); class 0 carry polar chains instead.

``motif_edges`` records the planted group so explanation quality can be
inspected qualitatively (the paper only computes AUC on the BA/Tree
synthetics; these remain available for visualization).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, coalesce_edges
from ..rng import ensure_rng
from .base import GraphDataset

__all__ = ["mutag", "bbbp", "molecule_surrogate"]


def _random_skeleton(n: int, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Random connected skeleton: a random tree plus a few chords."""
    pairs = []
    for v in range(1, n):
        u = int(rng.integers(v))
        pairs.append((u, v))
    n_chords = int(rng.integers(0, max(1, n // 5) + 1))
    for _ in range(n_chords):
        u, v = rng.integers(n, size=2)
        if u != v:
            pairs.append((min(u, v), max(u, v)))
    return pairs


def _both_directions(pairs: list[tuple[int, int]]) -> np.ndarray:
    uniq = sorted({(u, v) for u, v in pairs if u != v})
    arr = np.array(uniq, dtype=np.int64).T
    return coalesce_edges(np.concatenate([arr, arr[::-1]], axis=1))


def _one_hot(types: np.ndarray, num_types: int) -> np.ndarray:
    x = np.zeros((types.size, num_types))
    x[np.arange(types.size), types] = 1.0
    return x


def molecule_surrogate(name: str, num_graphs: int, avg_nodes: int, num_types: int,
                       seed: int | np.random.Generator | None = 0,
                       motif: str = "nitro") -> GraphDataset:
    """Generate a motif-labelled molecule-like dataset.

    Parameters
    ----------
    name:
        Dataset name.
    num_graphs, avg_nodes, num_types:
        Dataset size, average molecule size, number of atom types
        (feature dimension).
    motif:
        ``"nitro"`` (N + 2×O group) or ``"ring"`` (C6 ring + halogen).
    """
    rng = ensure_rng(seed)
    graphs: list[Graph] = []
    # Atom type conventions: 0=C, 1=N, 2=O, 3=halogen, rest = misc.
    for i in range(num_graphs):
        label = i % 2
        n_base = max(6, int(rng.normal(avg_nodes - 4, 3)))
        pairs = _random_skeleton(n_base, rng)
        types = np.zeros(n_base, dtype=np.int64)
        # Mostly carbon with sprinkles of other atoms — but never a full
        # planted group in class-0 molecules.
        misc = rng.random(n_base)
        types[misc > 0.8] = rng.integers(3, num_types, size=int((misc > 0.8).sum()))

        motif_pairs: list[tuple[int, int]] = []
        if label == 1:
            anchor = int(rng.integers(n_base))
            if motif == "nitro":
                # N bonded to two O, attached to the anchor carbon.
                n_id, o1, o2 = n_base, n_base + 1, n_base + 2
                types = np.concatenate([types, [1, 2, 2]])
                motif_pairs = [(anchor, n_id), (n_id, o1), (n_id, o2)]
            else:
                # 6-carbon ring with a halogen substituent.
                ring = list(range(n_base, n_base + 6))
                hal = n_base + 6
                types = np.concatenate([types, [0] * 6, [3]])
                motif_pairs = [(ring[k], ring[(k + 1) % 6]) for k in range(6)]
                motif_pairs += [(anchor, ring[0]), (ring[3], hal)]
        pairs += motif_pairs

        edge_index = _both_directions(pairs)
        motif_set = None
        if motif_pairs:
            motif_set = frozenset(
                pair for u, v in motif_pairs for pair in ((u, v), (v, u))
            )
        graphs.append(Graph(
            edge_index=edge_index,
            x=_one_hot(types, num_types),
            y=int(label),
            motif_edges=motif_set,
            meta={"dataset": name, "index": i},
        ))
    return GraphDataset(name=name, graphs=graphs, synthetic=False,
                        meta={"motif": motif, "surrogate": True})


def mutag(scale: float = 1.0, seed: int | np.random.Generator | None = 0) -> GraphDataset:
    """MUTAG surrogate (188 graphs / 7 features / 2 classes at scale 1)."""
    num_graphs = max(20, int(round(188 * scale)))
    return molecule_surrogate("mutag", num_graphs, avg_nodes=18, num_types=7,
                              seed=seed, motif="nitro")


def bbbp(scale: float = 1.0, seed: int | np.random.Generator | None = 0) -> GraphDataset:
    """BBBP surrogate (2039 graphs / 9 features / 2 classes at scale 1)."""
    num_graphs = max(20, int(round(2039 * scale)))
    return molecule_surrogate("bbbp", num_graphs, avg_nodes=24, num_types=9,
                              seed=seed, motif="ring")
