"""Dataset registry keyed by the paper's names (Table III).

``load_dataset("cora")`` etc. returns a :class:`NodeDataset` or
:class:`GraphDataset`. The global experiment scale defaults to the
``REPRO_SCALE`` environment variable (0.25 if unset) so the benchmark
harness is tractable on CPU; ``REPRO_SCALE=1`` reproduces paper sizes.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from ..errors import DatasetError
from .base import GraphDataset, NodeDataset
from .citation import citeseer, cora, pubmed
from .molecules import bbbp, mutag
from .synthetic import ba_2motifs, ba_shapes, tree_cycles

__all__ = ["DATASET_NAMES", "load_dataset", "default_scale", "dataset_task"]

_BUILDERS: dict[str, Callable] = {
    "cora": cora,
    "citeseer": citeseer,
    "pubmed": pubmed,
    "ba_shapes": ba_shapes,
    "tree_cycles": tree_cycles,
    "mutag": mutag,
    "bbbp": bbbp,
    "ba_2motifs": ba_2motifs,
}

DATASET_NAMES = tuple(_BUILDERS)

_TASKS = {
    "cora": "node",
    "citeseer": "node",
    "pubmed": "node",
    "ba_shapes": "node",
    "tree_cycles": "node",
    "mutag": "graph",
    "bbbp": "graph",
    "ba_2motifs": "graph",
}


def default_scale() -> float:
    """Experiment scale from ``REPRO_SCALE`` (default 0.25)."""
    return float(os.environ.get("REPRO_SCALE", "0.25"))


def dataset_task(name: str) -> str:
    """``"node"`` or ``"graph"`` for a registry name."""
    if name not in _TASKS:
        raise DatasetError(f"unknown dataset {name!r}; available: {sorted(_BUILDERS)}")
    return _TASKS[name]


def load_dataset(name: str, scale: float | None = None,
                 seed: int | np.random.Generator | None = 0) -> NodeDataset | GraphDataset:
    """Build the named dataset.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES` (case-insensitive; hyphens allowed).
    scale:
        Size multiplier; ``None`` uses :func:`default_scale`.
    seed:
        Generator seed for reproducibility.
    """
    key = name.lower().replace("-", "_")
    if key not in _BUILDERS:
        raise DatasetError(f"unknown dataset {name!r}; available: {sorted(_BUILDERS)}")
    if scale is None:
        scale = default_scale()
    return _BUILDERS[key](scale=scale, seed=seed)
