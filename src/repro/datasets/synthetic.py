"""The paper's three synthetic benchmarks, regenerated from their recipes.

* **BA-Shapes** (Ying et al., 2019): a Barabási–Albert base graph with
  house motifs attached; node labels encode position in the motif
  (0 = base graph, 1 = roof, 2 = shoulder, 3 = base of house).
* **Tree-Cycles** (Ying et al., 2019): a balanced binary tree with 6-node
  cycle motifs attached; binary node labels (tree vs. cycle).
* **BA-2motifs** (Luo et al., 2020): 1000 small graphs, each a BA base with
  either a house motif (class 0) or a 5-node cycle motif (class 1).

All generators record ``motif_edges`` ground truth for AUC evaluation and
take a ``scale`` parameter so tests can run tiny variants; ``scale=1.0``
matches the paper's Table III sizes (700 / 871 / 1000×25 nodes).
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..graph import (
    Graph,
    balanced_tree_edges,
    barabasi_albert_edges,
    coalesce_edges,
    cycle_edges,
    house_motif_edges,
)
from ..rng import ensure_rng
from .base import GraphDataset, NodeDataset, make_split_masks

__all__ = ["ba_shapes", "tree_cycles", "ba_2motifs"]

_FEATURE_DIM = 10  # all three datasets use 10 constant features (Table III)


def _attach(edges_list: list[np.ndarray], u: int, v: int) -> None:
    """Append the directed pair u<->v."""
    edges_list.append(np.array([[u, v], [v, u]], dtype=np.int64).T)


def ba_shapes(scale: float = 1.0, seed: int | np.random.Generator | None = 0,
              perturb_frac: float = 0.1) -> NodeDataset:
    """BA-Shapes: BA base + house motifs, 4 node classes.

    At ``scale=1.0``: 300-node BA base (m=5) + 80 houses = 700 nodes, which
    reproduces Table III. ``perturb_frac`` adds random noise edges
    (fraction of motif count), as in the original recipe.
    """
    rng = ensure_rng(seed)
    base_nodes = max(25, int(round(300 * scale)))
    num_houses = max(2, int(round(80 * scale)))

    edges_parts = [barabasi_albert_edges(base_nodes, m=5 if base_nodes > 30 else 2, rng=rng)]
    labels = [np.zeros(base_nodes, dtype=np.int64)]
    motif_edge_set: set[tuple[int, int]] = set()
    motif_nodes: list[int] = []

    next_id = base_nodes
    for _ in range(num_houses):
        ids = list(range(next_id, next_id + 5))
        next_id += 5
        house = house_motif_edges(ids)
        edges_parts.append(house)
        motif_edge_set.update(zip(house[0].tolist(), house[1].tolist()))
        # roof=1, shoulders=2, bases=3
        labels.append(np.array([1, 2, 2, 3, 3], dtype=np.int64))
        motif_nodes.extend(ids)
        anchor = int(rng.integers(base_nodes))
        part = [np.array([[ids[3], anchor], [anchor, ids[3]]], dtype=np.int64).T]
        edges_parts.extend(part)

    num_nodes = next_id
    # Random perturbation edges.
    n_noise = int(perturb_frac * num_houses * 5)
    for _ in range(n_noise):
        u, v = rng.integers(num_nodes, size=2)
        if u != v:
            edges_parts.append(np.array([[u, v], [v, u]], dtype=np.int64).T)

    edge_index = coalesce_edges(np.concatenate(edges_parts, axis=1))
    y = np.concatenate(labels)
    x = np.ones((num_nodes, _FEATURE_DIM))
    train, val, test = make_split_masks(num_nodes, rng)
    graph = Graph(edge_index=edge_index, x=x, y=y, train_mask=train, val_mask=val,
                  test_mask=test, motif_edges=frozenset(motif_edge_set),
                  meta={"dataset": "ba_shapes", "scale": scale})
    return NodeDataset(name="ba_shapes", graph=graph, synthetic=True,
                       motif_nodes=np.array(motif_nodes, dtype=np.int64),
                       meta={"num_houses": num_houses, "base_nodes": base_nodes})


def tree_cycles(scale: float = 1.0, seed: int | np.random.Generator | None = 0) -> NodeDataset:
    """Tree-Cycles: balanced binary tree + 6-node cycles, 2 node classes.

    At ``scale=1.0``: height-8 binary tree (511 nodes) + 60 cycles
    = 871 nodes, matching Table III.
    """
    rng = ensure_rng(seed)
    height = 8 if scale >= 0.9 else max(4, int(round(8 * scale)) + 2)
    num_cycles = max(2, int(round(60 * scale)))

    tree_edges, tree_nodes = balanced_tree_edges(2, height)
    edges_parts = [tree_edges]
    labels = [np.zeros(tree_nodes, dtype=np.int64)]
    motif_edge_set: set[tuple[int, int]] = set()
    motif_nodes: list[int] = []

    next_id = tree_nodes
    for _ in range(num_cycles):
        ids = list(range(next_id, next_id + 6))
        next_id += 6
        cyc = cycle_edges(ids)
        edges_parts.append(cyc)
        motif_edge_set.update(zip(cyc[0].tolist(), cyc[1].tolist()))
        labels.append(np.ones(6, dtype=np.int64))
        motif_nodes.extend(ids)
        anchor = int(rng.integers(tree_nodes))
        edges_parts.append(np.array([[ids[0], anchor], [anchor, ids[0]]], dtype=np.int64).T)

    edge_index = coalesce_edges(np.concatenate(edges_parts, axis=1))
    y = np.concatenate(labels)
    num_nodes = next_id
    x = np.ones((num_nodes, _FEATURE_DIM))
    train, val, test = make_split_masks(num_nodes, rng)
    graph = Graph(edge_index=edge_index, x=x, y=y, train_mask=train, val_mask=val,
                  test_mask=test, motif_edges=frozenset(motif_edge_set),
                  meta={"dataset": "tree_cycles", "scale": scale})
    return NodeDataset(name="tree_cycles", graph=graph, synthetic=True,
                       motif_nodes=np.array(motif_nodes, dtype=np.int64),
                       meta={"num_cycles": num_cycles, "tree_height": height})


def ba_2motifs(scale: float = 1.0, seed: int | np.random.Generator | None = 0) -> GraphDataset:
    """BA-2motifs: 1000 graphs of 25 nodes; house vs. 5-cycle motif.

    Class 0 carries a house motif, class 1 a five-node cycle, each attached
    to a 20-node BA base by one edge (Luo et al., 2020). ``motif_edges``
    ground truth is stored per graph.
    """
    rng = ensure_rng(seed)
    num_graphs = max(20, int(round(1000 * scale)))
    base_nodes = 20
    graphs: list[Graph] = []
    for i in range(num_graphs):
        label = i % 2
        base = barabasi_albert_edges(base_nodes, m=1, rng=rng)
        ids = list(range(base_nodes, base_nodes + 5))
        motif = house_motif_edges(ids) if label == 0 else cycle_edges(ids)
        anchor = int(rng.integers(base_nodes))
        link = np.array([[ids[0], anchor], [anchor, ids[0]]], dtype=np.int64).T
        edge_index = coalesce_edges(np.concatenate([base, motif, link], axis=1))
        x = np.ones((base_nodes + 5, _FEATURE_DIM))
        motif_set = frozenset(zip(motif[0].tolist(), motif[1].tolist()))
        graphs.append(Graph(edge_index=edge_index, x=x, y=int(label),
                            motif_edges=motif_set,
                            meta={"dataset": "ba_2motifs", "index": i}))
    if len({int(g.y) for g in graphs}) < 2:
        raise DatasetError("ba_2motifs produced a single class; increase scale")
    return GraphDataset(name="ba_2motifs", graphs=graphs, synthetic=True,
                        meta={"scale": scale})
