"""Citation-network surrogates for Cora / Citeseer / PubMed.

The paper evaluates on the Planetoid citation benchmarks, which require
downloaded data. This offline reproduction substitutes seeded generative
surrogates that match Table III's node / edge / feature / class counts and
— more importantly — the *regime* the experiments exercise: a homophilous
graph where a 3-layer GNN reaches high accuracy by combining structure and
sparse bag-of-words features (see DESIGN.md §2).

Construction: a degree-corrected stochastic block model (power-law degree
propensities, strong within-class preference) plus class-topic binary
features (each class owns a subset of "words"; a node samples most of its
words from its class topics and some noise words). Planetoid-style splits:
20 labelled nodes per class for training, 500 validation, 1000 test
(scaled).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, coalesce_edges
from ..rng import ensure_rng
from .base import NodeDataset

__all__ = ["cora", "citeseer", "pubmed", "citation_surrogate"]

# Table III targets: (nodes, edges, features, classes)
_PROFILES = {
    "cora": (2708, 10556, 1433, 7),
    "citeseer": (3327, 9104, 3703, 6),
    "pubmed": (19717, 88648, 500, 3),
}

#: Above this node count generation switches to the vectorized wiring /
#: feature paths. The threshold sits above PubMed at scale 1 (19,717
#: nodes) on purpose: every seeded graph the test suite and the committed
#: experiment artifacts depend on keeps its historical byte-identical RNG
#: stream, while ``scale=`` requests well past Table III sizes (the
#: ``sampled_explain`` benchmark runs 25x Cora) drop the per-edge /
#: per-node Python loops whose cost is quadratic-ish in graph size.
_VECTORIZED_MIN_NODES = 30_000


def _wire_edges_vectorized(rng, labels, propensity, class_pools, class_probs,
                           num_nodes, num_undirected, homophily):
    """Batched equivalent of the per-edge wiring loop (large graphs).

    Same distribution family (degree-corrected, homophilous), different
    RNG consumption order: destinations are drawn in one ``rng.choice``
    call per class instead of one per edge, which is what removes the
    O(edges x nodes) cost of per-draw probability normalization.
    """
    src = rng.choice(num_nodes, size=num_undirected, p=propensity)
    same = rng.random(num_undirected) < homophily
    dst = np.empty(num_undirected, dtype=np.int64)
    cross = ~same
    if cross.any():
        dst[cross] = rng.choice(num_nodes, size=int(cross.sum()), p=propensity)
    for c in range(len(class_pools)):
        sel = same & (labels[src] == c)
        k = int(sel.sum())
        if not k:
            continue
        if class_pools[c].size > 1:
            dst[sel] = rng.choice(class_pools[c], size=k, p=class_probs[c])
        else:
            dst[sel] = rng.choice(num_nodes, size=k, p=propensity)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keep = lo != hi
    code = np.unique(lo[keep].astype(np.int64) * num_nodes + hi[keep])
    return np.stack([code // num_nodes, code % num_nodes], axis=1)


def _features_vectorized(rng, labels, num_nodes, num_features, words_per_class,
                         active_per_node, feature_signal):
    """Batched equivalent of the per-node bag-of-words loop."""
    n_topic = int(round(active_per_node * feature_signal))
    n_noise = active_per_node - n_topic
    topic_lo = (labels.astype(np.int64) * words_per_class) % num_features
    topic = (topic_lo[:, None]
             + rng.integers(words_per_class, size=(num_nodes, n_topic))) \
        % num_features
    noise = rng.integers(num_features, size=(num_nodes, n_noise))
    cols = np.concatenate([topic, noise], axis=1)
    x = np.zeros((num_nodes, num_features))
    x[np.repeat(np.arange(num_nodes), cols.shape[1]), cols.ravel()] = 1.0
    return x


def citation_surrogate(name: str, num_nodes: int, num_edges: int, num_features: int,
                       num_classes: int, seed: int | np.random.Generator | None = 0,
                       homophily: float = 0.88, feature_signal: float = 0.75) -> NodeDataset:
    """Generate a citation-style node-classification graph.

    Parameters
    ----------
    name:
        Dataset name stored in metadata.
    num_nodes, num_edges, num_features, num_classes:
        Target sizes (edges are directed; generation matches the count
        approximately, then reports the true number).
    homophily:
        Probability that an edge endpoint pair shares a class.
    feature_signal:
        Fraction of a node's active words drawn from its class topic.
    """
    rng = ensure_rng(seed)
    labels = rng.integers(num_classes, size=num_nodes)

    # Degree-corrected attachment: power-law propensities.
    propensity = (1.0 - rng.random(num_nodes)) ** (-1.0 / 2.5)
    propensity /= propensity.sum()

    # Per-class node pools for homophilous wiring.
    class_pools = [np.flatnonzero(labels == c) for c in range(num_classes)]
    class_probs = []
    for c in range(num_classes):
        p = propensity[class_pools[c]]
        class_probs.append(p / p.sum())

    num_undirected = num_edges // 2
    vectorized = num_nodes >= _VECTORIZED_MIN_NODES
    if vectorized:
        pairs_arr = _wire_edges_vectorized(
            rng, labels, propensity, class_pools, class_probs,
            num_nodes, num_undirected, homophily)
    else:
        src_nodes = rng.choice(num_nodes, size=num_undirected, p=propensity)
        pairs: list[tuple[int, int]] = []
        same_class = rng.random(num_undirected) < homophily
        for u, same in zip(src_nodes.tolist(), same_class):
            c = labels[u]
            if same and class_pools[c].size > 1:
                v = int(rng.choice(class_pools[c], p=class_probs[c]))
            else:
                v = int(rng.choice(num_nodes, p=propensity))
            if u != v:
                pairs.append((min(u, v), max(u, v)))
        pairs_arr = np.array(sorted(set(pairs)), dtype=np.int64)
    edge_index = coalesce_edges(
        np.concatenate([pairs_arr.T, pairs_arr.T[::-1]], axis=1)
    )

    # Sparse class-topic bag-of-words features.
    words_per_class = max(4, num_features // num_classes)
    active_per_node = max(4, num_features // 60)
    if vectorized:
        x = _features_vectorized(rng, labels, num_nodes, num_features,
                                 words_per_class, active_per_node,
                                 feature_signal)
    else:
        x = np.zeros((num_nodes, num_features))
        for v in range(num_nodes):
            c = labels[v]
            topic_lo = (c * words_per_class) % num_features
            n_topic = int(round(active_per_node * feature_signal))
            topic_words = topic_lo + rng.integers(words_per_class, size=n_topic)
            noise_words = rng.integers(num_features, size=active_per_node - n_topic)
            x[v, topic_words % num_features] = 1.0
            x[v, noise_words] = 1.0

    # Planetoid-style split, scaled to the graph size.
    train_mask = np.zeros(num_nodes, dtype=bool)
    per_class = max(5, min(20, num_nodes // (num_classes * 10)))
    for c in range(num_classes):
        pool = class_pools[c]
        take = min(per_class, pool.size)
        train_mask[rng.choice(pool, size=take, replace=False)] = True
    remaining = np.flatnonzero(~train_mask)
    rng.shuffle(remaining)
    n_val = min(500, remaining.size // 2)
    n_test = min(1000, remaining.size - n_val)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    val_mask[remaining[:n_val]] = True
    test_mask[remaining[n_val:n_val + n_test]] = True

    graph = Graph(edge_index=edge_index, x=x, y=labels, train_mask=train_mask,
                  val_mask=val_mask, test_mask=test_mask,
                  meta={"dataset": name, "surrogate": True})
    return NodeDataset(name=name, graph=graph, synthetic=False,
                       meta={"profile": (num_nodes, num_edges, num_features, num_classes)})


def _scaled_profile(name: str, scale: float) -> tuple[int, int, int, int]:
    nodes, edges, feats, classes = _PROFILES[name]
    s = max(scale, 0.01)
    return (
        max(classes * 30, int(round(nodes * s))),
        max(classes * 90, int(round(edges * s))),
        max(16, int(round(feats * min(1.0, s * 2)))),
        classes,
    )


def cora(scale: float = 1.0, seed: int | np.random.Generator | None = 0) -> NodeDataset:
    """Cora surrogate (2708 nodes / 10556 edges / 1433 features / 7 classes at scale 1)."""
    return citation_surrogate("cora", *_scaled_profile("cora", scale), seed=seed)


def citeseer(scale: float = 1.0, seed: int | np.random.Generator | None = 0) -> NodeDataset:
    """Citeseer surrogate (3327 / 9104 / 3703 / 6 at scale 1)."""
    return citation_surrogate("citeseer", *_scaled_profile("citeseer", scale), seed=seed)


def pubmed(scale: float = 1.0, seed: int | np.random.Generator | None = 0) -> NodeDataset:
    """PubMed surrogate (19717 / 88648 / 500 / 3 at scale 1)."""
    return citation_surrogate("pubmed", *_scaled_profile("pubmed", scale), seed=seed)
