"""Dataset abstractions.

Two dataset kinds mirror the paper's Table III: node-classification
datasets (one big graph with split masks) and graph-classification datasets
(a list of small labelled graphs). Both expose uniform metadata used by the
experiment harness and a ``stats()`` summary that regenerates the Table III
rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError
from ..graph import Graph
from ..rng import ensure_rng

__all__ = ["NodeDataset", "GraphDataset", "DatasetStats"]


@dataclass
class DatasetStats:
    """One row of Table III (dataset metadata block)."""

    name: str
    num_graphs: int
    num_nodes: float
    num_edges: float
    num_features: int
    num_classes: int
    synthetic: bool
    task: str

    def row(self) -> str:
        """Format as a Table III-style row."""
        return (
            f"{self.name:<12} {self.num_graphs:>8} {self.num_nodes:>9.1f} "
            f"{self.num_edges:>9.1f} {self.num_features:>10} {self.num_classes:>8}"
        )


@dataclass
class NodeDataset:
    """A node-classification dataset: one graph with split masks.

    Attributes
    ----------
    name:
        Registry name (``"cora"``, ``"ba_shapes"``, …).
    graph:
        The single large graph with ``train/val/test`` masks.
    synthetic:
        Whether the dataset has planted ground-truth motifs.
    motif_nodes:
        For synthetic datasets, the node ids that belong to motifs (these
        are the evaluation targets for Table IV / Fig. 6).
    """

    name: str
    graph: Graph
    synthetic: bool = False
    motif_nodes: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    task: str = "node"

    @property
    def num_features(self) -> int:
        return self.graph.num_features

    @property
    def num_classes(self) -> int:
        if not isinstance(self.graph.y, np.ndarray):
            raise DatasetError(f"{self.name}: node dataset lacks per-node labels")
        return int(self.graph.y.max()) + 1

    def stats(self) -> DatasetStats:
        """Table III row for this dataset."""
        return DatasetStats(
            name=self.name,
            num_graphs=1,
            num_nodes=float(self.graph.num_nodes),
            num_edges=float(self.graph.num_edges),
            num_features=self.num_features,
            num_classes=self.num_classes,
            synthetic=self.synthetic,
            task=self.task,
        )

    def sample_targets(self, n: int, rng: int | np.random.Generator | None = None,
                       motif_only: bool = False) -> np.ndarray:
        """Sample target node ids for explanation.

        The paper samples 50 instances per dataset "regardless of their
        ground-truth labels and predicted labels"; for AUC experiments it
        restricts to motif instances (``motif_only=True``).
        """
        rng = ensure_rng(rng)
        if motif_only:
            if self.motif_nodes is None or self.motif_nodes.size == 0:
                raise DatasetError(f"{self.name}: no motif nodes to sample")
            pool = self.motif_nodes
        else:
            pool = np.arange(self.graph.num_nodes)
        n = min(n, pool.size)
        return rng.choice(pool, size=n, replace=False)


@dataclass
class GraphDataset:
    """A graph-classification dataset: many small labelled graphs."""

    name: str
    graphs: list[Graph]
    synthetic: bool = False
    meta: dict = field(default_factory=dict)

    task: str = "graph"

    def __post_init__(self) -> None:
        if not self.graphs:
            raise DatasetError(f"{self.name}: empty graph list")

    @property
    def num_features(self) -> int:
        return self.graphs[0].num_features

    @property
    def num_classes(self) -> int:
        labels = [int(g.y) for g in self.graphs if g.y is not None]
        if not labels:
            raise DatasetError(f"{self.name}: graphs lack labels")
        return max(labels) + 1

    def __len__(self) -> int:
        return len(self.graphs)

    def __getitem__(self, i: int) -> Graph:
        return self.graphs[i]

    def stats(self) -> DatasetStats:
        """Table III row (node/edge counts are per-graph averages)."""
        return DatasetStats(
            name=self.name,
            num_graphs=len(self.graphs),
            num_nodes=float(np.mean([g.num_nodes for g in self.graphs])),
            num_edges=float(np.mean([g.num_edges for g in self.graphs])),
            num_features=self.num_features,
            num_classes=self.num_classes,
            synthetic=self.synthetic,
            task=self.task,
        )

    def sample_targets(self, n: int, rng: int | np.random.Generator | None = None,
                       motif_only: bool = False) -> np.ndarray:
        """Sample graph indices for explanation."""
        rng = ensure_rng(rng)
        if motif_only:
            pool = np.array([i for i, g in enumerate(self.graphs) if g.motif_edges])
            if pool.size == 0:
                raise DatasetError(f"{self.name}: no graphs with motif ground truth")
        else:
            pool = np.arange(len(self.graphs))
        n = min(n, pool.size)
        return rng.choice(pool, size=n, replace=False)


def make_split_masks(num_nodes: int, rng: np.random.Generator,
                     train_frac: float = 0.8, val_frac: float = 0.1) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random train/val/test boolean masks over ``num_nodes``."""
    u = rng.random(num_nodes)
    train = u < train_frac
    val = (u >= train_frac) & (u < train_frac + val_frac)
    test = u >= train_frac + val_frac
    return train, val, test
