"""Agreement between explanation methods.

The paper's qualitative sections (Tables VI/VII) compare how different
flow methods rank the same instance. This module quantifies such
comparisons: rank correlation of edge scores, top-k overlap of edges and
flows, and pairwise agreement matrices across a panel of methods.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..errors import EvaluationError
from ..explain.base import Explanation

__all__ = ["edge_rank_correlation", "top_edge_overlap", "top_flow_overlap",
           "agreement_matrix"]


def _common_candidates(a: Explanation, b: Explanation) -> np.ndarray:
    if a.edge_scores.shape != b.edge_scores.shape:
        raise EvaluationError(
            f"explanations cover different edge sets: {a.edge_scores.shape} vs "
            f"{b.edge_scores.shape}"
        )
    if a.context_edge_positions is not None and b.context_edge_positions is not None:
        common = np.intersect1d(a.context_edge_positions, b.context_edge_positions)
    elif a.context_edge_positions is not None:
        common = np.asarray(a.context_edge_positions)
    elif b.context_edge_positions is not None:
        common = np.asarray(b.context_edge_positions)
    else:
        common = np.arange(a.edge_scores.shape[0])
    if common.size < 2:
        raise EvaluationError("fewer than two comparable edges")
    return common


def edge_rank_correlation(a: Explanation, b: Explanation,
                          method: str = "spearman") -> float:
    """Rank correlation of two explanations' edge scores.

    Computed over the intersection of their context edge sets.
    """
    common = _common_candidates(a, b)
    x, y = a.edge_scores[common], b.edge_scores[common]
    if np.allclose(x, x[0]) or np.allclose(y, y[0]):
        return 0.0  # constant ranking carries no information
    if method == "spearman":
        return float(stats.spearmanr(x, y).statistic)
    if method == "kendall":
        return float(stats.kendalltau(x, y).statistic)
    raise EvaluationError(f"unknown correlation method {method!r}")


def top_edge_overlap(a: Explanation, b: Explanation, k: int = 10) -> float:
    """Jaccard overlap of the two explanations' top-``k`` edge sets."""
    sa = set(int(e) for e in a.top_edges(k))
    sb = set(int(e) for e in b.top_edges(k))
    union = sa | sb
    if not union:
        raise EvaluationError("empty edge sets")
    return len(sa & sb) / len(union)


def top_flow_overlap(a: Explanation, b: Explanation, k: int = 10) -> float:
    """Jaccard overlap of top-``k`` flows (by node sequence).

    Both explanations must be flow-based; sequences are compared in
    original-graph node ids so different context extractions line up.
    """
    sa = set(seq for seq, _ in a.top_flows(k))
    sb = set(seq for seq, _ in b.top_flows(k))
    union = sa | sb
    if not union:
        raise EvaluationError("empty flow sets")
    return len(sa & sb) / len(union)


def agreement_matrix(explanations: list[Explanation], k: int = 10,
                     kind: str = "edges") -> tuple[np.ndarray, list[str]]:
    """Pairwise top-``k`` overlap matrix across methods.

    Returns ``(matrix, method_names)``; diagonal is 1.
    """
    n = len(explanations)
    if n < 2:
        raise EvaluationError("need at least two explanations to compare")
    overlap = top_flow_overlap if kind == "flows" else top_edge_overlap
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = overlap(explanations[i], explanations[j], k=k)
    return matrix, [e.method for e in explanations]
