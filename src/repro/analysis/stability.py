"""Explanation stability: variance under seeds and input perturbations.

Faithfulness evaluations (the paper's Figs. 3/4) measure quality against
the model; stability measures *reliability* — does the method return the
same explanation when its own randomness or irrelevant parts of the input
change? Both axes matter for deployment, and learning-based explainers
(Revelio, GNNExplainer) are stochastic by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import EvaluationError
from ..explain.base import Explanation
from ..graph import Graph
from ..rng import spawn_rngs
from .agreement import edge_rank_correlation, top_edge_overlap

__all__ = ["StabilityReport", "seed_stability", "perturbation_stability"]


@dataclass
class StabilityReport:
    """Aggregate stability statistics over repeated explanations."""

    mean_rank_correlation: float
    mean_top_k_overlap: float
    score_std: float
    num_runs: int

    def __repr__(self) -> str:
        return (
            f"StabilityReport(rank_corr={self.mean_rank_correlation:.3f}, "
            f"top_k_overlap={self.mean_top_k_overlap:.3f}, "
            f"score_std={self.score_std:.4f}, runs={self.num_runs})"
        )


def _pairwise_report(explanations: list[Explanation], k: int) -> StabilityReport:
    if len(explanations) < 2:
        raise EvaluationError("stability needs at least two runs")
    correlations, overlaps = [], []
    for i in range(len(explanations)):
        for j in range(i + 1, len(explanations)):
            correlations.append(edge_rank_correlation(explanations[i], explanations[j]))
            overlaps.append(top_edge_overlap(explanations[i], explanations[j], k=k))
    stacked = np.stack([e.edge_scores for e in explanations])
    return StabilityReport(
        mean_rank_correlation=float(np.mean(correlations)),
        mean_top_k_overlap=float(np.mean(overlaps)),
        score_std=float(stacked.std(axis=0).mean()),
        num_runs=len(explanations),
    )


def seed_stability(make_explainer: Callable[[int], object], graph: Graph,
                   target: int | None = None, num_seeds: int = 5,
                   mode: str = "factual", k: int = 10) -> StabilityReport:
    """Stability of one method across its own random seeds.

    Parameters
    ----------
    make_explainer:
        Factory ``seed -> Explainer`` (so each run is independently seeded).
    """
    explanations = [
        make_explainer(seed).explain(graph, target=target, mode=mode)
        for seed in range(num_seeds)
    ]
    return _pairwise_report(explanations, k)


def perturbation_stability(explainer, graph: Graph, target: int | None = None,
                           num_perturbations: int = 5, feature_noise: float = 0.05,
                           mode: str = "factual", k: int = 10,
                           seed: int | np.random.Generator | None = 0) -> StabilityReport:
    """Stability under small Gaussian feature noise on the input graph.

    A faithful explanation of a robust prediction should not churn when
    features move imperceptibly.
    """
    rngs = spawn_rngs(seed, num_perturbations)
    explanations = [explainer.explain(graph, target=target, mode=mode)]
    for rng in rngs:
        noisy = graph.copy()
        noisy.x = noisy.x + rng.normal(0.0, feature_noise, size=noisy.x.shape)
        explanations.append(explainer.explain(noisy, target=target, mode=mode))
    return _pairwise_report(explanations, k)
