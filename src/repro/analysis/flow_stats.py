"""Descriptive statistics over message flows and their explanations.

Answers the structural questions behind the paper's motivation (§I):
how many flows does each edge carry per layer (why edge explanations are
ambiguous — Fig. 1), how concentrated is the explanation mass, and how
much of an instance's flow importance passes through a chosen node set
(e.g. a planted motif).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EvaluationError
from ..explain.base import Explanation
from ..flows import FlowIndex

__all__ = ["FlowStatistics", "flow_statistics", "flows_per_edge_profile",
           "mass_through_nodes", "explanation_concentration"]


@dataclass
class FlowStatistics:
    """Summary of one instance's flow structure."""

    num_flows: int
    num_layers: int
    flows_per_layer_edge_mean: float
    flows_per_layer_edge_max: int
    self_loop_flow_fraction: float
    ambiguous_edge_fraction: float

    def __repr__(self) -> str:
        return (
            f"FlowStatistics(|F|={self.num_flows}, L={self.num_layers}, "
            f"mean flows/edge={self.flows_per_layer_edge_mean:.2f}, "
            f"max={self.flows_per_layer_edge_max}, "
            f"self-loop flows={self.self_loop_flow_fraction:.1%}, "
            f"ambiguous edges={self.ambiguous_edge_fraction:.1%})"
        )


def flow_statistics(index: FlowIndex) -> FlowStatistics:
    """Compute the structural summary for a flow index.

    An edge is *ambiguous* when it carries more than one flow at some
    layer — exactly the condition under which a top-k edge explanation
    cannot identify the underlying flows (the paper's Fig. 1 argument).
    """
    counts = index.flows_per_layer_edge()
    used = counts > 0
    uses_self_loop = (index.layer_edges >= index.num_edges).any(axis=1)
    return FlowStatistics(
        num_flows=index.num_flows,
        num_layers=index.num_layers,
        flows_per_layer_edge_mean=float(counts[used].mean()) if used.any() else 0.0,
        flows_per_layer_edge_max=int(counts.max()) if counts.size else 0,
        self_loop_flow_fraction=float(uses_self_loop.mean()) if index.num_flows else 0.0,
        ambiguous_edge_fraction=float((counts > 1).sum() / max(used.sum(), 1)),
    )


def flows_per_edge_profile(index: FlowIndex) -> np.ndarray:
    """Mean flow load per layer, shape ``(L,)``.

    The paper observes that for node classification "deeper layer edges
    tend to carry a higher number of message flows"; this profile makes
    that measurable.
    """
    counts = index.flows_per_layer_edge().astype(np.float64)
    profile = np.zeros(index.num_layers)
    for l in range(index.num_layers):
        used = counts[l] > 0
        profile[l] = counts[l][used].mean() if used.any() else 0.0
    return profile


def mass_through_nodes(explanation: Explanation, nodes: set[int]) -> float:
    """Fraction of positive flow importance passing through ``nodes``.

    Node ids refer to the original graph when the explanation carries a
    context mapping.
    """
    if explanation.flow_scores is None or explanation.flow_index is None:
        raise EvaluationError(f"{explanation.method} carries no flow scores")
    sequences = explanation.flow_index.nodes
    if explanation.context_node_ids is not None:
        sequences = explanation.context_node_ids[sequences]
    weights = np.maximum(explanation.flow_scores, 0.0)
    total = weights.sum()
    if total <= 0:
        return 0.0
    hits = np.array([any(int(v) in nodes for v in seq) for seq in sequences])
    return float(weights[hits].sum() / total)


def explanation_concentration(explanation: Explanation, k: int = 10) -> float:
    """Share of total positive edge importance held by the top-``k`` edges.

    1.0 means the explanation is fully concentrated on k edges; values near
    k/E mean it is as diffuse as uniform scores.
    """
    scores = np.maximum(explanation.edge_scores, 0.0)
    total = scores.sum()
    if total <= 0:
        raise EvaluationError("explanation has no positive edge mass")
    top = scores[explanation.top_edges(k)]
    return float(top.sum() / total)
