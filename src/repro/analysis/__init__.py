"""Analysis utilities: method agreement, stability, flow statistics."""

from .agreement import (
    agreement_matrix,
    edge_rank_correlation,
    top_edge_overlap,
    top_flow_overlap,
)
from .flow_stats import (
    FlowStatistics,
    explanation_concentration,
    flow_statistics,
    flows_per_edge_profile,
    mass_through_nodes,
)
from .stability import StabilityReport, perturbation_stability, seed_stability

__all__ = [
    "edge_rank_correlation",
    "top_edge_overlap",
    "top_flow_overlap",
    "agreement_matrix",
    "StabilityReport",
    "seed_stability",
    "perturbation_stability",
    "FlowStatistics",
    "flow_statistics",
    "flows_per_edge_profile",
    "mass_through_nodes",
    "explanation_concentration",
]
