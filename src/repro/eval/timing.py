"""Wall-clock measurement of explainers (paper Table V).

The paper reports mean per-instance running time for every method on every
dataset. :func:`time_explainer` runs an explainer over a list of instances
and returns timing statistics; :func:`scaling_sweep` measures runtime as a
function of flow count (the empirical counterpart of Table II's complexity
analysis).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..explain.base import Explainer, Explanation
from ..obs.counters import PERF, PerfCounters
from .fidelity import Instance

__all__ = ["TimingResult", "time_explainer", "PERF"]


@dataclass
class TimingResult:
    """Per-instance timing statistics for one (method, dataset) cell."""

    method: str
    total_seconds: float
    per_instance: list[float]
    explanations: list[Explanation]
    #: Engine activity during the run: forward / enumeration / cache-hit
    #: counters and stage wall-clocks (delta of the global PERF counters).
    counters: dict = field(default_factory=dict)

    @property
    def mean_seconds(self) -> float:
        return float(np.mean(self.per_instance))

    @property
    def std_seconds(self) -> float:
        return float(np.std(self.per_instance))

    def __repr__(self) -> str:
        return (
            f"TimingResult({self.method}: mean {self.mean_seconds:.3f}s "
            f"± {self.std_seconds:.3f} over {len(self.per_instance)} instances)"
        )


def time_explainer(explainer: Explainer, instances: list[Instance], *,
                   mode: str = "factual") -> TimingResult:
    """Explain every instance, recording wall-clock per call."""
    per_instance = []
    explanations = []
    before = PERF.snapshot()
    t_start = time.perf_counter()
    for inst in instances:
        t0 = time.perf_counter()
        explanations.append(explainer.explain(inst.graph, target=inst.target, mode=mode))
        per_instance.append(time.perf_counter() - t0)
    return TimingResult(
        method=explainer.name,
        total_seconds=time.perf_counter() - t_start,
        per_instance=per_instance,
        explanations=explanations,
        counters=PerfCounters.delta(before, PERF.snapshot()),
    )
