"""Evaluation: fidelity, AUC, sparsity control, timing, experiment runners."""

from .auc import explanation_auc, mean_explanation_auc, roc_auc
from .benchgate import check_run, load_latest_run, load_reference, run_bench_check
from .fidelity import (
    Instance,
    class_probability,
    fidelity_curve,
    fidelity_minus,
    fidelity_plus,
)
from .sparsity import (
    explanatory_subgraph,
    select_explanatory_edges,
    unexplanatory_subgraph,
)
from .experiments import (
    ALL_METHODS,
    COUNTERFACTUAL_METHODS,
    DEFAULT_SPARSITIES,
    FACTUAL_METHODS,
    ExecutionConfig,
    ExperimentConfig,
    build_instances,
    method_config,
    run_alpha_sensitivity,
    run_auc_experiment,
    run_dataset_table,
    run_explainer,
    run_fidelity_experiment,
    run_runtime_experiment,
)
from .report import build_report, collect_artifacts, write_report
from .sanity import SanityCheckResult, model_randomization_check, randomize_model
from .timing import TimingResult, time_explainer

__all__ = [
    "check_run",
    "load_latest_run",
    "load_reference",
    "run_bench_check",
    "ExecutionConfig",
    "ExperimentConfig",
    "build_report",
    "collect_artifacts",
    "write_report",
    "SanityCheckResult",
    "model_randomization_check",
    "randomize_model",
    "ALL_METHODS",
    "FACTUAL_METHODS",
    "COUNTERFACTUAL_METHODS",
    "DEFAULT_SPARSITIES",
    "method_config",
    "build_instances",
    "run_explainer",
    "run_fidelity_experiment",
    "run_auc_experiment",
    "run_runtime_experiment",
    "run_alpha_sensitivity",
    "run_dataset_table",
    "Instance",
    "class_probability",
    "fidelity_minus",
    "fidelity_plus",
    "fidelity_curve",
    "roc_auc",
    "explanation_auc",
    "mean_explanation_auc",
    "select_explanatory_edges",
    "explanatory_subgraph",
    "unexplanatory_subgraph",
    "TimingResult",
    "time_explainer",
]
