"""Fidelity metrics (paper Eqs. 10 and 11).

``Fidelity− = mean_i [ P(y_i | G_i) − P(y_i | G_i^(s)) ]`` — probability
drop when keeping only the explanatory edges (smaller = better factual
explanation; negative values mean removing noise *raised* the predicted
probability).

``Fidelity+ = mean_i [ P(y_i | G_i) − P(y_i | G_i^(s̄)) ]`` — probability
drop after removing the explanatory edges (larger = better counterfactual
explanation).

``y_i`` is the model's predicted class on the original instance (the class
each explainer was asked to explain).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EvaluationError
from ..explain.base import Explanation
from ..explain.target import ExplainTarget, as_node_id
from ..graph import Graph
from ..nn.models import GNN
from ..obs import span
from ..obs.names import SPAN_FIDELITY_SWEEP
from .sparsity import (
    explanatory_keep_mask,
    explanatory_subgraph,
    unexplanatory_keep_mask,
    unexplanatory_subgraph,
)

__all__ = ["Instance", "class_probability", "fidelity_minus", "fidelity_plus",
           "fidelity_curve"]


@dataclass
class Instance:
    """One evaluation instance: a graph and what to explain in it.

    ``target`` is an :class:`~repro.explain.target.ExplainTarget`
    (``ExplainTarget.node(i)`` for node tasks, ``None`` for whole-graph
    instances); legacy records carrying bare node ids keep working one
    release — consumers resolve through
    :func:`~repro.explain.target.as_node_id`.
    """

    graph: Graph
    target: ExplainTarget | int | None = None


def class_probability(model: GNN, graph: Graph, class_idx: int, *,
                      target: ExplainTarget | int | None = None) -> float:
    """``P_Φ(class | graph)`` at the target node / for the graph."""
    proba = model.predict_proba(graph)
    node = as_node_id(target)
    row = proba[node] if node is not None else proba[0]
    return float(row[class_idx])


def _fidelity(model: GNN, instances: list[Instance], explanations: list[Explanation],
              sparsity: float, *, remove_explanatory: bool) -> float:
    if len(instances) != len(explanations):
        raise EvaluationError(
            f"{len(instances)} instances but {len(explanations)} explanations"
        )
    if not instances:
        raise EvaluationError("fidelity requires at least one instance")
    drops = []
    for inst, exp in zip(instances, explanations):
        class_idx = exp.predicted_class
        p_orig = class_probability(model, inst.graph, class_idx, target=inst.target)
        builder = unexplanatory_subgraph if remove_explanatory else explanatory_subgraph
        perturbed = builder(inst.graph, exp.edge_scores, sparsity,
                            candidate_edges=exp.context_edge_positions)
        p_pert = class_probability(model, perturbed, class_idx, target=inst.target)
        drops.append(p_orig - p_pert)
    return float(np.mean(drops))


def fidelity_minus(model: GNN, instances: list[Instance],
                   explanations: list[Explanation], sparsity: float) -> float:
    """Eq. (10): mean probability drop keeping only explanatory edges."""
    return _fidelity(model, instances, explanations, sparsity, remove_explanatory=False)


def fidelity_plus(model: GNN, instances: list[Instance],
                  explanations: list[Explanation], sparsity: float) -> float:
    """Eq. (11): mean probability drop after removing explanatory edges."""
    return _fidelity(model, instances, explanations, sparsity, remove_explanatory=True)


def fidelity_curve(model: GNN, instances: list[Instance],
                   explanations: list[Explanation], sparsities: list[float],
                   *, metric: str = "minus", batched: bool = True) -> dict[float, float]:
    """Fidelity over a sparsity grid — one line of Fig. 3 / Fig. 4.

    The batched path visits each instance once: ``p_orig`` is computed a
    single time and the whole sparsity grid is evaluated in one structural
    masked forward (binary retention masks are exact edge removal).
    ``batched=False`` keeps the original one-pruned-graph-per-(instance,
    sparsity) sweep; the two agree to float tolerance.
    """
    if metric not in ("minus", "plus"):
        raise EvaluationError(f"metric must be 'minus' or 'plus', got {metric!r}")
    with span(SPAN_FIDELITY_SWEEP, metric=metric, batched=batched,
              num_instances=len(instances)):
        if not batched:
            fn = fidelity_minus if metric == "minus" else fidelity_plus
            return {float(s): fn(model, instances, explanations, s) for s in sparsities}

        if len(instances) != len(explanations):
            raise EvaluationError(
                f"{len(instances)} instances but {len(explanations)} explanations"
            )
        if not instances:
            raise EvaluationError("fidelity requires at least one instance")
        mask_fn = unexplanatory_keep_mask if metric == "plus" else explanatory_keep_mask
        num_layers = model.num_layers
        drops = np.zeros(len(sparsities))
        for inst, exp in zip(instances, explanations):
            class_idx = exp.predicted_class
            p_orig = class_probability(model, inst.graph, class_idx, target=inst.target)
            E, N = inst.graph.num_edges, inst.graph.num_nodes
            mask_stack = np.ones((len(sparsities), num_layers, E + N))
            for j, s in enumerate(sparsities):
                keep = mask_fn(E, exp.edge_scores, float(s),
                               candidate_edges=exp.context_edge_positions)
                mask_stack[j, :, :E] = keep.astype(np.float64)
            probs = model.predict_proba_batch(inst.graph, mask_stack, structural=True)
            node = as_node_id(inst.target)
            row = node if node is not None else 0
            drops += p_orig - probs[:, row, class_idx]
        return {float(s): float(d / len(instances)) for s, d in zip(sparsities, drops)}
