"""Benchmark regression gate: diff the latest run against committed floors.

``BENCH_perf.json`` is the committed snapshot of the perf smoke benchmark —
every workload entry embeds the acceptance threshold it was generated
under (``floor`` / ``speedup_floor`` / ``ceiling`` / ``grad_tol``), and
``BENCH_history.jsonl`` accumulates one JSON line per run. The gate reads
the **latest parseable** history record and re-applies the **committed**
thresholds to it, so a perf regression (or a workload silently dropped
from the harness) fails CI even when the run itself exited green — the
smoke run on shared runners is advisory (``|| true``), the gate on the
committed artifacts is not.

Exit contract (``repro bench --check``):

* ``0`` — every committed workload present in the latest run and within
  its thresholds;
* ``1`` — at least one regression (missing workload, floor not met,
  ceiling exceeded, gradient parity broken);
* ``2`` — artifacts unreadable (missing files, no parseable history
  line, reference without a ``workloads`` table) — raised internally as
  :class:`~repro.errors.BenchError`.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import BenchError

__all__ = [
    "load_latest_run",
    "load_reference",
    "check_run",
    "run_bench_check",
]

#: The batched-engine headline workloads: the committed global
#: ``speedup_floor`` must be met by at least MIN_WINS of them (mirrors the
#: acceptance rule the smoke benchmark itself applies).
HEADLINE_WORKLOADS = ("flowx", "gnn_lrp", "fidelity_curve")
MIN_WINS = 2


def load_latest_run(history_path: str | Path) -> dict:
    """Latest parseable record of ``BENCH_history.jsonl``.

    Scans from the end so a truncated final line (a run killed mid-append)
    falls back to the last complete record instead of failing the gate.
    """
    path = Path(history_path)
    if not path.is_file():
        raise BenchError(f"benchmark history not found: {path}")
    for line in reversed(path.read_text(encoding="utf-8").splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and isinstance(record.get("payload"), dict):
            return record
    raise BenchError(f"no parseable run record in {path}")


def load_reference(reference_path: str | Path) -> dict:
    """The committed ``BENCH_perf.json`` payload (floors + workload table)."""
    path = Path(reference_path)
    if not path.is_file():
        raise BenchError(f"benchmark reference not found: {path}")
    try:
        reference = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BenchError(f"malformed benchmark reference {path}: {exc}") from exc
    if not isinstance(reference, dict) or \
            not isinstance(reference.get("workloads"), dict):
        raise BenchError(f"benchmark reference {path} has no workload table")
    return reference


def _check_workload(name: str, ref: dict, got: dict) -> list[str]:
    """Apply the thresholds embedded in one committed workload entry."""
    failures = []
    if "floor" in ref:
        value = got.get("speedup", 0.0)
        if value < ref["floor"]:
            failures.append(
                f"{name}: speedup {value} below committed floor {ref['floor']}")
    if "speedup_floor" in ref:
        # Which measurement the floor governs depends on the workload
        # shape: multi-size workloads gate on their largest size,
        # runner_scaling on the deterministic orchestration benchmark.
        if "speedup_largest" in ref:
            key, value = "speedup_largest", got.get("speedup_largest", 0.0)
        elif "orchestration" in ref:
            key = "orchestration.speedup"
            value = got.get("orchestration", {}).get("speedup", 0.0)
        else:
            key, value = "speedup", got.get("speedup", 0.0)
        if value < ref["speedup_floor"]:
            failures.append(
                f"{name}: {key} {value} below committed floor "
                f"{ref['speedup_floor']}")
    if "ceiling" in ref:
        value = got.get("overhead_fraction", float("inf"))
        if value >= ref["ceiling"]:
            failures.append(
                f"{name}: overhead_fraction {value} at or above committed "
                f"ceiling {ref['ceiling']}")
    if "memory_ratio_ceiling" in ref:
        # Sampled-path workloads: peak traced memory relative to the
        # full-graph path must stay under the committed ceiling — the
        # bounded-by-receptive-field claim, enforced numerically.
        value = got.get("memory_ratio", float("inf"))
        if value >= ref["memory_ratio_ceiling"]:
            failures.append(
                f"{name}: memory_ratio {value} at or above committed "
                f"ceiling {ref['memory_ratio_ceiling']}")
    if "grad_tol" in ref:
        value = got.get("max_grad_diff", float("inf"))
        if value >= ref["grad_tol"]:
            failures.append(
                f"{name}: max_grad_diff {value} at or above committed "
                f"tolerance {ref['grad_tol']}")
    return failures


def check_run(payload: dict, reference: dict) -> list[str]:
    """Failed checks of ``payload`` against committed floors (empty = pass).

    Every workload present in the committed reference must be present in
    the run — a workload that silently disappears from the harness is a
    regression, not a pass — and must satisfy the thresholds its committed
    entry embeds. The global ``speedup_floor``/:data:`MIN_WINS` rule over
    the headline batched-engine workloads is re-applied as well.
    """
    failures: list[str] = []
    ref_workloads = reference["workloads"]
    run_workloads = payload.get("workloads")
    if not isinstance(run_workloads, dict):
        return [f"run payload has no workload table "
                f"(keys: {sorted(payload)})"]
    for name, ref in sorted(ref_workloads.items()):
        got = run_workloads.get(name)
        if not isinstance(got, dict):
            failures.append(f"{name}: missing from the latest run")
            continue
        failures.extend(_check_workload(name, ref, got))

    floor = reference.get("speedup_floor")
    if floor is not None:
        trio = [n for n in HEADLINE_WORKLOADS if n in ref_workloads]
        wins = [n for n in trio
                if isinstance(run_workloads.get(n), dict)
                and run_workloads[n].get("speedup", 0.0) >= floor]
        need = min(MIN_WINS, len(trio))
        if len(wins) < need:
            failures.append(
                f"only {len(wins)} of {'/'.join(trio)} reached the committed "
                f"{floor}x floor (need {need}): {wins or 'none'}")
    return failures


def run_bench_check(*, history_path: str | Path = "BENCH_history.jsonl",
                    reference_path: str | Path = "BENCH_perf.json",
                    verbose: bool = True) -> int:
    """The ``repro bench --check`` entry point; returns the exit code."""
    try:
        record = load_latest_run(history_path)
        reference = load_reference(reference_path)
    except BenchError as exc:
        if verbose:
            print(f"bench --check: {exc}")
        return 2
    failures = check_run(record["payload"], reference)
    if verbose:
        stamp = record.get("timestamp", "?")
        sha = record.get("git_sha") or "?"
        if failures:
            print(f"bench --check: FAIL — run {stamp} ({sha}) regressed "
                  f"against committed floors:")
            for failure in failures:
                print(f"  {failure}")
        else:
            n = len(reference["workloads"])
            print(f"bench --check: PASS — run {stamp} ({sha}) meets the "
                  f"committed floors of all {n} workloads")
    return 1 if failures else 0
