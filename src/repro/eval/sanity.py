"""Sanity checks for explanations (Adebayo et al., 2018 — the paper's [1]).

The model-randomization test: a *faithful* explanation must depend on the
model's learned parameters, so re-explaining with randomized weights
should produce a very different explanation. Methods whose output is
insensitive to the weights (e.g. ones that effectively echo graph
structure) fail the check — the critique the paper levels at LRP-style
attributions.

Also provides the data-randomization variant (random labels → retrained
model → explanations should change) in a lighter form: explanation vs. a
label-shuffled retrained target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.agreement import edge_rank_correlation, top_edge_overlap
from ..errors import EvaluationError
from ..explain.target import ExplainTarget
from ..graph import Graph
from ..nn.models import GNN
from ..rng import ensure_rng

__all__ = ["SanityCheckResult", "randomize_model", "model_randomization_check"]


@dataclass
class SanityCheckResult:
    """Outcome of a model-randomization sanity check.

    Low similarity = the method passes (its explanations track the model).
    """

    rank_correlation: float
    top_k_overlap: float
    passes: bool
    threshold: float

    def __repr__(self) -> str:
        verdict = "PASS" if self.passes else "FAIL"
        return (
            f"SanityCheckResult({verdict}: rank_corr={self.rank_correlation:.3f}, "
            f"top_k_overlap={self.top_k_overlap:.2f}, threshold={self.threshold})"
        )


def randomize_model(model: GNN, *, rng: int | np.random.Generator | None = 0,
                    scale: float = 0.5) -> GNN:
    """Return a copy of ``model`` with weights re-drawn from N(0, scale²)."""
    rng = ensure_rng(rng)
    twin = model.clone()
    for param in twin.parameters():
        param.data = rng.normal(0.0, scale, size=param.shape)
    twin.eval()
    return twin


def model_randomization_check(explainer_factory, model: GNN, graph: Graph,
                              *, target: ExplainTarget | int | None = None, k: int = 10,
                              overlap_threshold: float = 0.6,
                              seed: int = 0) -> SanityCheckResult:
    """Run the Adebayo-style model-randomization test for one method.

    Parameters
    ----------
    explainer_factory:
        Callable ``model -> Explainer`` (fresh explainer per model so no
        state leaks across the two runs).
    model:
        The trained target.
    graph, target:
        The instance to explain.
    k, overlap_threshold:
        The check *passes* when the top-``k`` overlap between the trained
        and randomized explanations falls below ``overlap_threshold``.
    """
    trained_exp = explainer_factory(model).explain(graph, target=target)
    random_model = randomize_model(model, rng=seed)
    random_exp = explainer_factory(random_model).explain(graph, target=target)

    if trained_exp.edge_scores.shape != random_exp.edge_scores.shape:
        raise EvaluationError("explanations cover different edge sets")
    correlation = edge_rank_correlation(trained_exp, random_exp)
    overlap = top_edge_overlap(trained_exp, random_exp, k=k)
    return SanityCheckResult(
        rank_correlation=correlation,
        top_k_overlap=overlap,
        passes=overlap < overlap_threshold,
        threshold=overlap_threshold,
    )
