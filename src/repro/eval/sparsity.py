"""Sparsity-controlled subgraph construction.

The paper's quantitative protocol (§V-B): at sparsity ratio ``s`` (the
proportion of edges removed), the *explanatory* subgraph ``G^(s)`` keeps
the top ``(1-s)·|E|`` scoring edges, and the *unexplanatory* subgraph
``G^(s̄)`` is its complement — the graph with those explanatory edges
removed. Fidelity− evaluates ``G^(s)``; Fidelity+ evaluates ``G^(s̄)``.

For node-classification instances the ranking and removal are restricted
to the target's L-hop computational subgraph — edges outside it cannot
affect the explained prediction and are always retained.
"""

from __future__ import annotations

import numpy as np

from ..errors import EvaluationError
from ..graph import Graph

__all__ = ["select_explanatory_edges", "explanatory_keep_mask", "unexplanatory_keep_mask",
           "explanatory_subgraph", "unexplanatory_subgraph"]


def select_explanatory_edges(edge_scores: np.ndarray, sparsity: float, *,
                             candidate_edges: np.ndarray | None = None) -> np.ndarray:
    """Edge indices forming the explanatory set at a sparsity level.

    Parameters
    ----------
    edge_scores:
        ``(E,)`` importance per data edge.
    sparsity:
        Fraction of candidate edges to *remove*; the explanatory set keeps
        the top ``(1 - sparsity)`` fraction.
    candidate_edges:
        Edge indices eligible for ranking (node tasks: the L-hop context).
        ``None`` means all edges.
    """
    if not 0.0 <= sparsity < 1.0:
        raise EvaluationError(f"sparsity must be in [0, 1), got {sparsity}")
    edge_scores = np.asarray(edge_scores, dtype=np.float64)
    if candidate_edges is None:
        candidate_edges = np.arange(edge_scores.shape[0])
    candidate_edges = np.asarray(candidate_edges, dtype=np.int64)
    if candidate_edges.size == 0:
        return candidate_edges
    keep = max(1, int(round((1.0 - sparsity) * candidate_edges.size)))
    order = np.argsort(-edge_scores[candidate_edges], kind="stable")
    return candidate_edges[order[:keep]]


def explanatory_keep_mask(num_edges: int, edge_scores: np.ndarray, sparsity: float,
                          *, candidate_edges: np.ndarray | None = None) -> np.ndarray:
    """Boolean ``(E,)`` retention mask of ``G^(s)``.

    Keeps the explanatory candidates plus every edge outside the candidate
    set; the masked-forward engine consumes this directly, and
    :func:`explanatory_subgraph` materializes it as a pruned graph.
    """
    chosen = select_explanatory_edges(edge_scores, sparsity,
                                      candidate_edges=candidate_edges)
    keep = np.ones(num_edges, dtype=bool)
    if candidate_edges is None:
        keep[:] = False
    else:
        keep[np.asarray(candidate_edges, dtype=np.int64)] = False
    keep[chosen] = True
    return keep


def unexplanatory_keep_mask(num_edges: int, edge_scores: np.ndarray, sparsity: float,
                            *, candidate_edges: np.ndarray | None = None) -> np.ndarray:
    """Boolean ``(E,)`` retention mask of ``G^(s̄)``."""
    chosen = select_explanatory_edges(edge_scores, sparsity,
                                      candidate_edges=candidate_edges)
    keep = np.ones(num_edges, dtype=bool)
    keep[chosen] = False
    return keep


def explanatory_subgraph(graph: Graph, edge_scores: np.ndarray, sparsity: float,
                         *, candidate_edges: np.ndarray | None = None) -> Graph:
    """``G^(s)``: keep explanatory edges, drop the other candidates.

    Edges outside ``candidate_edges`` are always retained.
    """
    keep = explanatory_keep_mask(graph.num_edges, edge_scores, sparsity,
                                 candidate_edges=candidate_edges)
    return graph.with_edges(keep)


def unexplanatory_subgraph(graph: Graph, edge_scores: np.ndarray, sparsity: float,
                           *, candidate_edges: np.ndarray | None = None) -> Graph:
    """``G^(s̄)``: remove the explanatory edges, keep everything else."""
    keep = unexplanatory_keep_mask(graph.num_edges, edge_scores, sparsity,
                                   candidate_edges=candidate_edges)
    return graph.with_edges(keep)
