"""Experiment runners: one function per paper artifact.

Each runner reproduces the workload behind a table or figure of the paper
and returns structured results plus formatted text rows. The benchmark
harness (``benchmarks/``) wraps these and writes the outputs to
``benchmarks/results/``.

Cost control — note the defaults are **cheap mode**, not paper scale:
``REPRO_SCALE`` scales dataset sizes, ``REPRO_INSTANCES`` sets instances
per dataset (**default 8**; the paper uses 50) and ``REPRO_EFFORT``
multiplies explainer epoch/sample budgets (**default 0.2**; ``1.0``
reproduces the paper's §V-A settings). Numbers produced at the defaults
are smoke-scale and must not be read as paper-grade reproductions — set
``REPRO_INSTANCES=50 REPRO_EFFORT=1`` (and ``REPRO_SCALE=1``) for those.

The grid runners (fidelity / AUC / runtime) also accept ``jobs=`` and
``resume=``: ``jobs=N`` shards the artifact into per-``(method,
instance-chunk)`` work units executed by :mod:`repro.runner` (``N=1``
inline, ``N>1`` across a crash-isolated worker pool), and ``resume=``
names a JSONL journal that checkpoints every job so an interrupted run
picks up where it left off.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..datasets import GraphDataset, NodeDataset, load_dataset
from ..errors import EvaluationError
from ..execution import (
    ExecutionConfig,
    accept_legacy_positionals,
    coerce_execution,
    resolve_trace_path,
)
from ..explain import make_explainer
from ..explain.base import Explainer
from ..explain.target import ExplainTarget, as_node_id
from ..nn.models import GNN
from ..nn.zoo import get_model
from ..obs import span
from ..obs.names import SPAN_FIT, SPAN_METHOD
from ..rng import ensure_rng
from .auc import mean_explanation_auc
from .fidelity import Instance, fidelity_curve
from .timing import TimingResult, time_explainer

__all__ = [
    "ExperimentConfig",
    "ExecutionConfig",
    "method_config",
    "build_instances",
    "run_explainer",
    "run_fidelity_experiment",
    "run_auc_experiment",
    "run_runtime_experiment",
    "run_alpha_sensitivity",
    "run_dataset_table",
    "DEFAULT_SPARSITIES",
    "ALL_METHODS",
    "FACTUAL_METHODS",
    "COUNTERFACTUAL_METHODS",
]

DEFAULT_SPARSITIES = (0.5, 0.6, 0.7, 0.8, 0.9)

# Method rosters as evaluated in the paper's figures.
ALL_METHODS = ("gradcam", "deeplift", "gnnexplainer", "pgexplainer", "graphmask",
               "pgm_explainer", "subgraphx", "gnn_lrp", "flowx", "revelio")
FACTUAL_METHODS = ALL_METHODS
COUNTERFACTUAL_METHODS = ("gnnexplainer", "pgexplainer", "graphmask", "flowx", "revelio")

# Datasets SubgraphX is restricted to (paper §V-B: "the last four datasets").
SUBGRAPHX_DATASETS = ("tree_cycles", "mutag", "bbbp", "ba_2motifs")


def _effort() -> float:
    return float(os.environ.get("REPRO_EFFORT", "0.2"))


def _instances_per_dataset() -> int:
    return int(os.environ.get("REPRO_INSTANCES", "8"))


@dataclass
class ExperimentConfig:
    """Knobs shared by all runners."""

    scale: float | None = None          # None → REPRO_SCALE
    num_instances: int | None = None    # None → REPRO_INSTANCES (paper: 50)
    effort: float | None = None         # None → REPRO_EFFORT (1.0 = paper)
    seed: int = 0
    sparsities: tuple[float, ...] = DEFAULT_SPARSITIES
    alpha: float = 0.05                 # Revelio sparsity constraint
    extra: dict = field(default_factory=dict)

    def resolved_instances(self) -> int:
        return self.num_instances if self.num_instances is not None else _instances_per_dataset()

    def resolved_effort(self) -> float:
        return self.effort if self.effort is not None else _effort()


def method_config(method: str, effort: float, *, alpha: float = 0.05) -> dict:
    """Per-method constructor kwargs at an effort level.

    ``effort=1.0`` reproduces the paper's §V-A settings (500/500/200
    epochs, original learning rates); smaller values scale the iteration
    budgets proportionally, with floors that keep methods functional.
    """
    def epochs(paper: int, floor: int = 25) -> int:
        return max(floor, int(round(paper * effort)))

    configs: dict[str, dict] = {
        "gradcam": {},
        "deeplift": {},
        "random": {},
        "gnnexplainer": {"epochs": epochs(500), "lr": 1e-2},
        "pgexplainer": {"epochs": epochs(500), "lr": 3e-3},
        "graphmask": {"epochs": epochs(200), "lr": 1e-2},
        "pgm_explainer": {"num_samples": epochs(100, floor=20)},
        "subgraphx": {"rollouts": epochs(20, floor=5),
                      "shapley_samples": epochs(8, floor=3)},
        "gnn_lrp": {},
        "flowx": {"samples": epochs(10, floor=2), "finetune_epochs": epochs(100)},
        "revelio": {"epochs": epochs(500), "lr": 1e-2, "alpha": alpha},
    }
    if method not in configs:
        raise EvaluationError(f"unknown method {method!r}")
    return configs[method]


def method_applicable(method: str, dataset_name: str, conv: str) -> bool:
    """Paper-documented compatibility matrix."""
    if conv == "gat" and dataset_name in ("ba_shapes", "tree_cycles", "ba_2motifs"):
        return False  # GAT N/A on synthetics (Table III)
    if method == "gnn_lrp" and conv == "gat":
        return False  # GNN-LRP incompatible with GAT (§V-A)
    if method == "subgraphx" and (dataset_name not in SUBGRAPHX_DATASETS or conv == "gat"):
        return False  # SubgraphX restricted for cost (§V-B)
    return True


# ----------------------------------------------------------------------
# instance construction
# ----------------------------------------------------------------------
def build_instances(dataset: NodeDataset | GraphDataset, n: int, *,
                    seed: int = 0, motif_only: bool = False,
                    correct_only: bool = False, model: GNN | None = None) -> list[Instance]:
    """Sample evaluation instances per the paper's protocol.

    §V-B fidelity: random instances regardless of labels/predictions.
    Table IV AUC: motif instances with correct predictions
    (``motif_only=True, correct_only=True``; requires ``model``).
    """
    rng = ensure_rng(seed)
    if dataset.task == "node":
        candidates = dataset.sample_targets(8 * n if correct_only else n, rng=rng,
                                            motif_only=motif_only)
        instances = [Instance(dataset.graph, ExplainTarget.node(int(v)))
                     for v in candidates]
        if correct_only:
            if model is None:
                raise EvaluationError("correct_only requires a model")
            pred = model.predict(dataset.graph)
            instances = [i for i in instances
                         if pred[as_node_id(i.target)] == dataset.graph.y[as_node_id(i.target)]]
        return instances[:n]
    candidates = dataset.sample_targets(8 * n if correct_only else n, rng=rng,
                                        motif_only=motif_only)
    instances = [Instance(dataset.graphs[int(i)], None) for i in candidates]
    if correct_only:
        if model is None:
            raise EvaluationError("correct_only requires a model")
        instances = [i for i in instances if model.predict(i.graph)[0] == int(i.graph.y)]
    return instances[:n]


def _fit_if_group_method(explainer: Explainer, instances: list[Instance],
                         mode: str) -> None:
    """PGExplainer / GraphMask train once over the instance group."""
    if not hasattr(explainer, "fit"):
        return
    pairs = []
    for inst in instances:
        if explainer.model.task == "node":
            ctx = explainer.node_context(inst.graph, as_node_id(inst.target))
            pairs.append((ctx.subgraph, ctx.local_target))
        else:
            pairs.append((inst.graph, None))
    explainer.fit(pairs, mode=mode)


def run_explainer(method: str, model: GNN, instances: list[Instance], *,
                  mode: str = "factual", effort: float | None = None,
                  alpha: float = 0.05, seed: int = 0) -> TimingResult:
    """Instantiate, (group-)fit and run one method over instances."""
    effort = effort if effort is not None else _effort()
    explainer = make_explainer(method, model, seed=seed,
                               **method_config(method, effort, alpha=alpha))
    if hasattr(explainer, "fit"):
        with span(SPAN_FIT, method=method):
            _fit_if_group_method(explainer, instances, mode)
    # Methods without a counterfactual objective reuse factual scores
    # ("we use the original explanations provided by …", §V-B).
    run_mode = mode if explainer.supports_counterfactual else "factual"
    result = time_explainer(explainer, instances, mode=run_mode)
    for e in result.explanations:
        e.mode = mode
    return result


# ----------------------------------------------------------------------
# artifact runners
# ----------------------------------------------------------------------
def _run_serial(artifact: str, dataset_name: str, conv: str,
                methods: tuple[str, ...], mode: str, config: ExperimentConfig,
                execution: ExecutionConfig, dataset, body) -> dict:
    """Run ``body()`` for a serial artifact, tracing it when requested."""
    trace_target = resolve_trace_path(
        execution.trace, execution.resume,
        f"trace_{artifact}_{dataset_name}_{conv}.jsonl")
    if trace_target is None:
        return body()
    from ..obs import TraceSession, dataset_fingerprint

    session = TraceSession(
        trace_target,
        run_meta={"artifact": artifact, "dataset": dataset_name, "conv": conv,
                  "methods": list(methods), "mode": mode, "seed": config.seed,
                  "num_instances": config.resolved_instances(),
                  "effort": config.resolved_effort(), "alpha": config.alpha,
                  "jobs": None},
        fingerprint=dataset_fingerprint(dataset),
    )
    with session:
        result = body()
    session.finalize(result)
    return result


def run_fidelity_experiment(dataset_name: str, conv: str, methods: tuple[str, ...],
                            *legacy_args,
                            mode: str = "factual",
                            config: ExperimentConfig | None = None,
                            execution: ExecutionConfig | None = None,
                            **kwargs) -> dict:
    """Fig. 3 (factual, Fidelity−) / Fig. 4 (counterfactual, Fidelity+).

    Returns ``{"curves": {method: {sparsity: fidelity}}, "rows": [str]}``.
    Everything after the three leading positionals is keyword-only;
    execution options (``jobs``, ``resume``, ``trace``, …) travel in one
    :class:`~repro.execution.ExecutionConfig`. With ``jobs``/``resume``
    set the artifact runs through the sharded runner (see module
    docstring); for a fixed config the aggregated rows are byte-identical
    for any worker count and across ``resume``. Old flat kwargs
    (``jobs=4``) and positional ``mode``/``config`` still work for one
    release with a :class:`DeprecationWarning`.
    """
    legacy = accept_legacy_positionals("run_fidelity_experiment", legacy_args,
                                       ("mode", "config"))
    mode = legacy.get("mode", mode)
    config = legacy.get("config", config) or ExperimentConfig()
    execution = coerce_execution("run_fidelity_experiment", execution, kwargs,
                                 extra_valid=("mode", "config"))
    if execution.sharded:
        from ..runner import run_planned_experiment

        return run_planned_experiment("fidelity", dataset_name, conv, methods,
                                      mode=mode, config=config,
                                      execution=execution)
    model, dataset, _ = get_model(dataset_name, conv, scale=config.scale, seed=config.seed)
    instances = build_instances(dataset, config.resolved_instances(), seed=config.seed)
    fid_metric = "minus" if mode == "factual" else "plus"

    def body() -> dict:
        curves: dict[str, dict[float, float]] = {}
        rows: list[str] = []
        for method in methods:
            if not method_applicable(method, dataset_name, conv):
                continue
            with span(SPAN_METHOD, method=method):
                result = run_explainer(method, model, instances, mode=mode,
                                       effort=config.resolved_effort(),
                                       alpha=config.alpha, seed=config.seed)
                curve = fidelity_curve(model, instances, result.explanations,
                                       list(config.sparsities), metric=fid_metric,
                                       batched=execution.batched)
            curves[method] = curve
            values = "  ".join(f"{curve[s]:+.3f}" for s in config.sparsities)
            rows.append(f"{method:<14} {values}")
        header = f"{'method':<14} " + "  ".join(f"s={s:.1f}" for s in config.sparsities)
        return {"dataset": dataset_name, "conv": conv, "mode": mode,
                "sparsities": list(config.sparsities), "curves": curves,
                "rows": [header, *rows]}

    return _run_serial("fidelity", dataset_name, conv, methods, mode, config,
                       execution, dataset, body)


def run_auc_experiment(dataset_name: str, conv: str, methods: tuple[str, ...],
                       *legacy_args,
                       mode: str = "factual",
                       config: ExperimentConfig | None = None,
                       execution: ExecutionConfig | None = None,
                       **kwargs) -> dict:
    """Table IV: explanation AUC against planted motifs (synthetics only)."""
    legacy = accept_legacy_positionals("run_auc_experiment", legacy_args,
                                       ("mode", "config"))
    mode = legacy.get("mode", mode)
    config = legacy.get("config", config) or ExperimentConfig()
    execution = coerce_execution("run_auc_experiment", execution, kwargs,
                                 extra_valid=("mode", "config"))
    if execution.sharded:
        from ..runner import run_planned_experiment

        return run_planned_experiment("auc", dataset_name, conv, methods,
                                      mode=mode, config=config,
                                      execution=execution)
    model, dataset, _ = get_model(dataset_name, conv, scale=config.scale, seed=config.seed)
    instances = build_instances(dataset, config.resolved_instances(), seed=config.seed,
                                motif_only=True, correct_only=True, model=model)
    if not instances:
        raise EvaluationError(f"{dataset_name}/{conv}: no correctly-predicted motif instances")
    graphs = [inst.graph for inst in instances]

    def body() -> dict:
        aucs: dict[str, float] = {}
        for method in methods:
            if not method_applicable(method, dataset_name, conv):
                continue
            with span(SPAN_METHOD, method=method):
                result = run_explainer(method, model, instances, mode=mode,
                                       effort=config.resolved_effort(),
                                       alpha=config.alpha, seed=config.seed)
                aucs[method] = mean_explanation_auc(graphs, result.explanations)
        rows = [f"{m:<14} {v:.3f}" for m, v in aucs.items()]
        return {"dataset": dataset_name, "conv": conv, "mode": mode,
                "num_instances": len(instances), "auc": aucs, "rows": rows}

    return _run_serial("auc", dataset_name, conv, methods, mode, config,
                       execution, dataset, body)


def run_runtime_experiment(dataset_name: str, conv: str, methods: tuple[str, ...],
                           *legacy_args,
                           config: ExperimentConfig | None = None,
                           execution: ExecutionConfig | None = None,
                           **kwargs) -> dict:
    """Table V: mean running time per instance for each method."""
    legacy = accept_legacy_positionals("run_runtime_experiment", legacy_args,
                                       ("config",))
    config = legacy.get("config", config) or ExperimentConfig()
    execution = coerce_execution("run_runtime_experiment", execution, kwargs,
                                 extra_valid=("config",))
    if execution.sharded:
        from ..runner import run_planned_experiment

        return run_planned_experiment("runtime", dataset_name, conv, methods,
                                      config=config, execution=execution)
    model, dataset, _ = get_model(dataset_name, conv, scale=config.scale, seed=config.seed)
    instances = build_instances(dataset, config.resolved_instances(), seed=config.seed)

    def body() -> dict:
        times: dict[str, float] = {}
        details: dict[str, dict] = {}
        for method in methods:
            if not method_applicable(method, dataset_name, conv):
                continue
            with span(SPAN_METHOD, method=method):
                result = run_explainer(method, model, instances, mode="factual",
                                       effort=config.resolved_effort(),
                                       alpha=config.alpha, seed=config.seed)
            times[method] = result.mean_seconds
            details[method] = {"total": result.total_seconds,
                               "std": result.std_seconds}
            # PGExplainer reports "training (inference)" separately.
            train_s = None
            if result.explanations:
                train_s = result.explanations[0].meta.get("perf", {}).get("train_seconds")
            if train_s:
                details[method]["train_seconds"] = train_s
        rows = []
        for m, v in times.items():
            extra = details[m].get("train_seconds")
            label = f"{v:.3f}" + (f" (train {extra:.1f})" if extra else "")
            rows.append(f"{m:<14} {label}")
        return {"dataset": dataset_name, "conv": conv, "mean_seconds": times,
                "details": details, "rows": rows}

    return _run_serial("runtime", dataset_name, conv, methods, "factual",
                       config, execution, dataset, body)


def run_alpha_sensitivity(dataset_name: str, conv: str, *,
                          alphas: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
                          mode: str = "factual",
                          config: ExperimentConfig | None = None) -> dict:
    """Fig. 5: fidelity across the sparsity grid for several α values."""
    config = config or ExperimentConfig()
    model, dataset, _ = get_model(dataset_name, conv, scale=config.scale, seed=config.seed)
    instances = build_instances(dataset, config.resolved_instances(), seed=config.seed)
    fid_metric = "minus" if mode == "factual" else "plus"

    curves: dict[float, dict[float, float]] = {}
    for alpha in alphas:
        result = run_explainer("revelio", model, instances, mode=mode,
                               effort=config.resolved_effort(), alpha=alpha,
                               seed=config.seed)
        curves[alpha] = fidelity_curve(model, instances, result.explanations,
                                       list(config.sparsities), metric=fid_metric)
    rows = [f"{'alpha':<8} " + "  ".join(f"s={s:.1f}" for s in config.sparsities)]
    for alpha, curve in curves.items():
        rows.append(f"{alpha:<8.2f} " + "  ".join(f"{curve[s]:+.3f}" for s in config.sparsities))
    return {"dataset": dataset_name, "conv": conv, "mode": mode,
            "alphas": list(alphas), "curves": curves, "rows": rows}


def run_dataset_table(*, dataset_names: tuple[str, ...] | None = None,
                      convs: tuple[str, ...] = ("gcn", "gin", "gat"),
                      config: ExperimentConfig | None = None) -> dict:
    """Table III: dataset statistics and target-model accuracies."""
    from ..datasets import DATASET_NAMES

    config = config or ExperimentConfig()
    dataset_names = dataset_names or DATASET_NAMES
    rows = []
    records = {}
    header = (f"{'dataset':<12} {'#graphs':>8} {'#nodes':>9} {'#edges':>9} "
              f"{'#feat':>10} {'#cls':>8} " + " ".join(f"{c:>8}" for c in convs))
    rows.append(header)
    for name in dataset_names:
        dataset = load_dataset(name, scale=config.scale, seed=config.seed)
        stats = dataset.stats()
        accs = {}
        for conv in convs:
            if conv == "gat" and name in ("ba_shapes", "tree_cycles", "ba_2motifs"):
                accs[conv] = None
                continue
            model, _, result = get_model(name, conv, scale=config.scale,
                                         seed=config.seed, dataset=dataset)
            if result is not None:
                accs[conv] = result.test_acc
            else:
                import json
                from ..nn.zoo import RECIPES, TrainRecipe, _cache_key, cache_dir
                recipe = RECIPES.get(name, TrainRecipe())
                scale = config.scale
                if scale is None:
                    from ..datasets import default_scale
                    scale = default_scale()
                key = _cache_key(name, conv, scale, config.seed, recipe)
                meta = cache_dir() / f"{name}_{conv}_{key}.json"
                accs[conv] = json.loads(meta.read_text())["test_acc"] if meta.exists() else float("nan")
        records[name] = {"stats": stats, "accuracy": accs}
        acc_text = " ".join(
            f"{'N/A':>8}" if accs[c] is None else f"{accs[c]:>7.1%}" for c in convs
        )
        rows.append(stats.row() + " " + acc_text)
    return {"records": records, "rows": rows}
