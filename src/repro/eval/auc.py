"""Explanation AUC against planted motifs (paper Table IV).

On synthetic datasets with ground-truth motifs, an explainer's edge scores
are compared to the binary "edge belongs to the motif" labels via ROC AUC
(computed rank-based — the Mann–Whitney U statistic — so no sklearn is
needed). For node-classification instances, the comparison is restricted
to the target's computational subgraph, as in the GNNExplainer protocol.
"""

from __future__ import annotations

import numpy as np

from ..errors import EvaluationError
from ..explain.base import Explanation
from ..graph import Graph

__all__ = ["roc_auc", "explanation_auc", "mean_explanation_auc"]


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Rank-based ROC AUC (ties get average rank).

    Equivalent to ``sklearn.metrics.roc_auc_score`` for binary labels.
    """
    labels = np.asarray(labels, dtype=bool)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise EvaluationError(f"labels {labels.shape} vs scores {scores.shape}")
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise EvaluationError("AUC undefined: need both positive and negative edges")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(scores.size, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1)
    # Average ranks over ties.
    sorted_scores = scores[order]
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    rank_sum = ranks[labels].sum()
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def explanation_auc(graph: Graph, explanation: Explanation) -> float:
    """ROC AUC of one explanation against the graph's motif edges."""
    if graph.motif_edges is None:
        raise EvaluationError("graph has no motif ground truth")
    candidates = explanation.context_edge_positions
    if candidates is None:
        candidates = np.arange(graph.num_edges)
    labels = np.array([
        (int(graph.src[e]), int(graph.dst[e])) in graph.motif_edges for e in candidates
    ])
    scores = explanation.edge_scores[candidates]
    return roc_auc(labels, scores)


def mean_explanation_auc(graphs: list[Graph], explanations: list[Explanation]) -> float:
    """Average AUC over instances, skipping degenerate ones (all-pos/neg)."""
    values = []
    for graph, exp in zip(graphs, explanations):
        try:
            values.append(explanation_auc(graph, exp))
        except EvaluationError:
            continue
    if not values:
        raise EvaluationError("no instance produced a defined AUC")
    return float(np.mean(values))
