"""Aggregate benchmark artifacts into one reproduction report.

``benchmarks/`` writes each regenerated table/figure as a text file; this
module collects them into a single markdown document (the measured
counterpart of EXPERIMENTS.md) so a full run can be shared as one file.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["collect_artifacts", "build_report", "write_report"]

# Display order and titles keyed by filename prefix.
_SECTIONS = (
    ("table2_", "Table II — complexity scaling"),
    ("table3_", "Table III — datasets and target accuracy"),
    ("fig3_", "Fig. 3 — Fidelity− vs sparsity (factual)"),
    ("fig4_", "Fig. 4 — Fidelity+ vs sparsity (counterfactual)"),
    ("table4_", "Table IV — explanation AUC"),
    ("table5_", "Table V — running time"),
    ("fig5_", "Fig. 5 — α sensitivity"),
    ("fig6_", "Fig. 6 — qualitative subgraphs"),
    ("tablevi_", "Table VI — top flows (BA-Shapes)"),
    ("tablevii_", "Table VII — top flows (BA-2motifs)"),
    ("ablation_", "Ablations"),
)


@dataclass
class Artifact:
    """One regenerated table/figure file."""

    name: str
    section: str
    content: str


def _section_for(name: str) -> str | None:
    for prefix, title in _SECTIONS:
        if name.startswith(prefix):
            return title
    return None


def collect_artifacts(results_dir: str | Path) -> list[Artifact]:
    """Load every recognized artifact file under ``results_dir``."""
    results_dir = Path(results_dir)
    artifacts = []
    if not results_dir.exists():
        return artifacts
    for path in sorted(results_dir.glob("*.txt")):
        section = _section_for(path.stem)
        if section is None:
            continue
        artifacts.append(Artifact(name=path.stem, section=section,
                                  content=path.read_text().rstrip()))
    return artifacts


def build_report(results_dir: str | Path, *,
                 title: str = "Revelio reproduction report") -> str:
    """Render all artifacts as one markdown document."""
    artifacts = collect_artifacts(results_dir)
    lines = [f"# {title}", ""]
    if not artifacts:
        lines.append("*(no artifacts found — run `pytest benchmarks/ --benchmark-only`)*")
        return "\n".join(lines) + "\n"

    current = None
    for artifact in artifacts:
        if artifact.section != current:
            current = artifact.section
            lines.append(f"## {current}")
            lines.append("")
        lines.append(f"### `{artifact.name}`")
        lines.append("")
        lines.append("```")
        lines.append(artifact.content)
        lines.append("```")
        lines.append("")
    return "\n".join(lines) + "\n"


def write_report(results_dir: str | Path, output: str | Path) -> Path:
    """Build the report and write it to ``output``; returns the path."""
    output = Path(output)
    output.write_text(build_report(results_dir))
    return output
