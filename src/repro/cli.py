"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands
--------
``repro datasets``                      list datasets with Table III stats
``repro train -d cora -m gcn``          train & cache a target model
``repro explain -d ba_shapes -m gcn -e revelio -t 412``
                                        explain one instance
``repro experiment fidelity -d mutag -m gin --mode factual``
                                        regenerate one artifact's rows
``repro experiment fidelity -d mutag -m gin --jobs 4 --resume runs/fid.jsonl``
                                        sharded + checkpointed variant
``repro experiment fidelity -d mutag -m gin --jobs 4 --trace runs/fid_trace.jsonl``
                                        traced run (merged trace + manifest)
``repro trace summarize runs/fid_trace.jsonl``
                                        per-method, per-stage time breakdown
``repro lint``                          repo-aware static analysis (RPRxxx
                                        rules, per-file + whole-program) over
                                        src/tests/benchmarks/examples; warm
                                        runs reuse a parse cache
                                        (``--no-cache`` to bypass) and
                                        ``--format sarif`` emits SARIF 2.1.0
``repro bench --check``                 gate the latest BENCH_history.jsonl run
                                        against the committed BENCH_perf.json
                                        floors (exit 0 pass / 1 regression /
                                        2 unreadable artifacts)
``repro stats``                         hit/miss/size snapshot of every
                                        process-global cache
``repro serve --port 8731``             explanation-serving daemon (warm model
                                        pool + request coalescing; see
                                        DESIGN.md §12)
"""

from __future__ import annotations

import argparse
import sys

from .datasets import DATASET_NAMES, dataset_task, load_dataset
from .eval.experiments import (
    ALL_METHODS,
    COUNTERFACTUAL_METHODS,
    ExecutionConfig,
    ExperimentConfig,
    run_alpha_sensitivity,
    run_auc_experiment,
    run_dataset_table,
    run_fidelity_experiment,
    run_runtime_experiment,
)
from .explain import make_explainer
from .nn.zoo import get_model

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Revelio reproduction: message-flow explanations for GNNs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list datasets and their statistics")

    p_train = sub.add_parser("train", help="train and cache a target model")
    _common(p_train)

    p_explain = sub.add_parser("explain", help="explain one instance")
    _common(p_explain)
    p_explain.add_argument("-e", "--explainer", default="revelio")
    p_explain.add_argument("-t", "--target", type=int, default=None,
                           help="node id (node tasks) or graph index (graph tasks)")
    p_explain.add_argument("--mode", choices=("factual", "counterfactual"),
                           default="factual")
    p_explain.add_argument("--sampled", action="store_true",
                           help="extract the target's receptive field first and "
                                "explain the compact subgraph (identical scores, "
                                "bounded memory; node tasks only)")
    p_explain.add_argument("--epochs", type=int, default=200)
    p_explain.add_argument("--top-flows", type=int, default=10)
    p_explain.add_argument("--top-edges", type=int, default=10)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    p_exp.add_argument("artifact", choices=("table3", "fidelity", "auc", "runtime", "alpha"))
    _common(p_exp)
    p_exp.add_argument("--mode", choices=("factual", "counterfactual"), default="factual")
    p_exp.add_argument("--instances", type=int, default=None)
    p_exp.add_argument("--effort", type=float, default=None)
    p_exp.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="shard the artifact through repro.runner: 1 = inline, "
                            "N > 1 = crash-isolated worker pool "
                            "(fidelity/auc/runtime only)")
    p_exp.add_argument("--resume", default=None, metavar="PATH",
                       help="JSONL journal checkpointing every job; an existing "
                            "journal is resumed, skipping finished jobs "
                            "(implies --jobs 1 unless --jobs is given)")
    p_exp.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-job timeout (enforced with --jobs >= 2)")
    p_exp.add_argument("--retries", type=int, default=1,
                       help="extra attempts per failed job (default 1)")
    p_exp.add_argument("--trace", nargs="?", const=True, default=None,
                       metavar="PATH",
                       help="record a span trace of the run; writes a trace "
                            "JSONL plus a RunManifest (PATH optional: default "
                            "is next to --resume or in the working directory)")

    p_trace = sub.add_parser("trace", help="inspect recorded span traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summ = trace_sub.add_parser(
        "summarize", help="per-method, per-stage time breakdown of a trace")
    p_summ.add_argument("path", help="trace JSONL written by a --trace run")

    p_lint = sub.add_parser(
        "lint", help="run the repro.checks static-analysis rules")
    p_lint.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: every "
                             "existing one of src tests benchmarks examples)")
    p_lint.add_argument("--json", action="store_true", dest="json_output",
                        help="machine-readable findings on stdout "
                             "(same as --format json)")
    p_lint.add_argument("--format", default=None, dest="output_format",
                        choices=("text", "json", "sarif"),
                        help="output format (sarif: SARIF 2.1.0 for "
                             "code-scanning upload)")
    p_lint.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(e.g. RPR001,RPR010); default all")
    p_lint.add_argument("--scope", default="all",
                        choices=("all", "file", "program"),
                        help="run only per-file or only whole-program rules "
                             "(default: all)")
    p_lint.add_argument("--no-cache", action="store_true",
                        help="bypass the .repro_lint_cache.json parse cache")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print every registered rule and exit")

    p_bench = sub.add_parser(
        "bench", help="inspect or gate the benchmark artifacts")
    p_bench.add_argument("--check", action="store_true",
                         help="diff the latest BENCH_history.jsonl run against "
                              "the committed BENCH_perf.json floors; exit 1 on "
                              "any regression, 2 on unreadable artifacts")
    p_bench.add_argument("--history", default="BENCH_history.jsonl",
                         help="benchmark run history (default: %(default)s)")
    p_bench.add_argument("--reference", default="BENCH_perf.json",
                         help="committed floors to gate against "
                              "(default: %(default)s)")

    sub.add_parser(
        "stats", help="hit/miss/size snapshot of every process-global cache")

    p_serve = sub.add_parser(
        "serve", help="run the explanation-serving daemon")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8731)
    p_serve.add_argument("--max-batch", type=int, default=16,
                         help="coalesce at most N requests per micro-batch "
                              "(default: %(default)s)")
    p_serve.add_argument("--max-linger-ms", type=float, default=5.0,
                         help="wait up to MS for a batch to fill before "
                              "flushing (default: %(default)s)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="pending jobs per batch key before 429 "
                              "backpressure (default: %(default)s)")
    p_serve.add_argument("--no-coalesce", action="store_true",
                         help="serial baseline: one request per batch, no "
                              "deduplication")
    p_serve.add_argument("--obs-dir", default=None, metavar="DIR",
                         help="write one RunManifest per micro-batch under DIR")
    p_serve.add_argument("--trace-every", type=int, default=0, metavar="N",
                         help="record a span trace for every Nth micro-batch "
                              "(0 = never; requires --obs-dir)")

    p_report = sub.add_parser("report", help="aggregate benchmark artifacts into markdown")
    p_report.add_argument("--results", default="benchmarks/results",
                          help="directory of benchmark artifact files")
    p_report.add_argument("-o", "--output", default=None,
                          help="write to a file instead of stdout")
    return parser


def _common(p: argparse.ArgumentParser) -> None:
    p.add_argument("-d", "--dataset", default="ba_shapes", choices=DATASET_NAMES)
    p.add_argument("-m", "--model", default="gcn", choices=("gcn", "gin", "gat"))
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=int, default=0)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "datasets":
        for name in DATASET_NAMES:
            ds = load_dataset(name)
            print(ds.stats().row(), f"task={dataset_task(name)}")
        return 0

    if args.command == "train":
        model, dataset, result = get_model(args.dataset, args.model, scale=args.scale,
                                           seed=args.seed, use_cache=False, verbose=True)
        print(f"{args.dataset}/{args.model}: {result}")
        return 0

    if args.command == "explain":
        model, dataset, _ = get_model(args.dataset, args.model, scale=args.scale,
                                      seed=args.seed)
        explainer = make_explainer(args.explainer, model,
                                   **({"epochs": args.epochs}
                                      if args.explainer in ("revelio", "gnnexplainer")
                                      else {}))
        from .explain import ExplainTarget

        if dataset.task == "node":
            node = args.target if args.target is not None else int(
                dataset.graph.test_mask.nonzero()[0][0]
                if dataset.graph.test_mask is not None else 0
            )
            target = ExplainTarget.node(node)
            graph = dataset.graph
            if args.sampled:
                from .sampling import SampledExplainRuntime

                explanation = SampledExplainRuntime(explainer).explain(
                    graph, target, mode=args.mode)
            else:
                explanation = explainer.explain(graph, target=target,
                                                mode=args.mode)
        else:
            if args.sampled:
                print("note: --sampled applies to node tasks; the instance "
                      "graph is already its own context", file=sys.stderr)
            idx = args.target if args.target is not None else 0
            graph = dataset.graphs[idx]
            explanation = explainer.explain(graph, mode=args.mode)
        from .viz import render_explanation

        print(render_explanation(graph, explanation, k=args.top_edges))
        if explanation.flow_scores is not None:
            from .viz import format_top_flows

            print()
            print(format_top_flows(explanation, k=args.top_flows))
        return 0

    if args.command == "lint":
        from pathlib import Path

        from .checks import run_lint
        from .checks.cache import DEFAULT_CACHE_PATH

        paths = args.paths
        if not paths:
            paths = [p for p in ("src", "tests", "benchmarks", "examples")
                     if Path(p).exists()]
        select = args.select.split(",") if args.select else None
        return run_lint(paths, select=select,
                        json_output=args.json_output,
                        output_format=args.output_format,
                        scope=args.scope,
                        cache_path=None if args.no_cache
                        else DEFAULT_CACHE_PATH,
                        list_rules=args.list_rules)

    if args.command == "trace":
        from .obs import summarize_trace

        for row in summarize_trace(args.path):
            print(row)
        return 0

    if args.command == "experiment":
        config = ExperimentConfig(scale=args.scale, seed=args.seed,
                                  num_instances=args.instances, effort=args.effort)
        jobs = args.jobs if args.jobs is not None else (1 if args.resume else None)
        if (jobs is not None or args.trace) and \
                args.artifact not in ("fidelity", "auc", "runtime"):
            print(f"note: --jobs/--resume/--trace not supported for "
                  f"{args.artifact}; running serially", file=sys.stderr)
            jobs = None
            args.trace = None
        execution = ExecutionConfig(jobs=jobs, resume=args.resume,
                                    timeout=args.timeout, retries=args.retries,
                                    trace=args.trace)
        if args.artifact == "table3":
            result = run_dataset_table(config=config)
        elif args.artifact == "fidelity":
            methods = ALL_METHODS if args.mode == "factual" else COUNTERFACTUAL_METHODS
            result = run_fidelity_experiment(args.dataset, args.model, methods,
                                             mode=args.mode, config=config,
                                             execution=execution)
        elif args.artifact == "auc":
            result = run_auc_experiment(args.dataset, args.model, ALL_METHODS,
                                        mode=args.mode, config=config,
                                        execution=execution)
        elif args.artifact == "runtime":
            result = run_runtime_experiment(args.dataset, args.model, ALL_METHODS,
                                            config=config, execution=execution)
        else:
            result = run_alpha_sensitivity(args.dataset, args.model,
                                           mode=args.mode, config=config)
        for row in result["rows"]:
            print(row)
        if result.get("trace_path"):
            print(f"\ntrace: {result['trace_path']}\n"
                  f"manifest: {result['manifest_path']}", file=sys.stderr)
        if result.get("failures"):
            print(f"\n{sum(len(v) for v in result['failures'].values())} job(s) "
                  "failed; aggregated over surviving chunks:", file=sys.stderr)
            for method, fails in result["failures"].items():
                for f in fails:
                    print(f"  {f['job']}: {f['error']['type']}: "
                          f"{f['error']['message']}", file=sys.stderr)
        if args.artifact in ("fidelity", "alpha") and result.get("curves"):
            from .viz import render_curves

            print()
            curves = result["curves"]
            if args.artifact == "alpha":
                curves = {f"alpha={a}": c for a, c in curves.items()}
            print(render_curves(curves))
        return 0

    if args.command == "bench":
        from .errors import BenchError
        from .eval.benchgate import load_latest_run, run_bench_check

        if args.check:
            return run_bench_check(history_path=args.history,
                                   reference_path=args.reference)
        try:
            record = load_latest_run(args.history)
        except BenchError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 2
        print(f"latest run: {record.get('timestamp', '?')} "
              f"({record.get('git_sha') or '?'})")
        for name, entry in sorted(record["payload"].get("workloads", {}).items()):
            speedup = entry.get("speedup_largest", entry.get("speedup"))
            if speedup is None:
                speedup = entry.get("orchestration", {}).get("speedup")
            detail = f"speedup {speedup}x" if speedup is not None else \
                f"overhead {entry.get('overhead_fraction', '?')}"
            print(f"  {name}: {detail}")
        return 0

    if args.command == "stats":
        from .obs import format_cache_summary

        for row in format_cache_summary():
            print(row)
        return 0

    if args.command == "serve":
        from .serve import ServeConfig, run_server

        config = ServeConfig(
            host=args.host, port=args.port, max_batch=args.max_batch,
            max_linger_ms=args.max_linger_ms, queue_limit=args.queue_limit,
            coalesce=not args.no_coalesce, obs_dir=args.obs_dir,
            trace_every=args.trace_every,
        )
        return run_server(config)

    if args.command == "report":
        from .eval.report import build_report, write_report

        if args.output:
            path = write_report(args.results, args.output)
            print(f"wrote {path}")
        else:
            print(build_report(args.results))
        return 0

    return 1


if __name__ == "__main__":
    sys.exit(main())
