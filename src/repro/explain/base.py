"""Explainer framework: the :class:`Explanation` result object and the
:class:`Explainer` base class shared by Revelio and all baselines.

Scope conventions
-----------------
*Node classification*: explainers operate on the target's L-hop incoming
neighborhood (the only region that can influence the prediction of an
L-layer GNN), exactly as PyG's explainer framework does, and scatter their
scores back to full-graph edge positions. *Graph classification*: the whole
(small) graph is the context.

Modes
-----
``"factual"`` explanations score components whose *retention* preserves the
prediction (evaluated by Fidelity−); ``"counterfactual"`` explanations
score components whose *removal* flips it (Fidelity+). Methods that do not
distinguish the two (gradient baselines, PGM-Explainer, SubgraphX, GNN-LRP)
return the same scores for both, as in the paper's experiments.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..errors import ExplainerError
from ..flows import FlowIndex, graph_fingerprint
from ..flows.cache import LRUCache
from ..graph import Graph, extract_receptive_field
from ..nn.models import GNN
from ..obs import PERF, span
from ..obs.names import SPAN_CONTEXT_EXTRACT, SPAN_EXPLAIN
from .target import ExplainTarget

__all__ = ["Explanation", "Explainer", "NodeContext", "MODES",
           "CONTEXT_CACHE", "context_cache_disabled", "clear_context_cache"]

MODES = ("factual", "counterfactual")

#: Cross-explainer L-hop context cache. Every explainer extracts the same
#: L-hop neighborhood for the same (graph, target); contexts are read-only
#: by convention (perturbation methods copy before mutating), so one
#: extraction is shared by all of them.
CONTEXT_CACHE = LRUCache(maxsize=256)
_CONTEXT_CACHE_ENABLED = [True]


def clear_context_cache() -> None:
    """Explicitly drop every cached node context."""
    CONTEXT_CACHE.clear()


@contextmanager
def context_cache_disabled():
    """Temporarily bypass the context cache (benchmark baselines)."""
    prev = _CONTEXT_CACHE_ENABLED[0]
    _CONTEXT_CACHE_ENABLED[0] = False
    try:
        yield
    finally:
        _CONTEXT_CACHE_ENABLED[0] = prev


@dataclass
class Explanation:
    """The output of an explainer for one instance.

    Attributes
    ----------
    edge_scores:
        ``(E,)`` whole-graph importance per *data* edge (higher = more
        important). Always populated — this is what fidelity / AUC consume.
    layer_edge_scores:
        Optional ``(L, E+N)`` per-layer scores over the *context* graph's
        augmented edge space (flow-based and layer-aware methods).
    flow_scores:
        Optional ``(F,)`` per-flow importance (flow-based methods).
    flow_index:
        The :class:`FlowIndex` that ``flow_scores`` refers to (context
        graph's node ids).
    target:
        Explained node id (node tasks) or ``None`` (graph tasks).
    predicted_class:
        The class the explanation was computed for.
    mode:
        ``"factual"`` or ``"counterfactual"``.
    method:
        Explainer name.
    context_node_ids:
        For node tasks, original node ids of the context subgraph.
    context_edge_positions:
        For node tasks, original edge indices of the context subgraph —
        fidelity sweeps rank and perturb only these (edges outside the
        L-hop neighborhood cannot influence the prediction).
    meta:
        Structured extras. Three keys are reserved schema:

        * ``meta["params"]`` — the method hyperparameters the explanation
          was computed with (epochs, lr, alpha, samples, …), a flat dict
          of scalars.
        * ``meta["perf"]`` — performance/timing measurements (e.g.
          ``train_seconds`` for group-fit methods, ``explain_seconds``,
          ``stencil_evals``), a flat dict of scalars.
        * ``meta["trace_id"]`` — id of the trace this explanation was
          recorded under, when :mod:`repro.obs` tracing was enabled.

        Method-specific *diagnostics* (final loss, flow counts, selected
        flows, per-layer weights) remain free-form top-level keys.
    """

    edge_scores: np.ndarray
    predicted_class: int
    method: str
    mode: str = "factual"
    target: int | None = None
    layer_edge_scores: np.ndarray | None = None
    flow_scores: np.ndarray | None = None
    flow_index: FlowIndex | None = None
    context_node_ids: np.ndarray | None = None
    context_edge_positions: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def top_edges(self, k: int) -> np.ndarray:
        """Indices of the ``k`` highest-scoring data edges."""
        k = min(k, self.edge_scores.shape[0])
        return np.argsort(-self.edge_scores, kind="stable")[:k]

    def edge_scores_at_layer(self, layer: int) -> np.ndarray:
        """Per-*data-edge* importance within one 1-based GNN layer.

        The paper's flow scores "can subsequently be translated into the
        importance scores for edges within individual GNN layers or across
        the entire GNN"; :attr:`edge_scores` is the across-GNN transfer,
        this is the within-layer one. Only layer-aware methods (flow
        methods, GraphMask) populate :attr:`layer_edge_scores`.
        """
        if self.layer_edge_scores is None:
            raise ExplainerError(f"{self.method} produced no per-layer scores")
        num_layers = self.layer_edge_scores.shape[0]
        if not 1 <= layer <= num_layers:
            raise ExplainerError(f"layer must be in [1, {num_layers}], got {layer}")
        row = self.layer_edge_scores[layer - 1]
        if self.flow_index is not None:
            return row[:self.flow_index.num_edges].copy()
        if self.context_edge_positions is not None:
            # Layer scores live on the context graph whose data edges come
            # first; self-loops occupy the tail.
            return row[:self.context_edge_positions.shape[0]].copy()
        if row.shape[0] >= self.edge_scores.shape[0]:
            return row[:self.edge_scores.shape[0]].copy()
        raise ExplainerError(
            f"{self.method}: layer scores cover {row.shape[0]} edges but "
            f"edge_scores has {self.edge_scores.shape[0]} and neither "
            f"flow_index nor context_edge_positions maps them")

    def top_flows(self, k: int) -> list[tuple[tuple[int, ...], float]]:
        """Top-``k`` flows as ``(node_sequence, score)`` pairs.

        Node ids are translated back to the original graph when the
        explanation was computed on a subgraph context.
        """
        if self.flow_scores is None or self.flow_index is None:
            raise ExplainerError(f"{self.method} did not produce flow scores")
        k = min(k, self.flow_scores.shape[0])
        order = np.argsort(-self.flow_scores, kind="stable")[:k]
        out = []
        for f in order:
            seq = self.flow_index.nodes[f]
            if self.context_node_ids is not None:
                seq = self.context_node_ids[seq]
            out.append((tuple(int(v) for v in seq), float(self.flow_scores[f])))
        return out

    def __repr__(self) -> str:
        return (
            f"Explanation(method={self.method!r}, mode={self.mode!r}, "
            f"target={self.target}, class={self.predicted_class}, "
            f"edges={self.edge_scores.shape[0]})"
        )


@dataclass
class NodeContext:
    """The L-hop explanation context around a target node."""

    subgraph: Graph
    node_ids: np.ndarray          # original ids of subgraph nodes
    edge_mask: np.ndarray         # boolean over original edges
    edge_positions: np.ndarray    # original edge index per subgraph edge
    local_target: int             # target's id inside the subgraph


class Explainer:
    """Base class for all explanation methods.

    Parameters
    ----------
    model:
        A *pretrained* :class:`GNN`; it is frozen (gradients disabled on
        its weights) so mask learning never perturbs it.
    seed:
        Seed for any stochastic component of the method.
    """

    name = "explainer"
    is_flow_based = False
    supports_counterfactual = False

    def __init__(self, model: GNN, seed: int = 0):
        self.model = model
        self.seed = seed
        model.eval()
        model.freeze()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def explain(self, graph: Graph, target: ExplainTarget | int | None = None,
                mode: str = "factual") -> Explanation:
        """Explain one instance.

        ``target`` is an :class:`~repro.explain.target.ExplainTarget`
        (``ExplainTarget.node(i)`` for node classification; ``None`` or
        ``ExplainTarget.graph(j)`` for graph classification, where the
        caller has already selected graph ``j``). Bare-int targets keep
        working one release behind a ``DeprecationWarning``.
        """
        if mode not in MODES:
            raise ExplainerError(f"unknown mode {mode!r}; expected one of {MODES}")
        target = ExplainTarget.coerce(target, task=self.model.task,
                                      where=f"{self.name}.explain")
        with span(SPAN_EXPLAIN, method=self.name, mode=mode) as sp:
            if self.model.task == "node":
                if target is None:
                    raise ExplainerError("node-classification explanation requires a target node")
                explanation = self.explain_node(graph, target.node_id, mode=mode)
            else:
                if target is not None and target.kind != "graph":
                    raise ExplainerError(
                        f"{self.model.task}-classification explanation takes an "
                        f"ExplainTarget.graph(...) target (or None), got {target}")
                explanation = self.explain_graph(graph, mode=mode)
            if sp is not None:
                sp.set(target=explanation.target,
                       num_edges=int(explanation.edge_scores.shape[0]))
                explanation.meta["trace_id"] = sp.trace_id
        if sp is not None:
            explanation.meta.setdefault("perf", {})["explain_seconds"] = sp.seconds
        return explanation

    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        raise NotImplementedError

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def node_context(self, graph: Graph, node: int) -> NodeContext:
        """Extract the L-hop incoming neighborhood of ``node``.

        Cached across explainer instances: the key covers graph structure,
        node features (the subgraph slices ``x``), depth and target, so a
        changed graph can never serve a stale context. Callers must treat
        the returned context as read-only (all in-tree consumers do).
        """
        if not _CONTEXT_CACHE_ENABLED[0]:
            with span(SPAN_CONTEXT_EXTRACT, node=int(node)):
                return self._extract_context(graph, node)
        x_hash = hashlib.sha1(np.ascontiguousarray(graph.x).tobytes()).hexdigest()
        key = (graph_fingerprint(graph), x_hash, self.model.num_layers, int(node))
        context = CONTEXT_CACHE.get(key)
        if context is None:
            with span(SPAN_CONTEXT_EXTRACT, node=int(node)):
                context = self._extract_context(graph, node)
            CONTEXT_CACHE.put(key, context)
        else:
            PERF.context_cache_hits += 1
        return context

    def _extract_context(self, graph: Graph, node: int) -> NodeContext:
        field = extract_receptive_field(graph, [int(node)], self.model.num_layers)
        return NodeContext(
            subgraph=field.graph,
            node_ids=field.node_ids,
            edge_mask=field.edge_mask,
            edge_positions=field.edge_positions,
            local_target=int(field.local_index(int(node))),
        )

    def predicted_class(self, graph: Graph,
                        target: ExplainTarget | int | None = None) -> int:
        """The model's predicted class for the instance."""
        from .target import as_node_id

        proba = self.model.predict_proba(graph)
        node = as_node_id(target)
        row = proba[node] if node is not None else proba[0]
        return int(row.argmax())

    def lift_edge_scores(self, context: NodeContext, local_scores: np.ndarray,
                         num_edges: int) -> np.ndarray:
        """Scatter subgraph edge scores back to full-graph edge positions."""
        full = np.zeros(num_edges)
        full[context.edge_positions] = local_scores
        return full

    def __repr__(self) -> str:
        return f"{type(self).__name__}(model={self.model.conv_name}, task={self.model.task})"
