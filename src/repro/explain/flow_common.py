"""Shared machinery for flow-based explainers (Revelio, FlowX, GNN-LRP).

Provides masked-forward probability evaluation without autograd overhead
and the flow-score → edge-score transfer used to compare flow methods with
edge-level baselines under the paper's fidelity protocol.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad, softmax
from ..flows import FlowIndex
from ..graph import Graph
from ..nn.models import GNN

__all__ = ["masked_probability", "masked_probability_batch",
           "flow_scores_to_edge_scores", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function on arrays."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def masked_probability(model: GNN, graph: Graph, layer_masks: np.ndarray,
                       class_idx: int, target_row: int | None) -> float:
    """``P(class | graph, masks)`` with per-layer edge masks, no tape.

    Parameters
    ----------
    layer_masks:
        ``(L, E+N)`` float multipliers per layer edge.
    target_row:
        Output row to read — a *local* index into ``graph`` (explainers
        call this on the context subgraph), not an
        :class:`~repro.explain.target.ExplainTarget`; ``None`` reads row
        0 (graph tasks).
    """
    with no_grad():
        masks = [Tensor(layer_masks[l]) for l in range(layer_masks.shape[0])]
        logits = model.forward_graph(graph, edge_masks=masks)
        probs = softmax(logits, axis=-1).numpy()
    row = probs[target_row] if target_row is not None else probs[0]
    return float(row[class_idx])


def masked_probability_batch(model: GNN, graph: Graph, mask_stack: np.ndarray,
                             class_idx: int, target_row: int | None, *,
                             structural: bool = False) -> np.ndarray:
    """Vectorized :func:`masked_probability` over a stack of mask sets.

    Parameters
    ----------
    mask_stack:
        ``(B, L, E+N)`` float multipliers; each of the ``B`` rows is one
        complete per-layer mask set.

    Returns
    -------
    np.ndarray
        ``(B,)`` probabilities ``P(class | graph, masks_b)``.
    """
    probs = model.predict_proba_batch(graph, mask_stack, structural=structural)
    row = target_row if target_row is not None else 0
    return probs[:, row, class_idx]


def flow_scores_to_edge_scores(flow_index: FlowIndex, flow_scores: np.ndarray) -> np.ndarray:
    """Whole-GNN data-edge importance from per-flow scores.

    Accumulates flow scores per layer edge (Eq. 3), squashes with a sigmoid
    to keep layers comparable, and averages each data edge over the layers
    where it carries flows — the same transfer Revelio's Explanation uses,
    applied to externally-computed flow scores.
    """
    accumulated = flow_index.aggregate_scores_np(np.asarray(flow_scores, dtype=np.float64))
    squashed = sigmoid(accumulated)
    used = flow_index.used_layer_edges()
    num_edges = flow_index.num_edges
    scores = squashed[:, :num_edges]
    mask = used[:, :num_edges]
    counts = np.maximum(mask.sum(axis=0), 1)
    return (scores * mask).sum(axis=0) / counts
