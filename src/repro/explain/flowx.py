"""FlowX (Gui et al., 2023): Shapley-initialized flow explanations.

Two stages, following the paper's description (§II of the Revelio paper):

1. **Marginal-contribution sampling.** Over ``samples`` random coalitions
   of layer edges, each evaluated layer edge is toggled off and the
   prediction difference is split evenly among the message flows the
   removal silences ("removing the edge that carries it and then dividing
   the resulting prediction difference by the number of removed message
   flows"). This yields Shapley-style per-flow initial scores — the reason
   FlowX's reported flow values are tiny (Table VI).
2. **Learning refinement.** The flow scores seed learnable flow masks which
   are fine-tuned with the same masked-forward objective Revelio uses
   (factual Eq. 1 / counterfactual Eq. 2).

Cost profile: stage 1 is ``O(S · L · |E| · T_Φ)`` forwards — the dominant
term of Table II — so FlowX remains much slower than Revelio on dense
instances even at modest ``samples``.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Adam, Tensor, log_softmax
from ..flows import FlowIndex, cached_enumerate_flows
from ..graph import Graph
from ..nn.models import GNN
from ..rng import ensure_rng
from .base import Explainer, Explanation
from .flow_common import (
    flow_scores_to_edge_scores,
    masked_probability,
    masked_probability_batch,
)

__all__ = ["FlowX"]


class FlowX(Explainer):
    """Shapley-sampling + learning flow explainer.

    Parameters
    ----------
    samples:
        Coalition samples ``S`` for marginal-contribution estimation.
    edges_per_sample:
        Layer edges evaluated per coalition (``None`` = all used edges;
        bounding this trades accuracy for speed, mirroring the GPU
        batch-size knob of the original implementation).
    finetune_epochs, lr:
        Stage-2 schedule.
    batched:
        Evaluate stage-1 coalition perturbations through the vectorized
        masked-forward engine (one batched pass instead of one serial
        forward per toggled edge). ``False`` keeps the original
        forward-per-perturbation loop; both paths draw randomness in the
        same order and agree to float tolerance.
    """

    name = "flowx"
    is_flow_based = True
    supports_counterfactual = True

    # Rows per batched masked forward; bounds the (B, N, F) intermediates.
    # 128 keeps the per-chunk working set inside L2/L3 — larger chunks
    # thrash the cache and measure slower despite fewer dispatches.
    BATCH_CHUNK = 128

    def __init__(self, model: GNN, samples: int = 10, edges_per_sample: int | None = None,
                 finetune_epochs: int = 100, lr: float = 1e-2,
                 max_flows: int = 2_000_000, batched: bool = True, seed: int = 0):
        super().__init__(model, seed=seed)
        self.samples = samples
        self.edges_per_sample = edges_per_sample
        self.finetune_epochs = finetune_epochs
        self.lr = lr
        self.max_flows = max_flows
        self.batched = batched

    # ------------------------------------------------------------------
    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        class_idx = self.predicted_class(graph, target=node)
        context = self.node_context(graph, node)
        flow_index = cached_enumerate_flows(context.subgraph, self.model.num_layers,
                                            target=context.local_target,
                                            max_flows=self.max_flows)
        explanation = self._explain(context.subgraph, flow_index, mode,
                                    target=context.local_target, class_idx=class_idx)
        explanation.target = node
        explanation.context_node_ids = context.node_ids
        explanation.context_edge_positions = context.edge_positions
        explanation.edge_scores = self.lift_edge_scores(
            context, explanation.edge_scores, graph.num_edges
        )
        return explanation

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        flow_index = cached_enumerate_flows(graph, self.model.num_layers,
                                            max_flows=self.max_flows)
        return self._explain(graph, flow_index, mode, target=None)

    # ------------------------------------------------------------------
    # stage 1: sampled marginal contributions
    # ------------------------------------------------------------------
    def _shapley_flow_scores(self, graph: Graph, flow_index: FlowIndex,
                             class_idx: int, target: int | None,
                             rng: np.random.Generator) -> np.ndarray:
        num_layers = flow_index.num_layers
        width = flow_index.num_layer_edges
        used = flow_index.used_layer_edges()
        used_pairs = np.argwhere(used)  # (n_used, 2): (layer, edge)

        contributions = np.zeros(flow_index.num_flows)
        counts = np.zeros(flow_index.num_flows)
        flows_per_edge = flow_index.flows_per_layer_edge()

        # Draw every coalition and pick set up front — the rng call order
        # is identical to the serial loop's, so batched=True/False produce
        # the same randomness (and thus the same scores up to float error).
        plans = []
        for _ in range(self.samples):
            keep_prob = rng.uniform(0.3, 0.95)
            coalition = (rng.random((num_layers, width)) < keep_prob).astype(np.float64)
            coalition[~used] = 1.0  # unused edges are irrelevant; keep masks clean
            if self.edges_per_sample is not None and used_pairs.shape[0] > self.edges_per_sample:
                picks = used_pairs[rng.choice(used_pairs.shape[0], self.edges_per_sample,
                                              replace=False)]
            else:
                picks = used_pairs
            plans.append((coalition, picks))

        if not self.batched:
            for coalition, picks in plans:
                p_base = masked_probability(self.model, graph, coalition, class_idx, target)
                for layer, edge in picks:
                    if coalition[layer, edge] == 0.0:
                        continue
                    n_flows = flows_per_edge[layer, edge]
                    if n_flows == 0:
                        continue
                    coalition[layer, edge] = 0.0
                    p_without = masked_probability(self.model, graph, coalition,
                                                   class_idx, target)
                    coalition[layer, edge] = 1.0
                    delta = (p_base - p_without) / n_flows
                    members = flow_index.flows_through(layer + 1, edge)
                    contributions[members] += delta
                    counts[members] += 1.0
            return contributions / np.maximum(counts, 1.0)

        # Batched path: one row per base coalition plus one per eligible
        # toggled edge, all evaluated through the masked-forward engine.
        rows: list[np.ndarray] = []
        row_meta: list[tuple[int, tuple[int, int] | None]] = []
        for s, (coalition, picks) in enumerate(plans):
            rows.append(coalition)
            row_meta.append((s, None))
            for layer, edge in picks:
                if coalition[layer, edge] == 0.0 or flows_per_edge[layer, edge] == 0:
                    continue
                toggled = coalition.copy()
                toggled[layer, edge] = 0.0
                rows.append(toggled)
                row_meta.append((s, (int(layer), int(edge))))

        probs = np.empty(len(rows))
        for start in range(0, len(rows), self.BATCH_CHUNK):
            stack = np.stack(rows[start:start + self.BATCH_CHUNK])
            probs[start:start + self.BATCH_CHUNK] = masked_probability_batch(
                self.model, graph, stack, class_idx, target
            )

        p_base = {s: probs[i] for i, (s, pick) in enumerate(row_meta) if pick is None}
        for (s, pick), p_without in zip(row_meta, probs):
            if pick is None:
                continue
            layer, edge = pick
            delta = (p_base[s] - p_without) / flows_per_edge[layer, edge]
            members = flow_index.flows_through(layer + 1, edge)
            contributions[members] += delta
            counts[members] += 1.0
        return contributions / np.maximum(counts, 1.0)

    # ------------------------------------------------------------------
    # stage 2: learning refinement
    # ------------------------------------------------------------------
    def _explain(self, graph: Graph, flow_index: FlowIndex, mode: str,
                 target: int | None, class_idx: int | None = None) -> Explanation:
        rng = ensure_rng(self.seed)
        if class_idx is None:
            class_idx = self.predicted_class(graph, target=target)

        shapley = self._shapley_flow_scores(graph, flow_index, class_idx, target, rng)
        # Seed learnable masks: scale raw contributions into tanh's active
        # region so fine-tuning starts from the Shapley ranking.
        scale = np.abs(shapley).max()
        init = np.arctanh(np.clip(shapley / scale, -0.99, 0.99)) if scale > 0 else \
            rng.normal(0.0, 0.1, size=flow_index.num_flows)
        masks = Tensor(init, requires_grad=True)
        optimizer = Adam([masks], lr=self.lr)
        row = target if target is not None else 0

        for _ in range(self.finetune_epochs):
            optimizer.zero_grad()
            omega_f = masks.tanh()
            omega_e = flow_index.aggregate_scores(omega_f).sigmoid()
            layer_masks = [omega_e[l] for l in range(flow_index.num_layers)]
            log_probs = log_softmax(
                self.model.forward_graph(graph, edge_masks=layer_masks), axis=-1
            )
            log_p = log_probs[row, class_idx]
            if mode == "factual":
                loss = -log_p
            else:
                p = log_p.exp()
                loss = -(1.0 - p.clip(0.0, 1.0 - 1e-12)).log()
            loss.backward()
            optimizer.step()

        learned = masks.tanh().numpy().copy()
        # Report on the Shapley scale (the original implementation's output
        # convention; Table VI shows FlowX scores at raw-contribution size).
        flow_scores = learned * (scale if scale > 0 else 1.0)
        if mode == "counterfactual":
            flow_scores = -flow_scores
        return Explanation(
            edge_scores=flow_scores_to_edge_scores(flow_index, flow_scores),
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            flow_scores=flow_scores,
            flow_index=flow_index,
            meta={"params": {"samples": self.samples,
                             "finetune_epochs": self.finetune_epochs},
                  "num_flows": flow_index.num_flows},
        )
