"""GraphMask (Schlichtkrull et al., 2021), simplified.

Per-layer gate networks score each message from the endpoint embeddings of
its edge; gates are trained across a group of instances to *drop* as many
messages as possible (L0-style sparsity) while keeping the prediction
unchanged (or, in counterfactual mode, while flipping it). Dropped
messages are replaced by a learned baseline vector in the original; this
reproduction uses multiplicative gating (baseline 0), which the masked
message-passing hook supports directly.

Paper settings: lr 1e-2, 200 training epochs.
"""

from __future__ import annotations

import numpy as np

from ..autograd import MLP, Adam, Sigmoid, Tensor, concat, log_softmax
from ..errors import ExplainerError
from ..graph import Graph
from ..nn.models import GNN
from ..rng import ensure_rng
from .base import Explainer, Explanation
from .target import ExplainTarget, as_node_id

__all__ = ["GraphMask"]


class GraphMask(Explainer):
    """Layer-wise message gating trained over a group of instances.

    Parameters
    ----------
    epochs, lr:
        Training schedule (paper: 200 epochs, lr 1e-2).
    sparsity_weight:
        Strength of the L0-surrogate penalty on open gates.
    hidden:
        Gate-MLP width.
    gate:
        ``"sigmoid"`` — simple deterministic gates (default, cheap) — or
        ``"hard_concrete"`` — the original GraphMask's stochastic
        hard-concrete relaxation (Louizos et al., 2018): gates can reach
        exactly 0/1 and the sparsity penalty is the L0 open-probability.
    """

    name = "graphmask"
    supports_counterfactual = True

    # Hard-concrete stretch interval and temperature (reference values).
    _GAMMA, _ZETA, _BETA = -0.1, 1.1, 2.0 / 3.0

    def __init__(self, model: GNN, epochs: int = 200, lr: float = 1e-2,
                 sparsity_weight: float = 0.05, hidden: int = 32,
                 gate: str = "sigmoid", seed: int = 0):
        super().__init__(model, seed=seed)
        if gate not in ("sigmoid", "hard_concrete"):
            raise ExplainerError(f"unknown gate type {gate!r}")
        self.epochs = epochs
        self.lr = lr
        self.sparsity_weight = sparsity_weight
        self.gate_type = gate
        self._rng = ensure_rng(seed)
        # One gate network per GNN layer; layer 1 sees raw features, deeper
        # layers see hidden embeddings. Sigmoid gates squash in the MLP;
        # hard-concrete gates keep raw logits and transform them below.
        self.gates = []
        for l in range(model.num_layers):
            in_dim = 2 * (model.in_features if l == 0 else model.hidden)
            final = Sigmoid() if gate == "sigmoid" else None
            self.gates.append(MLP([in_dim, hidden, 1], rng=self._rng,
                                  final_activation=final))
        self.fitted = False
        self.train_seconds: float | None = None

    # ------------------------------------------------------------------
    def _layer_inputs(self, graph: Graph) -> list[np.ndarray]:
        """Per-layer gate-network inputs [h_src || h_dst] (data level)."""
        embeddings = [graph.x] + self.model.node_embeddings(graph)[:-1]
        feats = []
        for l in range(self.model.num_layers):
            h = embeddings[l]
            feats.append(np.concatenate([h[graph.src], h[graph.dst]], axis=1))
        return feats

    def _hard_concrete(self, logits: Tensor, training: bool) -> Tensor:
        """Stretched, clipped (hard) concrete gate from raw logits.

        Training draws the stochastic relaxation; evaluation uses the
        deterministic expected gate.
        """
        gamma, zeta, beta = self._GAMMA, self._ZETA, self._BETA
        if training:
            u = self._rng.uniform(1e-6, 1.0 - 1e-6, size=logits.shape)
            noise = Tensor(np.log(u) - np.log(1.0 - u))
            s = ((logits + noise) / beta).sigmoid()
        else:
            s = logits.sigmoid()
        stretched = s * (zeta - gamma) + gamma
        return stretched.clip(0.0, 1.0)

    def _l0_penalty(self, logits: Tensor) -> Tensor:
        """P(gate > 0) under the hard-concrete distribution (the L0 term)."""
        shift = self._BETA * np.log(-self._GAMMA / self._ZETA)
        return (logits - shift).sigmoid()

    def _gate_masks(self, graph: Graph, training: bool = False) -> list[Tensor]:
        """Per-layer (E+N,) masks: gated data edges + always-open loops."""
        feats = self._layer_inputs(graph)
        loop_block = Tensor(np.ones(graph.num_nodes))
        masks = []
        self._last_logits: list[Tensor] = []
        for l in range(self.model.num_layers):
            out = self.gates[l](Tensor(feats[l])).reshape(-1)
            if self.gate_type == "hard_concrete":
                self._last_logits.append(out)
                gate = self._hard_concrete(out, training)
            else:
                gate = out
            masks.append(concat([gate, loop_block]))
        return masks

    # ------------------------------------------------------------------
    def fit(self, instances: list[tuple[Graph, int | None]], mode: str = "factual",
            verbose: bool = False) -> "GraphMask":
        """Train gate networks on ``(graph, target)`` instances."""
        import time as _time

        t0 = _time.perf_counter()
        params = [p for g in self.gates for p in g.parameters()]
        optimizer = Adam(params, lr=self.lr)
        contexts = [(g, t, self.predicted_class(g, target=t)) for g, t in instances]

        for epoch in range(self.epochs):
            optimizer.zero_grad()
            total = None
            for graph, target, class_idx in contexts:
                masks = self._gate_masks(graph, training=True)
                log_probs = log_softmax(
                    self.model.forward_graph(graph, edge_masks=masks), axis=-1
                )
                row = target if target is not None else 0
                log_p = log_probs[row, class_idx]
                open_gates = None
                if self.gate_type == "hard_concrete":
                    for logits in self._last_logits:
                        s = self._l0_penalty(logits).mean()
                        open_gates = s if open_gates is None else open_gates + s
                else:
                    for m in masks:
                        s = m[:graph.num_edges].mean()
                        open_gates = s if open_gates is None else open_gates + s
                open_gates = open_gates / self.model.num_layers
                if mode == "factual":
                    loss = -log_p + self.sparsity_weight * open_gates
                else:
                    p = log_p.exp()
                    loss = -(1.0 - p.clip(0.0, 1.0 - 1e-12)).log() \
                        + self.sparsity_weight * (1.0 - open_gates)
                total = loss if total is None else total + loss
            total = total / len(contexts)
            total.backward()
            optimizer.step()
            if verbose and epoch % 50 == 0:
                print(f"graphmask epoch {epoch}: loss {total.item():.4f}")
        self.fitted = True
        self.train_seconds = _time.perf_counter() - t0
        return self

    # ------------------------------------------------------------------
    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        self._require_fit()
        context = self.node_context(graph, node)
        layer_scores, edge_scores = self._scores(context.subgraph)
        if mode == "counterfactual":
            edge_scores = 1.0 - edge_scores
            layer_scores = 1.0 - layer_scores
        return Explanation(
            edge_scores=self.lift_edge_scores(context, edge_scores, graph.num_edges),
            predicted_class=self.predicted_class(graph, target=node),
            method=self.name,
            mode=mode,
            target=node,
            layer_edge_scores=layer_scores,
            context_node_ids=context.node_ids,
            context_edge_positions=context.edge_positions,
            meta={"perf": {"train_seconds": self.train_seconds}},
        )

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        self._require_fit()
        layer_scores, edge_scores = self._scores(graph)
        if mode == "counterfactual":
            edge_scores = 1.0 - edge_scores
            layer_scores = 1.0 - layer_scores
        return Explanation(
            edge_scores=edge_scores,
            predicted_class=self.predicted_class(graph),
            method=self.name,
            mode=mode,
            layer_edge_scores=layer_scores,
            meta={"perf": {"train_seconds": self.train_seconds}},
        )

    def _scores(self, graph: Graph) -> tuple[np.ndarray, np.ndarray]:
        masks = self._gate_masks(graph)
        layer_scores = np.stack([m.numpy().copy() for m in masks])
        edge_scores = layer_scores[:, :graph.num_edges].mean(axis=0)
        return layer_scores, edge_scores

    def _require_fit(self) -> None:
        if not self.fitted:
            raise ExplainerError("GraphMask.explain called before fit()")

    def prepare_instances(
            self, graph_or_graphs,
            targets: list[ExplainTarget | int] | None = None,
    ) -> list[tuple[Graph, int | None]]:
        """Build fit() inputs (same contract as PGExplainer)."""
        if self.model.task == "node":
            out = []
            for t in targets:
                ctx = self.node_context(graph_or_graphs, as_node_id(t))
                out.append((ctx.subgraph, ctx.local_target))
            return out
        return [(g, None) for g in graph_or_graphs]
