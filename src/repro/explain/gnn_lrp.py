"""GNN-LRP (Schnake et al., 2021): per-walk relevance via L-order terms.

GNN-LRP scores each message flow (walk) by the L-th-order term of a Taylor
expansion of the model output with respect to the GNN layers — concretely,
the mixed partial derivative of the explained class score with respect to
the multipliers of the flow's L layer edges, times the product of those
multipliers (which is 1 at the unperturbed point):

    R(flow) = ∂^L f / (∂a¹_{e₁} … ∂a^L_{e_L}) · a¹_{e₁} ⋯ a^L_{e_L}

This reproduction computes the mixed partial exactly (up to O(h²)) with a
central finite-difference stencil over the 2^L sign combinations of the L
layer-edge multipliers, which keeps the method model-agnostic while
preserving both the defining semantics and the ``O(|F|·T_Φ)`` cost profile
that dominates Table V. (The original hand-derives equivalent layer-wise
relevance rules per architecture — the reason it cannot run on GAT, a
restriction we keep.)
"""

from __future__ import annotations

import itertools

import numpy as np

from ..autograd import Tensor, no_grad
from ..errors import ExplainerError
from ..flows import FlowIndex, cached_enumerate_flows
from ..graph import Graph
from ..nn.models import GNN
from ..sparse import kernel, plan_for
from .base import Explainer, Explanation

__all__ = ["GNNLRP"]


class GNNLRP(Explainer):
    """Walk-level relevance decomposition.

    Parameters
    ----------
    step:
        Finite-difference step ``h`` for the mixed partial.
    max_flows:
        Enumeration ceiling; large instances raise rather than thrash.
    batched:
        Evaluate the unique finite-difference stencil points through the
        vectorized masked-forward engine instead of one serial forward per
        point. The stencil set and result are identical either way.
    """

    name = "gnn_lrp"
    is_flow_based = True

    # Stencil points per batched masked forward.
    BATCH_CHUNK = 256

    def __init__(self, model: GNN, step: float = 0.1, max_flows: int = 200_000,
                 batched: bool = True, seed: int = 0):
        if model.conv_name == "gat":
            raise ExplainerError("GNN-LRP is not compatible with GAT models (paper §V-A)")
        super().__init__(model, seed=seed)
        self.step = step
        self.max_flows = max_flows
        self.batched = batched

    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        class_idx = self.predicted_class(graph, target=node)
        context = self.node_context(graph, node)
        flow_index = cached_enumerate_flows(context.subgraph, self.model.num_layers,
                                            target=context.local_target,
                                            max_flows=self.max_flows)
        explanation = self._explain(context.subgraph, flow_index, target=context.local_target,
                                    mode=mode, class_idx=class_idx)
        explanation.target = node
        explanation.context_node_ids = context.node_ids
        explanation.context_edge_positions = context.edge_positions
        explanation.edge_scores = self.lift_edge_scores(
            context, explanation.edge_scores, graph.num_edges
        )
        return explanation

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        flow_index = cached_enumerate_flows(graph, self.model.num_layers,
                                            max_flows=self.max_flows)
        return self._explain(graph, flow_index, target=None, mode=mode)

    # ------------------------------------------------------------------
    def _class_score(self, graph: Graph, layer_masks: np.ndarray,
                     class_idx: int, target: int | None) -> float:
        """Raw class logit under per-layer edge masks."""
        with no_grad():
            masks = [Tensor(layer_masks[l]) for l in range(layer_masks.shape[0])]
            logits = self.model.forward_graph(graph, edge_masks=masks).numpy()
        row = logits[target] if target is not None else logits[0]
        return float(row[class_idx])

    def _explain(self, graph: Graph, flow_index: FlowIndex, target: int | None,
                 mode: str, class_idx: int | None = None) -> Explanation:
        if class_idx is None:
            class_idx = self.predicted_class(graph, target=target)
        num_layers = flow_index.num_layers
        width = flow_index.num_layer_edges
        h = self.step
        denom = (2.0 * h) ** num_layers
        sign_combos = list(itertools.product((-1.0, 1.0), repeat=num_layers))

        # Cache stencil evaluations: flows sharing the same (layer, edge)
        # multiset hit identical mask configurations.
        cache: dict[tuple, float] = {}
        base = np.ones((num_layers, width))

        def stencil_masks(path: np.ndarray, signs: tuple) -> np.ndarray:
            masks = base.copy()
            for l, (edge, s) in enumerate(zip(path, signs)):
                masks[l, edge] += s * h
            return masks

        if self.batched:
            # First pass: collect the unique stencil points in deterministic
            # order, then evaluate them in chunked batched forwards.
            order: list[tuple[np.ndarray, tuple]] = []
            for f in range(flow_index.num_flows):
                path = flow_index.layer_edges[f]
                for signs in sign_combos:
                    key = tuple(zip(range(num_layers), path.tolist(), signs))
                    if key not in cache:
                        cache[key] = len(order)  # placeholder: position
                        order.append((path, signs))
            values = np.empty(len(order))
            row = target if target is not None else 0
            for start in range(0, len(order), self.BATCH_CHUNK):
                stack = np.stack([stencil_masks(p, s)
                                  for p, s in order[start:start + self.BATCH_CHUNK]])
                logits = self.model.forward_masked_batch(graph, stack)
                values[start:start + self.BATCH_CHUNK] = logits[:, row, class_idx]
            cache = {key: float(values[pos]) for key, pos in cache.items()}

        scores = np.zeros(flow_index.num_flows)
        for f in range(flow_index.num_flows):
            path = flow_index.layer_edges[f]
            total = 0.0
            for signs in sign_combos:
                key = tuple(zip(range(num_layers), path.tolist(), signs))
                if key not in cache:
                    cache[key] = self._class_score(graph, stencil_masks(path, signs),
                                                   class_idx, target)
                total += float(np.prod(signs)) * cache[key]
            scores[f] = total / denom

        # Edge transfer: signed relevance summed over all flows through the
        # edge at any layer (decomposition semantics: relevances add up).
        # One plan-backed scatter over the full augmented id space [0, E+N)
        # — flow f contributes its score once per layer — then the data-edge
        # prefix is the per-edge relevance (self-loop ids fall off the end).
        flat_ids = np.ascontiguousarray(flow_index.layer_edges.reshape(-1))
        tiled = np.repeat(scores, num_layers)
        plan = plan_for(flat_ids, width)
        aug_scores = kernel("scatter_add")(plan, tiled[:, None])
        edge_scores = np.ascontiguousarray(aug_scores[:flow_index.num_edges, 0])

        return Explanation(
            edge_scores=edge_scores,
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            flow_scores=scores,
            flow_index=flow_index,
            meta={"params": {"step": h}, "num_flows": flow_index.num_flows,
                  "perf": {"stencil_evals": len(cache)}},
        )
