"""Explanation methods: the framework, Revelio's baselines, and a registry."""

from __future__ import annotations

from ..errors import ExplainerError
from ..nn.models import GNN
from .base import MODES, Explainer, Explanation, NodeContext
from .batch import BatchResult, explain_instances
from .target import ExplainTarget, as_node_id
from .deeplift import DeepLIFT
from .flowx import FlowX
from .gnn_lrp import GNNLRP
from .gnnexplainer import GNNExplainer
from .gradcam import GradCAM
from .graphmask import GraphMask
from .io import load_explanation, save_explanation
from .pgexplainer import PGExplainer
from .pgm_explainer import PGMExplainer
from .random_baseline import RandomExplainer
from .relevant_walks import RelevantWalks
from .subgraphx import SubgraphX

__all__ = [
    "Explainer",
    "Explanation",
    "ExplainTarget",
    "as_node_id",
    "NodeContext",
    "MODES",
    "GradCAM",
    "DeepLIFT",
    "GNNExplainer",
    "PGExplainer",
    "GraphMask",
    "PGMExplainer",
    "SubgraphX",
    "GNNLRP",
    "FlowX",
    "RelevantWalks",
    "RandomExplainer",
    "EXPLAINERS",
    "make_explainer",
    "save_explanation",
    "load_explanation",
    "BatchResult",
    "explain_instances",
]

# Registry of baseline constructors by paper name. Revelio itself lives in
# repro.core but is registered here too for uniform harness access.
EXPLAINERS: dict[str, type[Explainer]] = {
    "gradcam": GradCAM,
    "deeplift": DeepLIFT,
    "gnnexplainer": GNNExplainer,
    "pgexplainer": PGExplainer,
    "graphmask": GraphMask,
    "pgm_explainer": PGMExplainer,
    "subgraphx": SubgraphX,
    "gnn_lrp": GNNLRP,
    "flowx": FlowX,
    "relevant_walks": RelevantWalks,
    "random": RandomExplainer,
}


def _resolve_explainer_class(name: str) -> type[Explainer]:
    key = name.lower().replace("-", "_")
    if key == "revelio":
        from ..core import Revelio

        return Revelio
    if key == "revelio_topk":
        from ..core import TopKRevelio

        return TopKRevelio
    if key not in EXPLAINERS:
        available = sorted(EXPLAINERS) + ["revelio", "revelio_topk"]
        raise ExplainerError(f"unknown explainer {name!r}; available: {available}")
    return EXPLAINERS[key]


def make_explainer(name: str, model: GNN, **kwargs) -> Explainer:
    """Instantiate an explainer by registry name.

    ``"revelio"`` and ``"revelio_topk"`` resolve to the core package;
    everything else comes from :data:`EXPLAINERS`. All configuration after
    ``(name, model)`` is keyword-only; a keyword the method's constructor
    does not accept raises :class:`~repro.errors.ReproError` naming the
    nearest valid option instead of a bare ``TypeError``.
    """
    import inspect

    from ..execution import reject_unknown_kwargs

    cls = _resolve_explainer_class(name)
    params = inspect.signature(cls.__init__).parameters
    if not any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        valid = tuple(p for p in params if p not in ("self", "model"))
        unknown = {k: v for k, v in kwargs.items() if k not in valid}
        reject_unknown_kwargs(f"make_explainer({name!r})", unknown, valid)
    return cls(model, **kwargs)
