"""PGM-Explainer (Vu & Thai, 2020), node-centric surrogate method.

Randomly perturbs node features, records which perturbations flip (or
significantly change) the prediction, and runs a chi-square dependence
test between each node's perturbation indicator and the prediction-change
indicator. Nodes with strong dependence are the explanation; edge scores
are derived as the mean importance of an edge's endpoints (the paper's
baselines all need edge scores for the fidelity protocol).

Black-box: only prediction queries are used, never gradients.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..graph import Graph
from ..nn.models import GNN
from ..rng import ensure_rng
from .base import Explainer, Explanation

__all__ = ["PGMExplainer"]


class PGMExplainer(Explainer):
    """Perturbation + chi-square dependence testing.

    Parameters
    ----------
    num_samples:
        Perturbation rounds (reference default 100).
    perturb_prob:
        Probability each node is perturbed in a round.
    perturb_mode:
        ``"zero"`` (clear features) or ``"mean"`` (set to dataset mean).
    batched:
        Evaluate all perturbation rounds in chunked batched forwards over
        a feature stack instead of one forward per round. Randomness is
        drawn in the same order either way.
    """

    name = "pgm_explainer"

    # Perturbation rounds per batched forward.
    BATCH_CHUNK = 256

    def __init__(self, model: GNN, num_samples: int = 100, perturb_prob: float = 0.5,
                 perturb_mode: str = "zero", batched: bool = True, seed: int = 0):
        super().__init__(model, seed=seed)
        self.num_samples = num_samples
        self.perturb_prob = perturb_prob
        self.perturb_mode = perturb_mode
        self.batched = batched

    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        class_idx = self.predicted_class(graph, target=node)
        context = self.node_context(graph, node)
        node_scores, class_idx = self._node_importance(context.subgraph,
                                                       target=context.local_target,
                                                       class_idx=class_idx)
        sub = context.subgraph
        edge_scores = 0.5 * (node_scores[sub.src] + node_scores[sub.dst])
        return Explanation(
            edge_scores=self.lift_edge_scores(context, edge_scores, graph.num_edges),
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            target=node,
            context_node_ids=context.node_ids,
            context_edge_positions=context.edge_positions,
            meta={"params": {"num_samples": self.num_samples}},
        )

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        node_scores, class_idx = self._node_importance(graph, target=None)
        edge_scores = 0.5 * (node_scores[graph.src] + node_scores[graph.dst])
        return Explanation(
            edge_scores=edge_scores,
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            meta={"params": {"num_samples": self.num_samples}},
        )

    # ------------------------------------------------------------------
    def _node_importance(self, graph: Graph, target: int | None,
                         class_idx: int | None = None) -> tuple[np.ndarray, int]:
        rng = ensure_rng(self.seed)
        if class_idx is None:
            class_idx = self.predicted_class(graph, target=target)
        proba = self.model.predict_proba(graph)
        base_p = float((proba[target] if target is not None else proba[0])[class_idx])

        replacement = np.zeros_like(graph.x) if self.perturb_mode == "zero" \
            else np.broadcast_to(graph.x.mean(axis=0), graph.x.shape)

        perturbed_flags = np.zeros((self.num_samples, graph.num_nodes), dtype=bool)
        for s in range(self.num_samples):
            perturbed_flags[s] = rng.random(graph.num_nodes) < self.perturb_prob

        row = target if target is not None else 0
        if self.batched:
            p_samples = np.empty(self.num_samples)
            for start in range(0, self.num_samples, self.BATCH_CHUNK):
                flags = perturbed_flags[start:start + self.BATCH_CHUNK]
                x_stack = np.where(flags[:, :, None], replacement[None, :, :],
                                   graph.x[None, :, :])
                proba = self.model.predict_proba_batch(graph, x_stack=x_stack)
                p_samples[start:start + self.BATCH_CHUNK] = proba[:, row, class_idx]
        else:
            p_samples = np.empty(self.num_samples)
            work = graph.copy()
            for s in range(self.num_samples):
                work.x = np.where(perturbed_flags[s][:, None], replacement, graph.x)
                proba = self.model.predict_proba(work)
                p_samples[s] = float((proba[target] if target is not None else proba[0])[class_idx])
        # "Changed" = the predicted probability dropped noticeably.
        changed = (base_p - p_samples) > 0.1 * base_p

        scores = np.zeros(graph.num_nodes)
        n_changed = int(changed.sum())
        if n_changed == 0 or n_changed == self.num_samples:
            return scores, class_idx  # no signal in the samples
        for v in range(graph.num_nodes):
            table = np.array([
                [np.sum(perturbed_flags[:, v] & changed),
                 np.sum(perturbed_flags[:, v] & ~changed)],
                [np.sum(~perturbed_flags[:, v] & changed),
                 np.sum(~perturbed_flags[:, v] & ~changed)],
            ], dtype=np.float64)
            if table.sum(axis=1).min() == 0 or table.sum(axis=0).min() == 0:
                continue
            chi2 = stats.chi2_contingency(table, correction=False).statistic
            # Signed by direction: perturbing an important node should
            # co-occur with prediction change.
            expected = table.sum(axis=1)[0] * table.sum(axis=0)[0] / table.sum()
            sign = 1.0 if table[0, 0] >= expected else -1.0
            scores[v] = sign * chi2
        return scores, class_idx
