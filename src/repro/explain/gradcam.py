"""Grad-CAM for GNNs (Pope et al., 2019; adapted from Selvaraju et al.).

Channel weights are the gradient of the explained class score with respect
to the final-layer node embeddings, globally averaged over nodes; the node
heat is the ReLU of the weighted embedding sum, and an edge scores the mean
heat of its endpoints. A white-box gradient method: one forward + one
backward per instance (the fastest row of Table V).
"""

from __future__ import annotations

import numpy as np

from ..autograd import log_softmax
from ..graph import Graph
from ..nn.models import GNN
from .base import Explainer, Explanation

__all__ = ["GradCAM"]


class GradCAM(Explainer):
    """Gradient-weighted class activation mapping on node embeddings."""

    name = "gradcam"

    def __init__(self, model: GNN, seed: int = 0):
        super().__init__(model, seed=seed)

    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        class_idx = self.predicted_class(graph, target=node)
        context = self.node_context(graph, node)
        scores, class_idx = self._node_heat(context.subgraph, target=context.local_target,
                                            class_idx=class_idx)
        edge_scores = self._edges_from_nodes(context.subgraph, scores)
        return Explanation(
            edge_scores=self.lift_edge_scores(context, edge_scores, graph.num_edges),
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            target=node,
            context_node_ids=context.node_ids,
            context_edge_positions=context.edge_positions,
        )

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        scores, class_idx = self._node_heat(graph, target=None)
        return Explanation(
            edge_scores=self._edges_from_nodes(graph, scores),
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
        )

    def _node_heat(self, graph: Graph, target: int | None,
                   class_idx: int | None = None) -> tuple[np.ndarray, int]:
        from ..autograd import Tensor

        if class_idx is None:
            class_idx = self.predicted_class(graph, target=target)
        # The model is frozen, so the tape must be rooted at the input for
        # intermediate gradients to exist.
        x = Tensor(graph.x, requires_grad=True)
        logits = self.model.forward(x, graph.edge_index, graph.num_nodes)
        # Retain gradient on the final conv layer's embeddings.
        embeddings = self.model._last_embeddings[-1]
        embeddings.retain_grad()
        log_probs = log_softmax(logits, axis=-1)
        row = target if target is not None else 0
        log_probs[row, class_idx].backward()
        grads = embeddings.grad
        if grads is None:
            grads = np.zeros(embeddings.shape)
        activations = embeddings.numpy()
        channel_weights = grads.mean(axis=0)                     # global average pool
        heat = np.maximum(activations @ channel_weights, 0.0)    # ReLU(Σ_c α_c h_c)
        return heat, class_idx

    @staticmethod
    def _edges_from_nodes(graph: Graph, node_scores: np.ndarray) -> np.ndarray:
        return 0.5 * (node_scores[graph.src] + node_scores[graph.dst])
