"""Batch explanation helpers.

Experiment-scale explanation of many instances with progress reporting,
optional persistence and graceful per-instance failure capture — the
ergonomics layer a downstream user reaches for first.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from ..execution import accept_legacy_positionals, reject_unknown_kwargs
from .base import Explainer, Explanation
from .io import save_explanation

if TYPE_CHECKING:  # avoid a circular import; Instance is duck-typed below
    from ..eval.fidelity import Instance

__all__ = ["BatchResult", "explain_instances"]


#: Characters of formatted traceback kept per captured failure.
TRACEBACK_LIMIT = 1500


@dataclass
class BatchResult:
    """Outcome of a batch-explanation run.

    Each failure is ``(instance_index, "ExcType: message\\n<truncated
    traceback>")`` — enough to triage a crashed instance without re-running
    the batch.
    """

    explanations: list[Explanation]
    failures: list[tuple[int, str]] = field(default_factory=list)

    @property
    def num_succeeded(self) -> int:
        return len(self.explanations)

    @property
    def num_failed(self) -> int:
        return len(self.failures)

    def __repr__(self) -> str:
        return f"BatchResult(succeeded={self.num_succeeded}, failed={self.num_failed})"


def explain_instances(explainer: Explainer, instances: "Sequence[Instance]",
                      *legacy_args,
                      mode: str = "factual",
                      progress: Callable[[int, int], None] | None = None,
                      save_dir: str | Path | None = None,
                      raise_on_error: bool = False,
                      **kwargs) -> BatchResult:
    """Explain a list of instances, collecting failures instead of dying.

    Everything after ``(explainer, instances)`` is keyword-only; the old
    positional shapes still work for one release with a
    :class:`DeprecationWarning`, and unknown keywords raise
    :class:`~repro.errors.ReproError` naming the nearest valid option.

    Parameters
    ----------
    explainer:
        Any :class:`Explainer` (already fitted, for group-level methods).
    instances:
        ``Instance(graph, target)`` records whose ``target`` is an
        :class:`~repro.explain.target.ExplainTarget` (bare ints keep
        working one release behind a ``DeprecationWarning``, raised by
        ``Explainer.explain`` when it coerces them).
    progress:
        Optional callback ``(done, total)`` after each instance.
    save_dir:
        When given, each explanation is also written to
        ``<save_dir>/explanation_<i>.npz``.
    raise_on_error:
        Re-raise the first per-instance error instead of recording it.
    """
    legacy = accept_legacy_positionals(
        "explain_instances", legacy_args,
        ("mode", "progress", "save_dir", "raise_on_error"))
    mode = legacy.get("mode", mode)
    progress = legacy.get("progress", progress)
    save_dir = legacy.get("save_dir", save_dir)
    raise_on_error = legacy.get("raise_on_error", raise_on_error)
    reject_unknown_kwargs("explain_instances", kwargs,
                          ("mode", "progress", "save_dir", "raise_on_error"))
    if save_dir is not None:
        save_dir = Path(save_dir)
        save_dir.mkdir(parents=True, exist_ok=True)

    explanations: list[Explanation] = []
    failures: list[tuple[int, str]] = []
    total = len(instances)
    for i, inst in enumerate(instances):
        try:
            explanation = explainer.explain(inst.graph, target=inst.target, mode=mode)
        except Exception as exc:  # stray numpy ValueError/FloatingPointError
            # must not kill the batch any more than a ReproError would
            if raise_on_error:
                raise
            tb = traceback.format_exc()[-TRACEBACK_LIMIT:]
            failures.append((i, f"{type(exc).__name__}: {exc}\n{tb}"))
            continue
        explanations.append(explanation)
        if save_dir is not None:
            save_explanation(explanation, save_dir / f"explanation_{i}.npz")
        if progress is not None:
            progress(i + 1, total)
    return BatchResult(explanations=explanations, failures=failures)
