"""SubgraphX (Yuan et al., 2021): MCTS subgraph search with Shapley scoring.

Searches connected node coalitions with Monte-Carlo tree search; a
coalition's reward is a sampled Shapley value of retaining exactly that
subgraph's nodes. The best coalition of bounded size is the explanation;
edges receive graded scores from MCTS visit statistics so the fidelity
protocol (which needs a full edge ranking) can sweep sparsity levels.

This is by far the most expensive baseline (the paper caps it to four
datasets / three sparsity values); the ``rollouts`` and ``shapley_samples``
parameters bound the budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph import Graph
from ..nn.models import GNN
from ..rng import ensure_rng
from .base import Explainer, Explanation
from .flow_common import masked_probability_batch

__all__ = ["SubgraphX"]


@dataclass
class _TreeNode:
    """One MCTS state: a connected coalition of node ids."""

    coalition: frozenset[int]
    visits: int = 0
    total_reward: float = 0.0
    children: dict[frozenset, "_TreeNode"] = field(default_factory=dict)

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0


class SubgraphX(Explainer):
    """MCTS over connected subgraphs with sampled-Shapley rewards.

    Parameters
    ----------
    rollouts:
        MCTS iterations.
    min_nodes:
        Stop shrinking coalitions below this size.
    shapley_samples:
        Monte-Carlo samples per coalition evaluation.
    exploration:
        UCB exploration constant.
    batched:
        Score each coalition's Shapley samples through the structural
        masked-forward engine in one batched pass (binary edge masks
        reproduce edge removal exactly) instead of one pruned-graph
        forward per sample.
    """

    name = "subgraphx"

    def __init__(self, model: GNN, rollouts: int = 20, min_nodes: int = 4,
                 shapley_samples: int = 8, exploration: float = 5.0,
                 batched: bool = True, seed: int = 0):
        super().__init__(model, seed=seed)
        self.rollouts = rollouts
        self.min_nodes = min_nodes
        self.shapley_samples = shapley_samples
        self.exploration = exploration
        self.batched = batched

    # ------------------------------------------------------------------
    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        class_idx = self.predicted_class(graph, target=node)
        context = self.node_context(graph, node)
        edge_scores, class_idx = self._search(context.subgraph,
                                              target=context.local_target,
                                              protected={context.local_target},
                                              class_idx=class_idx)
        return Explanation(
            edge_scores=self.lift_edge_scores(context, edge_scores, graph.num_edges),
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            target=node,
            context_node_ids=context.node_ids,
            context_edge_positions=context.edge_positions,
            meta={"params": {"rollouts": self.rollouts}},
        )

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        edge_scores, class_idx = self._search(graph, target=None, protected=set())
        return Explanation(
            edge_scores=edge_scores,
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            meta={"params": {"rollouts": self.rollouts}},
        )

    # ------------------------------------------------------------------
    def _coalition_probability(self, graph: Graph, coalition: frozenset[int],
                               class_idx: int, target: int | None) -> float:
        """P(class) with only the coalition's internal edges retained."""
        members = np.zeros(graph.num_nodes, dtype=bool)
        members[list(coalition)] = True
        keep = members[graph.src] & members[graph.dst]
        pruned = graph.with_edges(keep)
        proba = self.model.predict_proba(pruned)
        row = proba[target] if target is not None else proba[0]
        return float(row[class_idx])

    def _coalition_mask(self, graph: Graph, coalition: frozenset[int]) -> np.ndarray:
        """``(L, E+N)`` binary structural mask retaining the coalition's
        internal edges (self-loops stay on — pruned graphs keep all nodes)."""
        members = np.zeros(graph.num_nodes, dtype=bool)
        members[list(coalition)] = True
        row = np.ones(graph.num_edges + graph.num_nodes)
        row[:graph.num_edges] = (members[graph.src] & members[graph.dst]).astype(np.float64)
        return np.broadcast_to(row, (self.model.num_layers, row.shape[0]))

    def _shapley_reward(self, graph: Graph, coalition: frozenset[int],
                        class_idx: int, target: int | None,
                        rng: np.random.Generator) -> float:
        """Sampled marginal contribution of the coalition vs. random context."""
        outside = [v for v in range(graph.num_nodes) if v not in coalition]
        extras_list = []
        for _ in range(self.shapley_samples):
            if outside:
                extras_list.append(frozenset(v for v in outside if rng.random() < 0.5))
            else:
                extras_list.append(frozenset())
        baseline = 1.0 / self.model.num_classes

        if not self.batched:
            total = 0.0
            for extras in extras_list:
                with_c = self._coalition_probability(graph, coalition | extras,
                                                     class_idx, target)
                without_c = self._coalition_probability(graph, extras, class_idx, target) \
                    if extras else baseline
                total += with_c - without_c
            return total / self.shapley_samples

        rows = []
        has_without = []
        for extras in extras_list:
            rows.append(self._coalition_mask(graph, coalition | extras))
            if extras:
                rows.append(self._coalition_mask(graph, extras))
            has_without.append(bool(extras))
        probs = masked_probability_batch(self.model, graph, np.stack(rows),
                                         class_idx, target, structural=True)
        total, i = 0.0, 0
        for hw in has_without:
            with_c = probs[i]
            i += 1
            without_c = probs[i] if hw else baseline
            if hw:
                i += 1
            total += float(with_c - without_c)
        return total / self.shapley_samples

    def _neighbors(self, graph: Graph) -> list[set[int]]:
        nbrs = [set() for _ in range(graph.num_nodes)]
        for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
            nbrs[u].add(v)
            nbrs[v].add(u)
        return nbrs

    def _prune_actions(self, graph: Graph, coalition: frozenset[int],
                       nbrs: list[set[int]], protected: set[int]) -> list[frozenset[int]]:
        """Children: remove one low-degree node, keeping the coalition connected."""
        if len(coalition) <= self.min_nodes:
            return []
        degrees = {v: len(nbrs[v] & coalition) for v in coalition if v not in protected}
        if not degrees:
            return []
        candidates = sorted(degrees, key=degrees.get)[:4]
        children = []
        for v in candidates:
            reduced = coalition - {v}
            if reduced and self._is_connected(reduced, nbrs):
                children.append(frozenset(reduced))
        return children

    @staticmethod
    def _is_connected(coalition: frozenset[int], nbrs: list[set[int]]) -> bool:
        start = next(iter(coalition))
        seen = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for u in nbrs[v] & coalition:
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        return len(seen) == len(coalition)

    def _search(self, graph: Graph, target: int | None, protected: set[int],
                class_idx: int | None = None) -> tuple[np.ndarray, int]:
        rng = ensure_rng(self.seed)
        if class_idx is None:
            class_idx = self.predicted_class(graph, target=target)
        nbrs = self._neighbors(graph)
        root = _TreeNode(frozenset(range(graph.num_nodes)))
        rewards: dict[frozenset, float] = {}

        def evaluate(coalition: frozenset[int]) -> float:
            if coalition not in rewards:
                rewards[coalition] = self._shapley_reward(graph, coalition, class_idx,
                                                          target, rng)
            return rewards[coalition]

        for _ in range(self.rollouts):
            path = [root]
            node = root
            while True:
                actions = self._prune_actions(graph, node.coalition, nbrs, protected)
                if not actions:
                    break
                for a in actions:
                    if a not in node.children:
                        node.children[a] = _TreeNode(a)
                # UCB selection.
                total_visits = sum(c.visits for c in node.children.values()) + 1
                def ucb(child: _TreeNode) -> float:
                    bonus = self.exploration * np.sqrt(np.log(total_visits) / (child.visits + 1))
                    return child.mean_reward + bonus
                node = max(node.children.values(), key=ucb)
                path.append(node)
                if node.visits == 0:
                    break
            reward = evaluate(node.coalition)
            for n in path:
                n.visits += 1
                n.total_reward += reward

        # Best coalition among evaluated ones (smallest size wins ties).
        best = max(rewards, key=lambda c: (rewards[c], -len(c)))
        members = np.zeros(graph.num_nodes, dtype=bool)
        members[list(best)] = True

        # Node scores from visit-weighted membership for a graded ranking.
        node_scores = np.zeros(graph.num_nodes)
        stack = [root]
        while stack:
            n = stack.pop()
            if n.visits:
                for v in n.coalition:
                    node_scores[v] += n.visits
            stack.extend(n.children.values())
        if node_scores.max() > 0:
            node_scores = node_scores / node_scores.max()
        node_scores[members] += 1.0  # best coalition dominates

        edge_scores = 0.5 * (node_scores[graph.src] + node_scores[graph.dst])
        return edge_scores, class_idx
