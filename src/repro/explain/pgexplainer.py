"""PGExplainer (Luo et al., 2020): a parameterized, group-level explainer.

A small MLP scores every edge from the concatenated last-layer embeddings
of its endpoints (plus the target node's embedding for node tasks). The
MLP is trained *once* over a collection of instances with the mutual-
information objective under a concrete (Gumbel-sigmoid) relaxation of the
edge mask; explanation of a new instance is then a single forward pass of
the MLP — the reason Table V reports PGExplainer as "training (inference)"
with millisecond inference.

Paper settings: lr 3e-3, 500 training epochs.
"""

from __future__ import annotations

import numpy as np

from ..autograd import MLP, Adam, Tensor, concat, log_softmax
from ..errors import ExplainerError
from ..graph import Graph
from ..nn.models import GNN
from ..rng import ensure_rng
from .base import Explainer, Explanation
from .target import ExplainTarget, as_node_id

__all__ = ["PGExplainer"]


class PGExplainer(Explainer):
    """Trainable edge-scoring network shared across instances.

    Call :meth:`fit` with training instances before :meth:`explain`.

    Parameters
    ----------
    epochs, lr:
        Training schedule (paper: 500 epochs, lr 3e-3).
    temperature:
        Concrete-relaxation temperature (annealed toward 0.5).
    size_weight, entropy_weight:
        Mask regularizer strengths.
    hidden:
        Width of the edge-scoring MLP.
    """

    name = "pgexplainer"
    supports_counterfactual = True

    def __init__(self, model: GNN, epochs: int = 500, lr: float = 3e-3,
                 temperature: float = 2.0, size_weight: float = 0.01,
                 entropy_weight: float = 0.1, hidden: int = 32, seed: int = 0):
        super().__init__(model, seed=seed)
        self.epochs = epochs
        self.lr = lr
        self.temperature = temperature
        self.size_weight = size_weight
        self.entropy_weight = entropy_weight
        in_dim = model.hidden * (3 if model.task == "node" else 2)
        self._rng = ensure_rng(seed)
        self.edge_mlp = MLP([in_dim, hidden, 1], rng=self._rng)
        self.fitted = False
        self.train_seconds: float | None = None

    # ------------------------------------------------------------------
    # feature construction
    # ------------------------------------------------------------------
    def _edge_features(self, graph: Graph, target: int | None) -> np.ndarray:
        embeddings = self.model.node_embeddings(graph)[-1]
        feats = [embeddings[graph.src], embeddings[graph.dst]]
        if self.model.task == "node":
            if target is None:
                raise ExplainerError("node-task PGExplainer needs a target")
            feats.append(np.repeat(embeddings[target][None, :], graph.num_edges, axis=0))
        return np.concatenate(feats, axis=1)

    def _edge_logits(self, graph: Graph, target: int | None) -> Tensor:
        return self.edge_mlp(Tensor(self._edge_features(graph, target))).reshape(-1)

    # ------------------------------------------------------------------
    # training over a group of instances
    # ------------------------------------------------------------------
    def fit(self, instances: list[tuple[Graph, int | None]], mode: str = "factual",
            verbose: bool = False) -> "PGExplainer":
        """Train the edge MLP on ``(graph, target)`` instances.

        For node tasks the graphs should be the targets' context subgraphs
        or small graphs; pass the output of :meth:`prepare_instances` to
        handle this automatically.
        """
        import time as _time

        t0 = _time.perf_counter()
        optimizer = Adam(self.edge_mlp.parameters(), lr=self.lr)
        contexts = []
        for graph, target in instances:
            class_idx = self.predicted_class(graph, target=target)
            contexts.append((graph, target, class_idx))

        for epoch in range(self.epochs):
            temp = max(0.5, self.temperature * (0.97 ** epoch))
            optimizer.zero_grad()
            total = None
            for graph, target, class_idx in contexts:
                loss = self._instance_loss(graph, target, class_idx, temp, mode)
                total = loss if total is None else total + loss
            total = total / len(contexts)
            total.backward()
            optimizer.step()
            if verbose and epoch % 50 == 0:
                print(f"pgexplainer epoch {epoch}: loss {total.item():.4f}")
        self.fitted = True
        self.train_seconds = _time.perf_counter() - t0
        return self

    def _instance_loss(self, graph: Graph, target: int | None, class_idx: int,
                       temperature: float, mode: str) -> Tensor:
        logits = self._edge_logits(graph, target)
        gumbel = self._rng.random(graph.num_edges)
        noise = np.log(gumbel + 1e-12) - np.log(1.0 - gumbel + 1e-12)
        mask = ((logits + Tensor(noise)) / temperature).sigmoid()

        loop_block = Tensor(np.ones(graph.num_nodes))
        layer_mask = concat([mask, loop_block])
        layer_masks = [layer_mask] * self.model.num_layers
        log_probs = log_softmax(self.model.forward_graph(graph, edge_masks=layer_masks), axis=-1)
        row = target if target is not None else 0
        log_p = log_probs[row, class_idx]

        entropy = -(mask * mask.clip(1e-8, 1.0).log()
                    + (1.0 - mask) * (1.0 - mask).clip(1e-8, 1.0).log()).mean()
        if mode == "factual":
            objective = -log_p
            size = mask.mean()
        else:
            p = log_p.exp()
            objective = -(1.0 - p.clip(0.0, 1.0 - 1e-12)).log()
            size = (1.0 - mask).mean()
        return objective + self.size_weight * size + self.entropy_weight * entropy

    # ------------------------------------------------------------------
    # per-instance inference
    # ------------------------------------------------------------------
    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        self._require_fit()
        context = self.node_context(graph, node)
        with_scores = self._edge_logits(context.subgraph, context.local_target)
        scores = 1.0 / (1.0 + np.exp(-with_scores.numpy()))
        if mode == "counterfactual":
            scores = 1.0 - scores
        return Explanation(
            edge_scores=self.lift_edge_scores(context, scores, graph.num_edges),
            predicted_class=self.predicted_class(graph, target=node),
            method=self.name,
            mode=mode,
            target=node,
            context_node_ids=context.node_ids,
            context_edge_positions=context.edge_positions,
            meta={"perf": {"train_seconds": self.train_seconds}},
        )

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        self._require_fit()
        scores = 1.0 / (1.0 + np.exp(-self._edge_logits(graph, None).numpy()))
        if mode == "counterfactual":
            scores = 1.0 - scores
        return Explanation(
            edge_scores=scores,
            predicted_class=self.predicted_class(graph),
            method=self.name,
            mode=mode,
            meta={"perf": {"train_seconds": self.train_seconds}},
        )

    def _require_fit(self) -> None:
        if not self.fitted:
            raise ExplainerError("PGExplainer.explain called before fit(); "
                                 "train it on a group of instances first")

    def prepare_instances(self, graph_or_graphs,
                          targets: list[ExplainTarget | int] | None = None,
                          mode: str = "factual") -> list[tuple[Graph, int | None]]:
        """Build fit() inputs: context subgraphs for node targets, or the
        graphs themselves for graph tasks."""
        if self.model.task == "node":
            out = []
            for t in targets:
                ctx = self.node_context(graph_or_graphs, as_node_id(t))
                out.append((ctx.subgraph, ctx.local_target))
            return out
        return [(g, None) for g in graph_or_graphs]
