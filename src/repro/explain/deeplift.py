"""DeepLIFT (Shrikumar et al., 2017), Rescale-rule approximation.

For networks of ReLU-separable layers the Rescale rule coincides with
gradient × (input − baseline); with a zero baseline this is the classic
gradient×input attribution on node features. Node relevance is the sum of
its feature attributions toward the explained class; an edge scores the
mean relevance of its endpoints. Like GradCAM this needs one forward +
one backward per instance.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, log_softmax
from ..graph import Graph
from ..nn.models import GNN
from .base import Explainer, Explanation

__all__ = ["DeepLIFT"]


class DeepLIFT(Explainer):
    """Gradient × (input − baseline) attribution on node features."""

    name = "deeplift"

    def __init__(self, model: GNN, baseline: float = 0.0, seed: int = 0):
        super().__init__(model, seed=seed)
        self.baseline = baseline

    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        class_idx = self.predicted_class(graph, target=node)
        context = self.node_context(graph, node)
        node_scores, class_idx = self._attributions(context.subgraph,
                                                    target=context.local_target,
                                                    class_idx=class_idx)
        edge_scores = 0.5 * (node_scores[context.subgraph.src] + node_scores[context.subgraph.dst])
        return Explanation(
            edge_scores=self.lift_edge_scores(context, edge_scores, graph.num_edges),
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            target=node,
            context_node_ids=context.node_ids,
            context_edge_positions=context.edge_positions,
        )

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        node_scores, class_idx = self._attributions(graph, target=None)
        edge_scores = 0.5 * (node_scores[graph.src] + node_scores[graph.dst])
        return Explanation(
            edge_scores=edge_scores,
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
        )

    def _attributions(self, graph: Graph, target: int | None,
                      class_idx: int | None = None) -> tuple[np.ndarray, int]:
        if class_idx is None:
            class_idx = self.predicted_class(graph, target=target)
        x = Tensor(graph.x, requires_grad=True)
        logits = self.model.forward(x, graph.edge_index, graph.num_nodes)
        log_probs = log_softmax(logits, axis=-1)
        row = target if target is not None else 0
        log_probs[row, class_idx].backward()
        grads = x.grad if x.grad is not None else np.zeros_like(graph.x)
        contributions = grads * (graph.x - self.baseline)
        return contributions.sum(axis=1), class_idx
