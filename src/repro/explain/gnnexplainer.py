"""GNNExplainer (Ying et al., 2019).

Learns a single edge mask shared across all GNN layers by maximizing the
mutual information between the masked prediction and the original one:
``min -log P(Y=c | G ⊙ σ(m)) + α·|σ(m)| + β·H(σ(m))``. The paper runs it
for 500 epochs at lr 1e-2 (§V-A).

Counterfactual mode follows the paper's adaptation (§V-B): the objective
switches to Eq. (2) with the inverted sparsity regularizer, and the final
edge importance is ``1 − σ(m)`` — the edges the optimizer *removed* to
flip the prediction.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Adam, Tensor, log_softmax
from ..graph import Graph
from ..nn.models import GNN
from ..rng import ensure_rng
from .base import Explainer, Explanation

__all__ = ["GNNExplainer"]


class GNNExplainer(Explainer):
    """Single shared edge-mask learner.

    Parameters
    ----------
    model:
        Pretrained target model.
    epochs, lr:
        Optimization schedule (paper: 500 epochs, lr 1e-2).
    size_weight, entropy_weight:
        Regularizer strengths (reference-implementation defaults).
    feature_mask:
        Also learn a node-feature mask, as in the original GNNExplainer;
        the learned per-feature scores land in ``meta["feature_scores"]``.
        The Revelio paper's comparison uses edge masks only (the default).
    feature_size_weight:
        Sparsity penalty on the feature mask (only with ``feature_mask``);
        features the prediction does not need are pushed toward zero.
    """

    name = "gnnexplainer"
    supports_counterfactual = True

    def __init__(self, model: GNN, epochs: int = 500, lr: float = 1e-2,
                 size_weight: float = 0.005, entropy_weight: float = 1.0,
                 feature_mask: bool = False, feature_size_weight: float = 0.1,
                 seed: int = 0):
        super().__init__(model, seed=seed)
        self.epochs = epochs
        self.lr = lr
        self.size_weight = size_weight
        self.entropy_weight = entropy_weight
        self.feature_mask = feature_mask
        self.feature_size_weight = feature_size_weight

    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        class_idx = self.predicted_class(graph, target=node)
        context = self.node_context(graph, node)
        explanation = self._optimize(context.subgraph, mode, target=context.local_target,
                                     class_idx=class_idx)
        explanation.target = node
        explanation.context_node_ids = context.node_ids
        explanation.context_edge_positions = context.edge_positions
        explanation.edge_scores = self.lift_edge_scores(
            context, explanation.edge_scores, graph.num_edges
        )
        return explanation

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        return self._optimize(graph, mode, target=None)

    def _optimize(self, graph: Graph, mode: str, target: int | None,
                  class_idx: int | None = None) -> Explanation:
        rng = ensure_rng(self.seed)
        if class_idx is None:
            class_idx = self.predicted_class(graph, target=target)
        num_edges, num_nodes = graph.num_edges, graph.num_nodes

        raw_mask = Tensor(rng.normal(0.0, 0.1, size=num_edges), requires_grad=True)
        loop_block = Tensor(np.ones(num_nodes))  # self-loops are never masked
        params = [raw_mask]
        raw_feature = None
        if self.feature_mask:
            raw_feature = Tensor(rng.normal(0.0, 0.1, size=graph.num_features),
                                 requires_grad=True)
            params.append(raw_feature)
        optimizer = Adam(params, lr=self.lr)
        row = target if target is not None else 0

        from ..autograd import concat

        for _ in range(self.epochs):
            optimizer.zero_grad()
            mask = raw_mask.sigmoid()
            layer_mask = concat([mask, loop_block])
            layer_masks = [layer_mask] * self.model.num_layers
            x = Tensor(graph.x)
            if raw_feature is not None:
                x = x * raw_feature.sigmoid()
            logits = self.model.forward(x, graph.edge_index, graph.num_nodes,
                                        edge_masks=layer_masks)
            log_probs = log_softmax(logits, axis=-1)
            log_p = log_probs[row, class_idx]
            entropy = -(mask * mask.clip(1e-8, 1.0).log()
                        + (1.0 - mask) * (1.0 - mask).clip(1e-8, 1.0).log()).mean()
            if mode == "factual":
                objective = -log_p
                size = mask.sum()
            else:
                p = log_p.exp()
                objective = -(1.0 - p.clip(0.0, 1.0 - 1e-12)).log()
                size = (1.0 - mask).sum()
            loss = objective + self.size_weight * size + self.entropy_weight * entropy
            if raw_feature is not None:
                loss = loss + self.feature_size_weight * raw_feature.sigmoid().sum()
            loss.backward()
            optimizer.step()

        scores = raw_mask.sigmoid().numpy().copy()
        if mode == "counterfactual":
            scores = 1.0 - scores
        meta: dict = {"params": {"epochs": self.epochs, "lr": self.lr}}
        if raw_feature is not None:
            meta["feature_scores"] = raw_feature.sigmoid().numpy().copy()
        return Explanation(
            edge_scores=scores,
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            meta=meta,
        )
