"""Explanation serialization.

Explaining large instance sets is expensive; these helpers persist
:class:`~repro.explain.base.Explanation` objects to ``.npz`` so fidelity
sweeps, AUC evaluation and visualization can rerun without re-explaining.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import ExplainerError
from ..flows import FlowIndex
from .base import Explanation

__all__ = ["save_explanation", "load_explanation"]

_SCALAR_TYPES = (int, float, str, bool, type(None))


def _jsonable_meta(meta: dict) -> dict:
    """Keep scalar meta values plus flat dicts of scalars.

    The reserved ``meta["params"]`` / ``meta["perf"]`` sub-dicts (see
    :class:`~repro.explain.base.Explanation`) round-trip; array-valued
    diagnostics (layer weights, selected flows) are dropped as before.
    """
    out = {}
    for k, v in meta.items():
        if isinstance(v, _SCALAR_TYPES):
            out[k] = v
        elif isinstance(v, dict) and all(
                isinstance(sv, _SCALAR_TYPES) for sv in v.values()):
            out[k] = dict(v)
    return out


def save_explanation(explanation: Explanation, path: str | Path) -> None:
    """Serialize an explanation (including its flow index) to ``.npz``."""
    payload: dict[str, np.ndarray] = {
        "edge_scores": explanation.edge_scores,
    }
    scalars = {
        "predicted_class": explanation.predicted_class,
        "method": explanation.method,
        "mode": explanation.mode,
        "target": explanation.target,
        "meta": _jsonable_meta(explanation.meta),
    }
    if explanation.layer_edge_scores is not None:
        payload["layer_edge_scores"] = explanation.layer_edge_scores
    if explanation.flow_scores is not None:
        payload["flow_scores"] = explanation.flow_scores
    if explanation.flow_index is not None:
        fi = explanation.flow_index
        payload["flow_nodes"] = fi.nodes
        payload["flow_layer_edges"] = fi.layer_edges
        scalars["flow_index"] = {
            "num_layers": fi.num_layers,
            "num_edges": fi.num_edges,
            "num_nodes": fi.num_nodes,
            "target": fi.target,
        }
    if explanation.context_node_ids is not None:
        payload["context_node_ids"] = explanation.context_node_ids
    if explanation.context_edge_positions is not None:
        payload["context_edge_positions"] = explanation.context_edge_positions
    payload["scalars_json"] = np.frombuffer(
        json.dumps(scalars).encode(), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **payload)


def load_explanation(path: str | Path) -> Explanation:
    """Load an explanation saved by :func:`save_explanation`."""
    path = Path(path)
    if not path.exists():
        raise ExplainerError(f"no such explanation file: {path}")
    with np.load(path, allow_pickle=False) as data:
        scalars = json.loads(bytes(data["scalars_json"]).decode())
        flow_index = None
        if "flow_nodes" in data:
            info = scalars["flow_index"]
            flow_index = FlowIndex(
                nodes=data["flow_nodes"],
                layer_edges=data["flow_layer_edges"],
                num_layers=info["num_layers"],
                num_edges=info["num_edges"],
                num_nodes=info["num_nodes"],
                target=info["target"],
            )
        return Explanation(
            edge_scores=data["edge_scores"].copy(),
            predicted_class=scalars["predicted_class"],
            method=scalars["method"],
            mode=scalars["mode"],
            target=scalars["target"],
            layer_edge_scores=(data["layer_edge_scores"].copy()
                               if "layer_edge_scores" in data else None),
            flow_scores=data["flow_scores"].copy() if "flow_scores" in data else None,
            flow_index=flow_index,
            context_node_ids=(data["context_node_ids"].copy()
                              if "context_node_ids" in data else None),
            context_edge_positions=(data["context_edge_positions"].copy()
                                    if "context_edge_positions" in data else None),
            meta=scalars.get("meta", {}),
        )
