"""Explanation serialization.

Explaining large instance sets is expensive; these helpers persist
:class:`~repro.explain.base.Explanation` objects to ``.npz`` so fidelity
sweeps, AUC evaluation and visualization can rerun without re-explaining.

Two formats:

* ``.npz`` (:func:`save_explanation` / :func:`load_explanation`) — the
  compressed on-disk archive format used by the batch harness. Meta is
  reduced to scalars and flat scalar dicts.
* JSON (:func:`explanation_to_jsonable` / :func:`explanation_from_jsonable`)
  — the serving daemon's wire format. The round-trip is **lossless**:
  every array (including array-valued meta diagnostics) is tagged with its
  dtype and shape, Python's ``json`` float encoding round-trips ``float64``
  exactly, and the reserved ``meta`` schema (``params`` / ``perf`` /
  ``trace_id``, see :class:`~repro.explain.base.Explanation`) survives
  verbatim. The only normalization: numpy scalars become Python scalars
  and tuples become lists.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import ExplainerError
from ..flows import FlowIndex
from .base import Explanation

__all__ = ["save_explanation", "load_explanation",
           "explanation_to_jsonable", "explanation_from_jsonable"]

_SCALAR_TYPES = (int, float, str, bool, type(None))

#: Tag marking an encoded ndarray in the JSON wire format.
_ARRAY_TAG = "__ndarray__"

#: Wire-format schema version (bumped on incompatible layout changes).
JSON_SCHEMA_VERSION = 1


def _jsonable_meta(meta: dict) -> dict:
    """Keep scalar meta values plus flat dicts of scalars.

    The reserved ``meta["params"]`` / ``meta["perf"]`` sub-dicts (see
    :class:`~repro.explain.base.Explanation`) round-trip; array-valued
    diagnostics (layer weights, selected flows) are dropped as before.
    """
    out = {}
    for k, v in meta.items():
        if isinstance(v, _SCALAR_TYPES):
            out[k] = v
        elif isinstance(v, dict) and all(
                isinstance(sv, _SCALAR_TYPES) for sv in v.values()):
            out[k] = dict(v)
    return out


def _encode_value(value, where: str):
    """Recursively encode one meta/field value for the JSON wire format."""
    if isinstance(value, np.ndarray):
        return {_ARRAY_TAG: {"dtype": value.dtype.str,
                             "shape": list(value.shape),
                             "data": value.tolist()}}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _encode_value(v, f"{where}.{k}") for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v, f"{where}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, _SCALAR_TYPES):
        return value
    raise ExplainerError(
        f"cannot JSON-encode {where}: values of type {type(value).__name__} "
        "have no lossless wire representation")


def _decode_value(value):
    """Inverse of :func:`_encode_value`."""
    if isinstance(value, dict):
        if set(value) == {_ARRAY_TAG}:
            spec = value[_ARRAY_TAG]
            array = np.asarray(spec["data"], dtype=np.dtype(spec["dtype"]))
            return array.reshape(spec["shape"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def _encode_array(array: np.ndarray | None):
    return None if array is None else _encode_value(array, "array")


def _decode_array(value) -> np.ndarray | None:
    if value is None:
        return None
    decoded = _decode_value(value)
    if not isinstance(decoded, np.ndarray):
        raise ExplainerError("wire payload field is not an encoded array")
    return decoded


def explanation_to_jsonable(explanation: Explanation) -> dict:
    """Encode an explanation as a JSON-serializable dict (lossless).

    The serving daemon's wire format: ``json.loads(json.dumps(...))`` of
    the result feeds :func:`explanation_from_jsonable` and reproduces the
    explanation exactly — array dtypes/shapes, the :class:`FlowIndex`,
    and the full ``meta`` dict including the reserved ``params`` /
    ``perf`` / ``trace_id`` schema and array-valued diagnostics.
    """
    payload: dict = {
        "schema": JSON_SCHEMA_VERSION,
        "method": explanation.method,
        "mode": explanation.mode,
        "target": (None if explanation.target is None
                   else int(explanation.target)),
        "predicted_class": int(explanation.predicted_class),
        "edge_scores": _encode_array(explanation.edge_scores),
        "layer_edge_scores": _encode_array(explanation.layer_edge_scores),
        "flow_scores": _encode_array(explanation.flow_scores),
        "context_node_ids": _encode_array(explanation.context_node_ids),
        "context_edge_positions": _encode_array(
            explanation.context_edge_positions),
        "flow_index": None,
        "meta": _encode_value(explanation.meta, "meta"),
    }
    if explanation.flow_index is not None:
        fi = explanation.flow_index
        payload["flow_index"] = {
            "nodes": _encode_array(fi.nodes),
            "layer_edges": _encode_array(fi.layer_edges),
            "num_layers": int(fi.num_layers),
            "num_edges": int(fi.num_edges),
            "num_nodes": int(fi.num_nodes),
            "target": None if fi.target is None else int(fi.target),
        }
    return payload


def explanation_from_jsonable(payload: dict) -> Explanation:
    """Rebuild an :class:`Explanation` from :func:`explanation_to_jsonable`."""
    if not isinstance(payload, dict):
        raise ExplainerError(
            f"explanation wire payload must be an object, got "
            f"{type(payload).__name__}")
    missing = {"method", "mode", "predicted_class", "edge_scores"} - set(payload)
    if missing:
        raise ExplainerError(
            f"explanation wire payload is missing {sorted(missing)}")
    schema = payload.get("schema", JSON_SCHEMA_VERSION)
    if schema != JSON_SCHEMA_VERSION:
        raise ExplainerError(
            f"unsupported explanation wire schema {schema!r} "
            f"(this build reads version {JSON_SCHEMA_VERSION})")
    flow_index = None
    if payload.get("flow_index") is not None:
        info = payload["flow_index"]
        flow_index = FlowIndex(
            nodes=_decode_array(info["nodes"]),
            layer_edges=_decode_array(info["layer_edges"]),
            num_layers=info["num_layers"],
            num_edges=info["num_edges"],
            num_nodes=info["num_nodes"],
            target=info["target"],
        )
    return Explanation(
        edge_scores=_decode_array(payload["edge_scores"]),
        predicted_class=payload["predicted_class"],
        method=payload["method"],
        mode=payload["mode"],
        target=payload.get("target"),
        layer_edge_scores=_decode_array(payload.get("layer_edge_scores")),
        flow_scores=_decode_array(payload.get("flow_scores")),
        flow_index=flow_index,
        context_node_ids=_decode_array(payload.get("context_node_ids")),
        context_edge_positions=_decode_array(
            payload.get("context_edge_positions")),
        meta=_decode_value(payload.get("meta", {})),
    )


def save_explanation(explanation: Explanation, path: str | Path) -> None:
    """Serialize an explanation (including its flow index) to ``.npz``."""
    payload: dict[str, np.ndarray] = {
        "edge_scores": explanation.edge_scores,
    }
    scalars = {
        "predicted_class": explanation.predicted_class,
        "method": explanation.method,
        "mode": explanation.mode,
        "target": explanation.target,
        "meta": _jsonable_meta(explanation.meta),
    }
    if explanation.layer_edge_scores is not None:
        payload["layer_edge_scores"] = explanation.layer_edge_scores
    if explanation.flow_scores is not None:
        payload["flow_scores"] = explanation.flow_scores
    if explanation.flow_index is not None:
        fi = explanation.flow_index
        payload["flow_nodes"] = fi.nodes
        payload["flow_layer_edges"] = fi.layer_edges
        scalars["flow_index"] = {
            "num_layers": fi.num_layers,
            "num_edges": fi.num_edges,
            "num_nodes": fi.num_nodes,
            "target": fi.target,
        }
    if explanation.context_node_ids is not None:
        payload["context_node_ids"] = explanation.context_node_ids
    if explanation.context_edge_positions is not None:
        payload["context_edge_positions"] = explanation.context_edge_positions
    payload["scalars_json"] = np.frombuffer(
        json.dumps(scalars).encode(), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **payload)


def load_explanation(path: str | Path) -> Explanation:
    """Load an explanation saved by :func:`save_explanation`."""
    path = Path(path)
    if not path.exists():
        raise ExplainerError(f"no such explanation file: {path}")
    with np.load(path, allow_pickle=False) as data:
        scalars = json.loads(bytes(data["scalars_json"]).decode())
        flow_index = None
        if "flow_nodes" in data:
            info = scalars["flow_index"]
            flow_index = FlowIndex(
                nodes=data["flow_nodes"],
                layer_edges=data["flow_layer_edges"],
                num_layers=info["num_layers"],
                num_edges=info["num_edges"],
                num_nodes=info["num_nodes"],
                target=info["target"],
            )
        return Explanation(
            edge_scores=data["edge_scores"].copy(),
            predicted_class=scalars["predicted_class"],
            method=scalars["method"],
            mode=scalars["mode"],
            target=scalars["target"],
            layer_edge_scores=(data["layer_edge_scores"].copy()
                               if "layer_edge_scores" in data else None),
            flow_scores=data["flow_scores"].copy() if "flow_scores" in data else None,
            flow_index=flow_index,
            context_node_ids=(data["context_node_ids"].copy()
                              if "context_node_ids" in data else None),
            context_edge_positions=(data["context_edge_positions"].copy()
                                    if "context_edge_positions" in data else None),
            meta=scalars.get("meta", {}),
        )
