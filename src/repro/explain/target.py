"""The single target shape of the explanation API.

Every explanation entry point — :meth:`Explainer.explain
<repro.explain.base.Explainer.explain>`, :func:`explain_instances
<repro.explain.batch.explain_instances>`, the serving protocol's
``ExplainRequest`` and the runner's ``JobSpec`` payloads — addresses *what
is being explained* with one frozen value type instead of the historical
mix of bare node ids, ``(u, v)`` endpoint tuples and task-dependent graph
indices. Three constructors cover the three message-passing tasks the
paper's §II lists:

``ExplainTarget.node(i)``
    the prediction at node ``i`` (node classification),
``ExplainTarget.link(u, v)``
    the predicted edge ``u -> v`` (link prediction),
``ExplainTarget.graph(j)``
    graph ``j`` of a multi-graph dataset (graph classification).

Legacy shapes keep working for one release: :meth:`ExplainTarget.coerce`
accepts a bare ``int`` or an ``(u, v)`` tuple behind a
:class:`DeprecationWarning`, and :meth:`ExplainTarget.resolve` performs the
same conversion silently for *internal* plumbing whose records predate the
redesign (e.g. :class:`~repro.eval.fidelity.Instance` built from resolved
node ids). New code should construct targets explicitly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..errors import ExplainerError

__all__ = ["ExplainTarget", "as_node_id"]

TARGET_KINDS = ("node", "link", "graph")

#: stacklevel puts the warning on the caller of the public entry point,
#: two frames above the coercion helper itself.
_WARN_STACKLEVEL = 3


def _as_index(value: object, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, (int,)) \
            and not hasattr(value, "__index__"):
        raise ExplainerError(f"{what} must be an integer, got {value!r}")
    index = int(value)
    if index < 0:
        raise ExplainerError(f"{what} must be non-negative, got {index}")
    return index


@dataclass(frozen=True)
class ExplainTarget:
    """One explanation target: a node, a link, or a whole graph.

    Attributes
    ----------
    kind:
        ``"node"``, ``"link"`` or ``"graph"``.
    ids:
        The coordinates of the target in that kind's id space:
        ``(node,)``, ``(u, v)`` or ``(graph_index,)``.

    Frozen and hashable, so targets key caches and dedup tables directly.
    """

    kind: str
    ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in TARGET_KINDS:
            raise ExplainerError(
                f"unknown target kind {self.kind!r}; expected one of {TARGET_KINDS}")
        arity = 2 if self.kind == "link" else 1
        if not isinstance(self.ids, tuple) or len(self.ids) != arity \
                or not all(isinstance(i, int) and not isinstance(i, bool)
                           for i in self.ids):
            raise ExplainerError(
                f"{self.kind} target needs {arity} integer id(s), got {self.ids!r}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def node(cls, index: int) -> "ExplainTarget":
        """The prediction at node ``index`` (node classification)."""
        return cls("node", (_as_index(index, "node target"),))

    @classmethod
    def link(cls, u: int, v: int) -> "ExplainTarget":
        """The predicted link ``u -> v`` (link prediction)."""
        return cls("link", (_as_index(u, "link endpoint u"),
                            _as_index(v, "link endpoint v")))

    @classmethod
    def graph(cls, index: int = 0) -> "ExplainTarget":
        """Graph ``index`` of a multi-graph dataset (graph classification)."""
        return cls("graph", (_as_index(index, "graph target"),))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        """The node id of a node target (raises for link/graph kinds)."""
        if self.kind != "node":
            raise ExplainerError(f"{self} is not a node target")
        return self.ids[0]

    @property
    def endpoints(self) -> tuple[int, int]:
        """``(u, v)`` of a link target (raises for node/graph kinds)."""
        if self.kind != "link":
            raise ExplainerError(f"{self} is not a link target")
        return (self.ids[0], self.ids[1])

    @property
    def graph_index(self) -> int:
        """The graph index of a graph target (raises for node/link kinds)."""
        if self.kind != "graph":
            raise ExplainerError(f"{self} is not a graph target")
        return self.ids[0]

    def describe(self) -> str:
        """Compact human/log form, e.g. ``node:412`` or ``link:3-7``."""
        return f"{self.kind}:{'-'.join(str(i) for i in self.ids)}"

    # ------------------------------------------------------------------
    # wire codec (JSON job payloads, serve requests, journals)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """JSON-serializable form, inverse of :meth:`from_wire`."""
        return {"kind": self.kind, "ids": list(self.ids)}

    @classmethod
    def from_wire(cls, payload: object) -> "ExplainTarget":
        """Decode a wire dict: ``{"kind": ..., "ids": [...]}`` or the
        shorthand forms ``{"node": i}`` / ``{"link": [u, v]}`` /
        ``{"graph": j}``."""
        if isinstance(payload, ExplainTarget):
            return payload
        if not isinstance(payload, dict):
            raise ExplainerError(
                f"explain target wire form must be an object, got "
                f"{type(payload).__name__}")
        if "kind" in payload:
            ids = payload.get("ids")
            if not isinstance(ids, (list, tuple)):
                raise ExplainerError('explain target "ids" must be a list')
            return cls(str(payload["kind"]), tuple(_as_index(i, "target id")
                                                   for i in ids))
        shorthand = {k: v for k, v in payload.items() if k in TARGET_KINDS}
        if len(shorthand) != 1:
            raise ExplainerError(
                f"explain target object must have exactly one of "
                f"{TARGET_KINDS} (or kind/ids), got {sorted(payload)}")
        kind, value = next(iter(shorthand.items()))
        if kind == "link":
            if not isinstance(value, (list, tuple)) or len(value) != 2:
                raise ExplainerError('"link" target must be a [u, v] pair')
            return cls.link(value[0], value[1])
        return cls(kind, (_as_index(value, f"{kind} target"),))

    # ------------------------------------------------------------------
    # legacy coercion
    # ------------------------------------------------------------------
    @classmethod
    def resolve(cls, value: "ExplainTarget | int | tuple | None", *,
                task: str = "node") -> "ExplainTarget | None":
        """Silent conversion of legacy shapes (internal plumbing).

        ``None`` passes through (graph tasks explain the given instance);
        a bare int resolves per ``task`` — a node id for node tasks, a
        graph index otherwise; an ``(u, v)`` pair resolves to a link.
        Records that predate the redesign (``Instance.target``, journal
        payloads) go through here; *public* entry points use
        :meth:`coerce`, which additionally warns.
        """
        if value is None or isinstance(value, ExplainTarget):
            return value
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return cls.link(value[0], value[1])
        index = _as_index(value, "explain target")
        if task == "node":
            return cls.node(index)
        return cls.graph(index)

    @classmethod
    def coerce(cls, value: "ExplainTarget | int | tuple | None", *,
               task: str = "node",
               where: str = "explain") -> "ExplainTarget | None":
        """:meth:`resolve`, plus a :class:`DeprecationWarning` on legacy
        shapes — the one-release compatibility path of the public API."""
        if value is None or isinstance(value, ExplainTarget):
            return value
        target = cls.resolve(value, task=task)
        hint = {"node": f"ExplainTarget.node({target.ids[0]})",
                "link": f"ExplainTarget.link{target.ids}",
                "graph": f"ExplainTarget.graph({target.ids[0]})"}[target.kind]
        warnings.warn(  # repro: sunset[2.0]
            f"{where}: bare {type(value).__name__} targets are deprecated; "
            f"pass {hint}", DeprecationWarning, stacklevel=_WARN_STACKLEVEL)
        return target

    def __str__(self) -> str:
        return self.describe()


def as_node_id(target: "ExplainTarget | int | None") -> int | None:
    """The node id a target addresses, or ``None`` for whole-instance
    targets — the helper the evaluation layer uses to index probability
    rows regardless of which target shape a record carries."""
    if target is None:
        return None
    if isinstance(target, ExplainTarget):
        return target.node_id if target.kind == "node" else None
    return int(target)
