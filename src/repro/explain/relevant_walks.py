"""Top-k relevant-walk search (the polynomial-time flow explainer family).

The paper's related work (§II) cites follow-ups that avoid enumerating all
``|F|`` flows: sGNN-LRP reduces GNN-LRP's complexity from exponential to
linear in depth, and EMP-neu / AMP-ave find the top-k relevant walks in
polynomial time. This module implements that idea as an exact algorithm:

1. **Per-layer edge relevance** from a single backward pass: the gradient
   magnitude of the class log-probability w.r.t. each layer edge's mask
   multiplier (evaluated at the all-ones mask).
2. A walk's relevance estimate is the product of its per-layer edge
   relevances — additive in log-space, so the **top-k walks are the k
   longest paths in a layered DAG** with ``L·(E+N)`` edges, found exactly
   by dynamic programming with per-node k-best lists in
   ``O(L · (E+N) · k log k)`` — no flow enumeration at all.

The result is returned in the standard :class:`Explanation` format with a
:class:`FlowIndex` covering exactly the k discovered walks, so all the
flow-level tooling (tables, mass analysis, agreement) applies.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, log_softmax
from ..errors import ExplainerError
from ..flows import FlowIndex
from ..graph import Graph
from ..nn.message_passing import augment_edges, num_layer_edges
from ..nn.models import GNN
from .base import Explainer, Explanation
from .flow_common import flow_scores_to_edge_scores

__all__ = ["RelevantWalks"]

_LOG_FLOOR = -30.0  # log-relevance assigned to zero-gradient edges


class RelevantWalks(Explainer):
    """Exact top-k walk search over gradient-based layer-edge relevance.

    Parameters
    ----------
    model:
        Pretrained target model.
    k:
        Number of walks to return.
    """

    name = "relevant_walks"
    is_flow_based = True

    def __init__(self, model: GNN, k: int = 20, seed: int = 0):
        super().__init__(model, seed=seed)
        if k <= 0:
            raise ExplainerError("k must be positive")
        self.k = k

    # ------------------------------------------------------------------
    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        class_idx = self.predicted_class(graph, target=node)
        context = self.node_context(graph, node)
        explanation = self._search(context.subgraph, target=context.local_target,
                                   class_idx=class_idx, mode=mode)
        explanation.target = node
        explanation.context_node_ids = context.node_ids
        explanation.context_edge_positions = context.edge_positions
        explanation.edge_scores = self.lift_edge_scores(
            context, explanation.edge_scores, graph.num_edges
        )
        return explanation

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        return self._search(graph, target=None,
                            class_idx=self.predicted_class(graph), mode=mode)

    # ------------------------------------------------------------------
    def _layer_edge_relevance(self, graph: Graph, class_idx: int,
                              target: int | None) -> np.ndarray:
        """``(L, E+N)`` gradient magnitudes at the all-ones mask."""
        width = num_layer_edges(graph.num_edges, graph.num_nodes)
        masks = [Tensor(np.ones(width), requires_grad=True)
                 for _ in range(self.model.num_layers)]
        log_probs = log_softmax(self.model.forward_graph(graph, edge_masks=masks), axis=-1)
        row = target if target is not None else 0
        log_probs[row, class_idx].backward()
        return np.stack([
            np.abs(m.grad.reshape(-1)) if m.grad is not None else np.zeros(width)
            for m in masks
        ])

    def _k_best_walks(self, graph: Graph, log_weights: np.ndarray,
                      target: int | None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exact k-best paths through the layered DAG.

        Returns ``(nodes, layer_edges, scores)`` for the discovered walks,
        sorted by descending total log-relevance.
        """
        src, dst = augment_edges(graph.edge_index, graph.num_nodes)
        num_layers = self.model.num_layers
        k = self.k

        # best[v] = list of (score, walk_nodes, walk_edges) for partial
        # walks *ending* at v after processing layer l.
        best: list[list[tuple[float, tuple[int, ...], tuple[int, ...]]]] = [
            [(0.0, (v,), ())] for v in range(graph.num_nodes)
        ]
        for l in range(num_layers):
            nxt: list[list[tuple[float, tuple[int, ...], tuple[int, ...]]]] = [
                [] for _ in range(graph.num_nodes)
            ]
            for e in range(src.shape[0]):
                u, v = int(src[e]), int(dst[e])
                w = float(log_weights[l, e])
                for score, nodes, edges in best[u]:
                    nxt[v].append((score + w, nodes + (v,), edges + (e,)))
            for v in range(graph.num_nodes):
                nxt[v].sort(key=lambda t: -t[0])
                del nxt[v][k:]
            best = nxt

        if target is not None:
            finals = list(best[target])
        else:
            finals = [walk for v in range(graph.num_nodes) for walk in best[v]]
        finals.sort(key=lambda t: -t[0])
        finals = finals[:k]
        if not finals:
            raise ExplainerError("no walks found (graph has no layer edges)")

        nodes = np.array([walk[1] for walk in finals], dtype=np.int64)
        edges = np.array([walk[2] for walk in finals], dtype=np.int64)
        scores = np.array([walk[0] for walk in finals])
        return nodes, edges, scores

    def _search(self, graph: Graph, target: int | None, class_idx: int,
                mode: str) -> Explanation:
        relevance = self._layer_edge_relevance(graph, class_idx, target)
        log_weights = np.where(relevance > 0, np.log(relevance + 1e-300), _LOG_FLOOR)

        nodes, edges, log_scores = self._k_best_walks(graph, log_weights, target)
        flow_index = FlowIndex(
            nodes=nodes,
            layer_edges=edges,
            num_layers=self.model.num_layers,
            num_edges=graph.num_edges,
            num_nodes=graph.num_nodes,
            target=target,
        )
        # Normalize to (0, 1] relative relevance for presentation.
        flow_scores = np.exp(log_scores - log_scores.max())
        return Explanation(
            edge_scores=flow_scores_to_edge_scores(flow_index, flow_scores),
            predicted_class=class_idx,
            method=self.name,
            mode=mode,
            flow_scores=flow_scores,
            flow_index=flow_index,
            meta={"params": {"k": self.k}, "log_scores": log_scores},
        )
