"""Random-score baseline.

Not part of the paper's comparison; used in tests as a sanity floor —
every real method should beat it on fidelity/AUC — and useful to users as
a null explainer.
"""

from __future__ import annotations

from ..graph import Graph
from ..nn.models import GNN
from ..rng import ensure_rng
from .base import Explainer, Explanation

__all__ = ["RandomExplainer"]


class RandomExplainer(Explainer):
    """Assigns uniform random importance to every edge."""

    name = "random"

    def __init__(self, model: GNN, seed: int = 0):
        super().__init__(model, seed=seed)
        self._rng = ensure_rng(seed)

    def explain_node(self, graph: Graph, node: int, mode: str = "factual") -> Explanation:
        context = self.node_context(graph, node)
        local = self._rng.random(context.subgraph.num_edges)
        return Explanation(
            edge_scores=self.lift_edge_scores(context, local, graph.num_edges),
            predicted_class=self.predicted_class(graph, target=node),
            method=self.name,
            mode=mode,
            target=node,
            context_node_ids=context.node_ids,
            context_edge_positions=context.edge_positions,
        )

    def explain_graph(self, graph: Graph, mode: str = "factual") -> Explanation:
        return Explanation(
            edge_scores=self._rng.random(graph.num_edges),
            predicted_class=self.predicted_class(graph),
            method=self.name,
            mode=mode,
        )
