"""SARIF 2.1.0 output: document shape, rule metadata, result anchoring."""

import json

from repro.checks import lint_paths, run_lint, to_sarif
from repro.checks.registry import all_rules


def document(tmp_path):
    result = lint_paths([tmp_path / "src"])
    return to_sarif(result), result


class TestDocumentShape:
    def test_top_level_envelope(self, make_module, tmp_path):
        make_module("pkg.mod", "x = 1\n")
        doc, _ = document(tmp_path)
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        assert len(doc["runs"]) == 1
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert len(driver["rules"]) == len(all_rules())

    def test_every_registered_rule_is_described(self, make_module, tmp_path):
        make_module("pkg.mod", "x = 1\n")
        doc, _ = document(tmp_path)
        described = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert described == {r.code for r in all_rules()}
        for rule in doc["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["fullDescription"]["text"]

    def test_clean_run_has_no_results(self, make_module, tmp_path):
        make_module("pkg.mod", "x = 1\n")
        doc, _ = document(tmp_path)
        run = doc["runs"][0]
        assert run["results"] == []
        assert run["invocations"][0]["executionSuccessful"] is True


class TestResults:
    def test_finding_maps_to_one_based_region(self, make_module, tmp_path):
        make_module("repro.flows.bad",
                    "import random\n\nvalue = random.random()\n")
        doc, result = document(tmp_path)
        results = doc["runs"][0]["results"]
        assert len(results) == len(result.violations) >= 1
        entry = results[0]
        violation = result.violations[0]
        assert entry["ruleId"] == violation.code
        region = entry["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == violation.line
        assert region["startColumn"] == violation.col + 1  # 1-based
        index = entry["ruleIndex"]
        assert doc["runs"][0]["tool"]["driver"]["rules"][index]["id"] == \
            violation.code

    def test_engine_errors_become_notifications(self, make_module, tmp_path):
        make_module("pkg.broken", "def broken(:\n")
        doc, result = document(tmp_path)
        invocation = doc["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        notes = invocation["toolExecutionNotifications"]
        assert len(notes) == len(result.errors) == 1
        assert "syntax error" in notes[0]["message"]["text"]


class TestCliFormat:
    def test_run_lint_emits_parseable_sarif(self, make_module, tmp_path,
                                            capsys):
        make_module("pkg.mod", "x = 1\n")
        code = run_lint([str(tmp_path / "src")], output_format="sarif")
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"

    def test_unknown_format_is_a_usage_error(self, tmp_path, capsys):
        code = run_lint([str(tmp_path)], output_format="yaml")
        assert code == 2
        assert "unknown format" in capsys.readouterr().out
