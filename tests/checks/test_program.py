"""Whole-program rules: seeded violation + clean twin per rule family,
plus ProgramContext behavior on pathological trees."""

import textwrap

from repro.checks import lint_paths
from repro.checks.blocking import BLOCKING_BARE, BLOCKING_CALLS
from repro.checks.program import ProgramContext, parse_version, summarize
from repro.checks.program.api_surface import (DeadExport, DunderAllDrift,
                                              PrivateModuleReachIn)
from repro.checks.program.contracts import (DeprecationSunset,
                                            KernelBackendContract)
from repro.checks.program.dataflow import TransitiveBlockingCall
from repro.checks.program.layering import (LAYERS, ImportCycle,
                                           LayeringContract, layer_of)


def lint(tmp_path, *codes):
    result = lint_paths([tmp_path / "src"], select=list(codes))
    return [v.format() for v in result.violations]


class TestImportCycle:
    def test_seeded_cycle_reported_once_with_path(self, make_module, tmp_path):
        make_module("pkg.__init__", "")
        make_module("pkg.alpha", "from pkg.beta import b\n\na = 1\n")
        make_module("pkg.beta", "from pkg.alpha import a\n\nb = 2\n")
        found = lint(tmp_path, "RPR100")
        assert len(found) == 1
        assert "RPR100" in found[0]
        assert "pkg.alpha -> pkg.beta -> pkg.alpha" in found[0]
        # anchored at the lexicographically-first member's import line
        assert "src/pkg/alpha.py:1:" in found[0]

    def test_lazy_edge_breaks_the_cycle(self, make_module, tmp_path):
        make_module("pkg.__init__", "")
        make_module("pkg.alpha", textwrap.dedent("""\
            def use_b():
                from pkg.beta import b
                return b

            a = 1
            """))
        make_module("pkg.beta", "from pkg.alpha import a\n\nb = 2\n")
        assert lint(tmp_path, "RPR100") == []

    def test_three_module_cycle_names_shortest_path(self, make_module,
                                                    tmp_path):
        make_module("pkg.__init__", "")
        make_module("pkg.a", "import pkg.b\n")
        make_module("pkg.b", "import pkg.c\n")
        make_module("pkg.c", "import pkg.a\n")
        found = lint(tmp_path, "RPR100")
        assert len(found) == 1
        assert "pkg.a -> pkg.b -> pkg.c -> pkg.a" in found[0]


class TestLayeringContract:
    def test_contract_shape_is_pinned(self):
        # the declared order the tree is audited against; reordering it
        # is an architecture decision, not a refactor side effect
        assert [name for name, _ in LAYERS] == [
            "foundation", "substrate", "data", "models", "flows",
            "explain", "evaluation", "orchestration"]
        assert layer_of("repro.sparse.kernels") == (1, "substrate")
        assert layer_of("repro.core") == (5, "explain")
        assert layer_of("repro.serve.daemon") == (7, "orchestration")
        assert layer_of("repro") == (7, "orchestration")
        assert layer_of("unrelated.module") is None

    def test_seeded_upward_eager_import(self, make_module, tmp_path):
        make_module("repro.__init__", "")
        make_module("repro.sparse.compute", "from repro.nn.zoo import train\n")
        make_module("repro.nn.zoo", "def train():\n    return 1\n")
        found = lint(tmp_path, "RPR101")
        assert len(found) == 1
        assert "'substrate'" in found[0] and "'models'" in found[0]
        assert "repro.sparse.compute" in found[0]

    def test_lazy_upward_import_is_sanctioned(self, make_module, tmp_path):
        make_module("repro.__init__", "")
        make_module("repro.sparse.compute", textwrap.dedent("""\
            def bench():
                from repro.nn.zoo import train
                return train()
            """))
        make_module("repro.nn.zoo", "def train():\n    return 1\n")
        assert lint(tmp_path, "RPR101") == []

    def test_type_checking_import_is_not_eager(self, make_module, tmp_path):
        make_module("repro.__init__", "")
        make_module("repro.sparse.compute", textwrap.dedent("""\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.nn.zoo import train
            """))
        make_module("repro.nn.zoo", "def train():\n    return 1\n")
        assert lint(tmp_path, "RPR101") == []


class TestDeadExport:
    def test_seeded_dead_export(self, make_module, tmp_path):
        make_module("pkg.__init__",
                    '__all__ = ["used", "unused"]\n\n'
                    "used = 1\nunused = 2\n")
        make_module("consumer", "from pkg import used\n\nprint(used)\n")
        found = lint(tmp_path, "RPR110")
        assert len(found) == 1
        assert "'unused'" in found[0]

    def test_import_from_defining_module_credits_facade(self, make_module,
                                                        tmp_path):
        # facade re-exports; the consumer imports from the defining
        # module — the facade entry is an alias of a used symbol
        make_module("pkg.__init__",
                    "from pkg.impl import thing\n\n"
                    '__all__ = ["thing"]\n')
        make_module("pkg.impl", "thing = 1\n")
        make_module("consumer", "from pkg.impl import thing\n\nprint(thing)\n")
        assert lint(tmp_path, "RPR110") == []

    def test_no_root_package_means_no_findings(self, make_module, tmp_path):
        # a slice without the tree's root package proves nothing about
        # who imports what — lint one file, not the tree
        path = make_module("pkg.sub.mod",
                           '__all__ = ["unused"]\n\nunused = 1\n')
        result = lint_paths([path], select=["RPR110"])
        assert result.violations == []

    def test_star_import_credits_every_all_name(self, make_module, tmp_path):
        make_module("pkg.__init__",
                    '__all__ = ["one", "two"]\n\none = 1\ntwo = 2\n')
        make_module("consumer", "from pkg import *\n")
        assert lint(tmp_path, "RPR110") == []


class TestDunderAllDrift:
    def test_seeded_phantom_name(self, make_module, tmp_path):
        make_module("pkg.mod", '__all__ = ["real", "phantom"]\n\nreal = 1\n')
        found = lint(tmp_path, "RPR111")
        assert len(found) == 1
        assert "'phantom'" in found[0]

    def test_bound_names_are_clean(self, make_module, tmp_path):
        make_module("pkg.mod", textwrap.dedent("""\
            __all__ = ["real", "Klass", "imported"]

            from os.path import join as imported

            real = 1


            class Klass:
                pass
            """))
        assert lint(tmp_path, "RPR111") == []

    def test_package_may_export_its_own_submodules(self, make_module,
                                                   tmp_path):
        make_module("pkg.__init__", '__all__ = ["sub"]\n')
        make_module("pkg.sub", "x = 1\n")
        assert lint(tmp_path, "RPR111") == []


class TestPrivateModuleReachIn:
    def test_seeded_cross_subpackage_reach_in(self, make_module, tmp_path):
        make_module("pkg.left._internal", "secret = 1\n")
        make_module("pkg.right.user",
                    "from pkg.left._internal import secret\n")
        found = lint(tmp_path, "RPR112")
        assert len(found) == 1
        assert "'_internal'" in found[0]
        assert "pkg.right.user" in found[0]

    def test_same_subpackage_may_use_its_privates(self, make_module,
                                                  tmp_path):
        make_module("pkg.left._internal", "secret = 1\n")
        make_module("pkg.left.user",
                    "from pkg.left._internal import secret\n")
        assert lint(tmp_path, "RPR112") == []


_REGISTRY = textwrap.dedent("""\
    REQUIRED_BACKEND = "scipy"

    KERNELS = {}


    def register_kernel(op, backend, fn):
        KERNELS[(op, backend)] = fn


    def _scatter_scipy(values, index, out_size):
        return values


    register_kernel("scatter_add", "scipy", _scatter_scipy)
    """)


class TestKernelBackendContract:
    def test_seeded_arity_mismatch(self, make_module, tmp_path):
        make_module("pkg.kernels", _REGISTRY)
        make_module("pkg.fast", textwrap.dedent("""\
            from pkg.kernels import register_kernel


            def _scatter_fast(values, index):
                return values


            register_kernel("scatter_add", "numba", _scatter_fast)
            """))
        found = lint(tmp_path, "RPR120")
        assert len(found) == 1
        assert "takes 2 positional parameter(s)" in found[0]
        assert "(values, index, out_size)" in found[0]

    def test_matching_signature_is_clean(self, make_module, tmp_path):
        make_module("pkg.kernels", _REGISTRY)
        make_module("pkg.fast", textwrap.dedent("""\
            from pkg.kernels import register_kernel


            def _scatter_fast(values, index, out_size):
                return values


            register_kernel("scatter_add", "numba", _scatter_fast)
            """))
        assert lint(tmp_path, "RPR120") == []

    def test_unknown_op_is_flagged(self, make_module, tmp_path):
        make_module("pkg.kernels", _REGISTRY)
        make_module("pkg.fast", textwrap.dedent("""\
            from pkg.kernels import register_kernel


            def _segment_fast(values, index, out_size):
                return values


            register_kernel("segment_max", "numba", _segment_fast)
            """))
        found = lint(tmp_path, "RPR120")
        assert len(found) == 1
        assert "unknown op 'segment_max'" in found[0]


class TestDeprecationSunset:
    def _project(self, make_module, tmp_path, version, marker):
        (tmp_path / "pyproject.toml").write_text(
            f'[project]\nname = "pkg"\nversion = "{version}"\n')
        make_module("repro.shim", textwrap.dedent(f"""\
            import warnings


            def old():
                warnings.warn("old() is deprecated",
                              DeprecationWarning, stacklevel=2){marker}
            """))

    def test_missing_marker_is_flagged(self, make_module, tmp_path):
        self._project(make_module, tmp_path, "1.0.0", "")
        found = lint(tmp_path, "RPR121")
        assert len(found) == 1
        assert "without a sunset" in found[0]

    def test_future_sunset_is_clean(self, make_module, tmp_path):
        self._project(make_module, tmp_path, "1.0.0",
                      "  # repro: sunset[2.0]")
        assert lint(tmp_path, "RPR121") == []

    def test_past_sunset_demands_deletion(self, make_module, tmp_path):
        self._project(make_module, tmp_path, "2.1.0",
                      "  # repro: sunset[2.0]")
        found = lint(tmp_path, "RPR121")
        assert len(found) == 1
        assert "past its sunset" in found[0]
        assert "2.1.0" in found[0]

    def test_malformed_marker_is_flagged(self, make_module, tmp_path):
        self._project(make_module, tmp_path, "1.0.0",
                      "  # repro: sunset[soon]")
        found = lint(tmp_path, "RPR121")
        assert len(found) == 1
        assert "malformed sunset marker" in found[0]

    def test_parse_version(self):
        assert parse_version("2.0") == (2, 0)
        assert parse_version("1.2.3") == (1, 2, 3)
        assert parse_version("soon") is None


class TestTransitiveBlockingCall:
    def test_seeded_two_hop_chain(self, make_module, tmp_path):
        assert "time.sleep" in BLOCKING_CALLS and "open" in BLOCKING_BARE
        make_module("repro.serve.util", textwrap.dedent("""\
            import time


            def settle():
                time.sleep(0.5)
            """))
        make_module("repro.serve.daemon", textwrap.dedent("""\
            from repro.serve.util import settle


            async def handle(request):
                settle()
                return request
            """))
        found = lint(tmp_path, "RPR130")
        assert len(found) == 1
        assert "blocking time.sleep()" in found[0]
        assert "handle (coroutine) -> settle (repro.serve.util)" in found[0]
        # anchored at the call site inside the coroutine
        assert "src/repro/serve/daemon.py:5:" in found[0]

    def test_async_boundary_is_clean(self, make_module, tmp_path):
        make_module("repro.serve.util", textwrap.dedent("""\
            import asyncio


            async def settle():
                await asyncio.sleep(0.5)
            """))
        make_module("repro.serve.daemon", textwrap.dedent("""\
            from repro.serve.util import settle


            async def handle(request):
                await settle()
                return request
            """))
        assert lint(tmp_path, "RPR130") == []

    def test_function_passed_as_value_is_not_an_edge(self, make_module,
                                                     tmp_path):
        make_module("repro.serve.daemon", textwrap.dedent("""\
            import asyncio
            import time


            def slow():
                time.sleep(1.0)


            async def handle(loop):
                await loop.run_in_executor(None, slow)
            """))
        assert lint(tmp_path, "RPR130") == []

    def test_outside_serve_is_unconstrained(self, make_module, tmp_path):
        make_module("repro.runner.worker", textwrap.dedent("""\
            import time


            def wait():
                time.sleep(1.0)


            async def drive():
                wait()
            """))
        assert lint(tmp_path, "RPR130") == []


class TestProgramContextPathologies:
    def test_syntax_error_file_is_skipped_with_error(self, make_module,
                                                     tmp_path):
        make_module("pkg.broken", "def broken(:\n")
        make_module("pkg.alpha", "from pkg.beta import b\n\na = 1\n")
        make_module("pkg.beta", "from pkg.alpha import a\n\nb = 2\n")
        result = lint_paths([tmp_path / "src"], select=["RPR100"])
        assert len(result.errors) == 1
        assert "syntax error" in result.errors[0][1]
        # the rest of the program is still analyzed
        assert any(v.code == "RPR100" for v in result.violations)

    def test_namespace_package_modules_resolve(self, make_module, tmp_path):
        # no __init__.py chain: modules fall back to their bare stem
        nsdir = tmp_path / "src" / "nspkg"
        nsdir.mkdir(parents=True)
        (nsdir / "mod.py").write_text("x = 1\n")
        result = lint_paths([tmp_path / "src"])
        assert result.errors == []
        assert result.files_checked == 1

    def test_deterministic_violation_ordering(self, make_module, tmp_path):
        make_module("pkg.__init__", "")
        make_module("pkg.a", "import pkg.b\n")
        make_module("pkg.b", "import pkg.a\n")
        make_module("pkg.zeta", '__all__ = ["ghost"]\n')
        runs = [lint(tmp_path, "RPR100", "RPR111") for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]
        assert runs[0] == sorted(runs[0])

    def test_summarize_roundtrips_through_dict(self, make_module, tmp_path):
        from repro.checks.engine import FileContext

        path = make_module("pkg.mod", textwrap.dedent("""\
            from os.path import join

            __all__ = ["helper"]


            def helper(a, b):
                return join(a, b)
            """))
        ctx = FileContext(path, path.as_posix(), path.read_text())
        summary = summarize(ctx)
        clone = type(summary).from_dict(summary.to_dict())
        assert clone == summary
        program = ProgramContext([clone])
        assert program.modules["pkg.mod"].dunder_all == ["helper"]

    def test_program_rules_see_cached_summaries(self, make_module, tmp_path):
        from repro.checks.cache import LintCache

        make_module("pkg.__init__", "")
        make_module("pkg.alpha", "from pkg.beta import b\n\na = 1\n")
        make_module("pkg.beta", "from pkg.alpha import a\n\nb = 2\n")
        cache_path = tmp_path / "cache.json"
        cold = lint_paths([tmp_path / "src"], select=["RPR100"],
                          cache=LintCache(cache_path))
        warm = lint_paths([tmp_path / "src"], select=["RPR100"],
                          cache=LintCache(cache_path))
        assert warm.files_from_cache == warm.files_checked
        assert [v.format() for v in warm.violations] == \
            [v.format() for v in cold.violations]
        assert warm.violations  # the cycle is still found without parsing


class TestProgramRuleClasses:
    def test_rule_classes_carry_program_scope(self):
        for cls in (ImportCycle, LayeringContract, DeadExport,
                    DunderAllDrift, PrivateModuleReachIn,
                    KernelBackendContract, DeprecationSunset,
                    TransitiveBlockingCall):
            assert cls.scope == "program"
            assert cls.code.startswith("RPR1")
