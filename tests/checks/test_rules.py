"""One seeded violation (and one clean twin) per rule, RPR001–RPR060."""

from repro.checks import lint_paths
from repro.obs.names import COUNTER_NAMES


def codes(result):
    return [v.code for v in result.violations]


def lint_one(make_module, dotted, source, select=None):
    return lint_paths([make_module(dotted, source)], select=select)


class TestGlobalRandomState:
    def test_np_random_module_call_flagged(self, make_module):
        result = lint_one(make_module, "scratch",
                          "import numpy as np\nnp.random.seed(0)\n",
                          select=["RPR001"])
        assert codes(result) == ["RPR001"]
        assert result.violations[0].line == 2

    def test_stdlib_random_alias_flagged(self, make_module):
        source = "import random as rnd\nx = rnd.random()\n"
        assert codes(lint_one(make_module, "scratch", source,
                              select=["RPR001"])) == ["RPR001"]

    def test_from_random_import_flagged(self, make_module):
        source = "from random import shuffle\n"
        assert codes(lint_one(make_module, "scratch", source,
                              select=["RPR001"])) == ["RPR001"]

    def test_default_rng_is_clean(self, make_module):
        source = ("import numpy as np\n"
                  "rng = np.random.default_rng(0)\n"
                  "x = rng.random()\n")
        assert lint_one(make_module, "scratch", source,
                        select=["RPR001"]).clean


class TestWallClockSeed:
    def test_time_seed_flagged(self, make_module):
        source = ("import time\nimport numpy as np\n"
                  "rng = np.random.default_rng(int(time.time()))\n")
        result = lint_one(make_module, "scratch", source, select=["RPR002"])
        assert codes(result) == ["RPR002"]

    def test_ensure_rng_with_pid_flagged(self, make_module):
        source = ("import os\nfrom repro.rng import ensure_rng\n"
                  "rng = ensure_rng(os.getpid())\n")
        assert codes(lint_one(make_module, "scratch", source,
                              select=["RPR002"])) == ["RPR002"]

    def test_integer_seed_is_clean(self, make_module):
        source = ("import numpy as np\nrng = np.random.default_rng(17)\n")
        assert lint_one(make_module, "scratch", source,
                        select=["RPR002"]).clean


class TestSetOrderIteration:
    def test_for_over_set_in_flows_flagged(self, make_module):
        source = "for x in {1, 2, 3}:\n    print(x)\n"
        assert codes(lint_one(make_module, "repro.flows.scratch", source,
                              select=["RPR003"])) == ["RPR003"]

    def test_list_of_set_union_flagged(self, make_module):
        source = "a = {1}\nb = {2}\nxs = list(a.union(b))\n"
        assert codes(lint_one(make_module, "repro.explain.scratch", source,
                              select=["RPR003"])) == ["RPR003"]

    def test_sorted_set_is_clean(self, make_module):
        source = "for x in sorted({1, 2, 3}):\n    print(x)\n"
        assert lint_one(make_module, "repro.flows.scratch", source,
                        select=["RPR003"]).clean

    def test_out_of_scope_module_not_flagged(self, make_module):
        source = "for x in {1, 2, 3}:\n    print(x)\n"
        assert lint_one(make_module, "repro.eval.scratch", source,
                        select=["RPR003"]).clean


class TestErrorDiscipline:
    def test_bare_except_flagged(self, make_module):
        source = "try:\n    x = 1\nexcept:\n    x = 2\n"
        assert codes(lint_one(make_module, "scratch", source,
                              select=["RPR010"])) == ["RPR010"]

    def test_swallowed_exception_flagged(self, make_module):
        source = "try:\n    x = 1\nexcept Exception:\n    pass\n"
        assert codes(lint_one(make_module, "scratch", source,
                              select=["RPR011"])) == ["RPR011"]

    def test_swallowed_tuple_flagged(self, make_module):
        source = "try:\n    x = 1\nexcept (ValueError, BaseException):\n    ...\n"
        assert codes(lint_one(make_module, "scratch", source,
                              select=["RPR011"])) == ["RPR011"]

    def test_recorded_broad_except_is_clean(self, make_module):
        source = ("failures = []\ntry:\n    x = 1\n"
                  "except Exception as exc:\n    failures.append(exc)\n")
        assert lint_one(make_module, "scratch", source,
                        select=["RPR010", "RPR011"]).clean


class TestForeignRaise:
    def test_builtin_raise_in_library_flagged(self, make_module):
        source = "def f():\n    raise ValueError('nope')\n"
        result = lint_one(make_module, "repro.scratch", source,
                          select=["RPR012"])
        assert codes(result) == ["RPR012"]
        # the message advertises the live hierarchy
        assert "ReproError" in result.violations[0].message

    def test_repro_error_is_clean(self, make_module):
        source = ("from repro.errors import FlowError\n"
                  "def f():\n    raise FlowError('nope')\n")
        assert lint_one(make_module, "repro.scratch", source,
                        select=["RPR012"]).clean

    def test_not_implemented_allowed(self, make_module):
        source = "def f():\n    raise NotImplementedError\n"
        assert lint_one(make_module, "repro.scratch", source,
                        select=["RPR012"]).clean

    def test_outside_library_not_flagged(self, make_module):
        source = "def f():\n    raise ValueError('fine in tests')\n"
        assert lint_one(make_module, "tests.scratch", source,
                        select=["RPR012"]).clean


class TestPositionalDefaults:
    def test_public_eval_function_flagged(self, make_module):
        source = "def curve(model, metric='minus'):\n    return metric\n"
        result = lint_one(make_module, "repro.eval.scratch", source,
                          select=["RPR020"])
        assert codes(result) == ["RPR020"]
        assert "metric" in result.violations[0].message

    def test_keyword_only_is_clean(self, make_module):
        source = "def curve(model, *, metric='minus'):\n    return metric\n"
        assert lint_one(make_module, "repro.eval.scratch", source,
                        select=["RPR020"]).clean

    def test_private_function_exempt(self, make_module):
        source = "def _helper(model, metric='minus'):\n    return metric\n"
        assert lint_one(make_module, "repro.eval.scratch", source,
                        select=["RPR020"]).clean

    def test_all_controls_publicness(self, make_module):
        source = ("__all__ = ['public']\n"
                  "def public(x, *, y=1):\n    return y\n"
                  "def unexported(x, y=1):\n    return y\n")
        assert lint_one(make_module, "repro.explain.scratch", source,
                        select=["RPR020"]).clean

    def test_out_of_scope_module_exempt(self, make_module):
        source = "def curve(model, metric='minus'):\n    return metric\n"
        assert lint_one(make_module, "repro.runner.scratch", source,
                        select=["RPR020"]).clean


class TestFlatExecutionKwargs:
    def test_flat_jobs_kwarg_flagged_even_in_tests(self, make_module):
        source = ("from repro.eval.experiments import run_fidelity_experiment\n"
                  "run_fidelity_experiment('d', 'gcn', ('gradcam',), jobs=2)\n")
        result = lint_one(make_module, "tests.scratch", source,
                          select=["RPR021"])
        assert codes(result) == ["RPR021"]
        assert "ExecutionConfig" in result.violations[0].message

    def test_execution_object_is_clean(self, make_module):
        source = ("from repro.eval.experiments import run_fidelity_experiment\n"
                  "from repro.execution import ExecutionConfig\n"
                  "run_fidelity_experiment('d', 'gcn', ('gradcam',),\n"
                  "                        execution=ExecutionConfig(jobs=2))\n")
        assert lint_one(make_module, "tests.scratch", source,
                        select=["RPR021"]).clean


class TestObservabilityConformance:
    def test_unregistered_span_literal_flagged(self, make_module):
        source = ("from repro.obs import span\n"
                  "with span('masked_foward_batch'):\n    pass\n")
        result = lint_one(make_module, "repro.scratch", source,
                          select=["RPR030"])
        assert codes(result) == ["RPR030"]
        assert "did you mean" in result.violations[0].message

    def test_registered_constant_is_clean(self, make_module):
        source = ("from repro.obs import span\n"
                  "from repro.obs.names import SPAN_FIT\n"
                  "with span(SPAN_FIT):\n    pass\n")
        assert lint_one(make_module, "repro.scratch", source,
                        select=["RPR030"]).clean

    def test_tests_may_open_ad_hoc_spans(self, make_module):
        source = ("from repro.obs import span\n"
                  "with span('anything-goes'):\n    pass\n")
        assert lint_one(make_module, "tests.scratch", source,
                        select=["RPR030"]).clean

    def test_unregistered_stage_flagged(self, make_module):
        source = ("from repro.obs import PERF\n"
                  "with PERF.stage('bogus_stage'):\n    pass\n")
        assert codes(lint_one(make_module, "repro.scratch", source,
                              select=["RPR031"])) == ["RPR031"]

    def test_unknown_counter_attribute_flagged(self, make_module):
        source = ("from repro.obs import PERF\n"
                  "PERF.batchedforwards += 1\n")
        result = lint_one(make_module, "repro.scratch", source,
                          select=["RPR031"])
        assert codes(result) == ["RPR031"]

    def test_declared_counters_and_methods_clean(self, make_module):
        counter = sorted(COUNTER_NAMES)[0]
        source = ("from repro.obs import PERF\n"
                  f"PERF.{counter} += 1\n"
                  "snap = PERF.snapshot()\n")
        assert lint_one(make_module, "repro.scratch", source,
                        select=["RPR031"]).clean


class TestBenchmarkConformance:
    def test_typod_workload_key_flagged(self, make_module):
        source = ("results = {}\n"
                  "results['fidelty_curve'] = {'speedup': 3.0}\n")
        result = lint_one(make_module, "bench_scratch", source,
                          select=["RPR040"])
        assert codes(result) == ["RPR040"]
        assert "did you mean" in result.violations[0].message

    def test_imported_constant_is_clean(self, make_module):
        source = ("from repro.obs.names import WORKLOAD_FLOWX\n"
                  "results = {}\n"
                  "results[WORKLOAD_FLOWX] = {'speedup': 3.0}\n")
        assert lint_one(make_module, "bench_scratch", source,
                        select=["RPR040"]).clean

    def test_registered_literal_is_clean(self, make_module):
        source = ("results = {}\n"
                  "results['flowx'] = {'speedup': 3.0}\n")
        assert lint_one(make_module, "bench_scratch", source,
                        select=["RPR040"]).clean

    def test_other_subscript_targets_ignored(self, make_module):
        source = ("payload = {}\n"
                  "payload['anything'] = 1\n"
                  "results = {}\n"
                  "results[0] = 'non-string keys are out of scope'\n")
        assert lint_one(make_module, "bench_scratch", source,
                        select=["RPR040"]).clean

    def test_rule_scoped_to_bench_modules(self, make_module):
        source = ("results = {}\n"
                  "results['not_a_workload'] = 1\n")
        assert lint_one(make_module, "repro.scratch", source,
                        select=["RPR040"]).clean
        assert lint_one(make_module, "tests.scratch", source,
                        select=["RPR040"]).clean


class TestRawUfuncScatter:
    def test_np_add_at_in_library_flagged(self, make_module):
        source = ("import numpy as np\n"
                  "out = np.zeros((4, 2))\n"
                  "np.add.at(out, [0, 1], 1.0)\n")
        result = lint_one(make_module, "repro.flows.scratch", source,
                          select=["RPR050"])
        assert codes(result) == ["RPR050"]
        assert result.violations[0].line == 3
        assert "scatter_add" in result.violations[0].message

    def test_np_maximum_at_flagged_with_segment_max_hint(self, make_module):
        source = ("import numpy as np\n"
                  "np.maximum.at(out, idx, vals)\n")
        result = lint_one(make_module, "repro.nn.scratch", source,
                          select=["RPR050"])
        assert codes(result) == ["RPR050"]
        assert "segment_max" in result.violations[0].message

    def test_repro_sparse_is_exempt(self, make_module):
        """The numpy backend inside repro.sparse *is* the dense reference."""
        source = ("import numpy as np\n"
                  "np.add.at(out, idx, vals)\n")
        assert lint_one(make_module, "repro.sparse.scratch", source,
                        select=["RPR050"]).clean

    def test_tests_and_benchmarks_are_exempt(self, make_module):
        source = ("import numpy as np\n"
                  "np.add.at(out, idx, vals)\n")
        assert lint_one(make_module, "tests.scratch", source,
                        select=["RPR050"]).clean
        assert lint_one(make_module, "bench_scratch", source,
                        select=["RPR050"]).clean

    def test_audited_noqa_suppresses(self, make_module):
        source = ("import numpy as np\n"
                  "np.add.at(out, idx, vals)  # repro: noqa[RPR050]\n")
        assert lint_one(make_module, "repro.autograd.scratch", source,
                        select=["RPR050"]).clean

    def test_plan_backed_dispatch_is_clean(self, make_module):
        source = ("from repro.sparse import kernel\n"
                  "out = kernel('scatter_add')(plan, values)\n")
        assert lint_one(make_module, "repro.nn.scratch", source,
                        select=["RPR050"]).clean


class TestBlockingCallInCoroutine:
    def test_time_sleep_in_serve_coroutine_flagged(self, make_module):
        source = ("import asyncio\n"
                  "import time\n"
                  "async def linger(self):\n"
                  "    time.sleep(0.5)\n")
        result = lint_one(make_module, "repro.serve.scratch", source,
                          select=["RPR060"])
        assert codes(result) == ["RPR060"]
        assert result.violations[0].line == 4
        assert "asyncio.sleep" in result.violations[0].message
        assert "linger" in result.violations[0].message

    def test_subprocess_and_open_flagged(self, make_module):
        source = ("import subprocess\n"
                  "async def reload_model(path):\n"
                  "    subprocess.run(['true'])\n"
                  "    data = open(path).read()\n"
                  "    return data\n")
        result = lint_one(make_module, "repro.serve.scratch", source,
                          select=["RPR060"])
        assert codes(result) == ["RPR060", "RPR060"]
        messages = " ".join(v.message for v in result.violations)
        assert "create_subprocess_exec" in messages
        assert "run_in_executor" in messages

    def test_sync_helper_in_serve_is_clean(self, make_module):
        source = ("import time\n"
                  "def warmup():\n"
                  "    time.sleep(0.1)\n")
        assert lint_one(make_module, "repro.serve.scratch", source,
                        select=["RPR060"]).clean

    def test_nested_sync_def_inside_coroutine_is_clean(self, make_module):
        """Nested defs run on the executor, where blocking is legal."""
        source = ("import time\n"
                  "async def dispatch(loop, executor):\n"
                  "    def work():\n"
                  "        time.sleep(0.1)\n"
                  "        return 1\n"
                  "    return await loop.run_in_executor(executor, work)\n")
        assert lint_one(make_module, "repro.serve.scratch", source,
                        select=["RPR060"]).clean

    def test_outside_repro_serve_is_exempt(self, make_module):
        source = ("import time\n"
                  "async def linger():\n"
                  "    time.sleep(0.5)\n")
        assert lint_one(make_module, "repro.runner.scratch", source,
                        select=["RPR060"]).clean
        assert lint_one(make_module, "tests.serve.scratch", source,
                        select=["RPR060"]).clean
