"""Engine mechanics: suppression, selection, exit codes, output formats."""

import io
import json

import pytest

import ast

from repro.checks import lint_paths, resolve_codes, run_lint
from repro.checks.engine import expand_noqa_map, module_name, statement_spans
from repro.checks.registry import RULES, Rule, register
from repro.errors import CheckError

BARE_EXCEPT = """\
try:
    x = 1
except:
    x = 2
"""


def codes(result):
    return [v.code for v in result.violations]


class TestNoqa:
    def test_bare_noqa_suppresses_every_rule(self, make_module):
        path = make_module("scratch", BARE_EXCEPT.replace(
            "except:", "except:  # repro: noqa"))
        assert lint_paths([path]).clean

    def test_coded_noqa_suppresses_that_code(self, make_module):
        path = make_module("scratch", BARE_EXCEPT.replace(
            "except:", "except:  # repro: noqa[RPR010]"))
        result = lint_paths([path])
        assert "RPR010" not in codes(result)

    def test_coded_noqa_leaves_other_codes(self, make_module):
        path = make_module("scratch", BARE_EXCEPT.replace(
            "except:", "except:  # repro: noqa[RPR001]"))
        assert codes(lint_paths([path])) == ["RPR010"]

    def test_multiple_codes_in_one_comment(self, make_module):
        # a bare broad except with a pass body trips RPR010 and RPR011
        source = "try:\n    x = 1\nexcept:  # repro: noqa[RPR010, RPR011]\n    pass\n"
        assert lint_paths([make_module("scratch", source)]).clean

    def test_noqa_only_covers_its_line(self, make_module):
        source = "# repro: noqa\ntry:\n    x = 1\nexcept:\n    x = 2\n"
        assert codes(lint_paths([make_module("scratch", source)])) == ["RPR010"]


class TestLogicalLineNoqa:
    """A noqa anywhere on a multi-line statement (or its decorators)
    covers the whole logical line, so findings anchored on the first
    line are suppressible from wherever the comment reads best."""

    def test_noqa_on_decorator_suppresses_def_line_finding(self,
                                                           make_module):
        source = (
            "import functools\n"
            "\n"
            "\n"
            "@functools.wraps(dict)  # repro: noqa[RPR070]\n"
            "def explain(target):\n"
            "    return target\n"
        )
        result = lint_paths([make_module("repro.explain.scratch", source)])
        assert "RPR070" not in codes(result)

    def test_noqa_on_closing_line_of_multiline_def(self, make_module):
        source = (
            "def explain(\n"
            "    target,\n"
            "):  # repro: noqa[RPR070]\n"
            "    return target\n"
        )
        result = lint_paths([make_module("repro.explain.scratch", source)])
        assert "RPR070" not in codes(result)

    def test_unsuppressed_twin_still_fires(self, make_module):
        source = (
            "def explain(\n"
            "    target,\n"
            "):\n"
            "    return target\n"
        )
        result = lint_paths([make_module("repro.explain.scratch", source)])
        assert "RPR070" in codes(result)

    def test_statement_spans_cover_decorators_and_headers(self):
        tree = ast.parse(
            "@deco(\n"      # 1
            "    1,\n"      # 2
            ")\n"           # 3
            "def f(\n"      # 4
            "    a,\n"      # 5
            "):\n"          # 6
            "    return a\n"  # 7
        )
        assert (1, 6) in set(statement_spans(tree))

    def test_expand_noqa_map_spreads_codes_across_span(self):
        tree = ast.parse("x = [\n    1,\n    2,\n]\n")
        literal = {3: frozenset({"RPR001"})}
        effective = expand_noqa_map(literal, tree)
        assert effective[1] == frozenset({"RPR001"})
        assert effective[4] == frozenset({"RPR001"})

    def test_suppress_all_wins_within_a_span(self):
        tree = ast.parse("x = [\n    1,\n]\n")
        literal = {1: frozenset({"RPR001"}), 2: None}
        effective = expand_noqa_map(literal, tree)
        assert effective[1] is None and effective[3] is None


class TestExitCodes:
    def test_clean_tree_is_zero(self, make_module):
        path = make_module("scratch", "x = 1\n")
        result = lint_paths([path])
        assert result.clean and result.exit_code == 0
        assert result.files_checked == 1

    def test_violations_are_one(self, make_module):
        result = lint_paths([make_module("scratch", BARE_EXCEPT)])
        assert result.exit_code == 1

    def test_syntax_error_is_two(self, make_module):
        result = lint_paths([make_module("broken", "def f(:\n")])
        assert result.exit_code == 2
        assert "syntax error" in result.errors[0][1]

    def test_missing_path_is_two(self, tmp_path):
        result = lint_paths([tmp_path / "no_such_file.py"])
        assert result.exit_code == 2
        assert "unreadable" in result.errors[0][1]


class TestSelection:
    def test_select_runs_only_named_rules(self, make_module):
        path = make_module("scratch", BARE_EXCEPT)
        result = lint_paths([path], select=["RPR001"])
        assert result.clean
        assert result.rule_codes == ["RPR001"]

    def test_select_is_case_insensitive(self):
        assert [r.code for r in resolve_codes(["rpr010"])] == ["RPR010"]

    def test_unknown_code_raises_checkerror(self):
        with pytest.raises(CheckError, match="RPR999"):
            resolve_codes(["RPR999"])

    def test_register_rejects_malformed_code(self):
        with pytest.raises(CheckError, match="does not match"):
            @register
            class Bad(Rule):
                code = "XYZ1"

    def test_register_rejects_duplicate_code(self):
        taken = sorted(RULES)[0]
        with pytest.raises(CheckError, match="duplicate"):
            @register
            class Clash(Rule):
                code = taken


class TestModuleResolution:
    def test_nested_packages_resolve_to_dotted_name(self, make_module):
        path = make_module("repro.flows.scratch", "x = 1\n")
        assert module_name(path) == "repro.flows.scratch"

    def test_file_outside_packages_is_bare_stem(self, tmp_path):
        path = tmp_path / "standalone.py"
        path.write_text("x = 1\n")
        assert module_name(path) == "standalone"


class TestRunLint:
    def test_json_schema(self, make_module):
        path = make_module("scratch", BARE_EXCEPT)
        stream = io.StringIO()
        exit_code = run_lint([str(path)], json_output=True, stream=stream)
        payload = json.loads(stream.getvalue())
        assert exit_code == 1
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        assert payload["errors"] == []
        [violation] = [v for v in payload["violations"]
                       if v["code"] == "RPR010"]
        assert set(violation) == {"code", "message", "path", "line", "col"}
        assert violation["line"] == 3

    def test_human_output_and_summary(self, make_module):
        path = make_module("scratch", BARE_EXCEPT)
        stream = io.StringIO()
        assert run_lint([str(path)], stream=stream) == 1
        text = stream.getvalue()
        assert f"{path.as_posix()}:3:0: RPR010" in text
        assert "violation(s)" in text

    def test_clean_summary(self, make_module):
        path = make_module("scratch", "x = 1\n")
        stream = io.StringIO()
        assert run_lint([str(path)], stream=stream) == 0
        assert "clean" in stream.getvalue()

    def test_unknown_rule_is_usage_error(self, make_module, tmp_path):
        stream = io.StringIO()
        assert run_lint([str(tmp_path)], select=["RPR999"], stream=stream) == 2
        assert "unknown rule code" in stream.getvalue()

    def test_unknown_rule_json_error(self, tmp_path):
        stream = io.StringIO()
        assert run_lint([str(tmp_path)], select=["RPR999"],
                        json_output=True, stream=stream) == 2
        assert "error" in json.loads(stream.getvalue())

    def test_list_rules(self):
        stream = io.StringIO()
        assert run_lint([], list_rules=True, stream=stream) == 0
        text = stream.getvalue()
        for code in RULES:
            assert code in text


class TestCLI:
    def test_lint_subcommand_wired(self, make_module):
        from repro.cli import main

        path = make_module("scratch", BARE_EXCEPT)
        assert main(["lint", str(path)]) == 1
        assert main(["lint", str(path), "--select", "RPR001"]) == 0
