"""The lint pass holds on the repository itself, and the name registry
agrees with the runtime objects it describes."""

from pathlib import Path

import repro
from repro.checks import RULES, lint_paths
from repro.obs.counters import PerfCounters
from repro.obs.names import COUNTER_NAMES, SPAN_NAMES, STAGE_NAMES

REPO_ROOT = Path(repro.__file__).resolve().parents[2]

EXPECTED_CODES = {
    "RPR001", "RPR002", "RPR003",          # determinism
    "RPR010", "RPR011", "RPR012",          # error discipline
    "RPR020", "RPR021",                    # API contracts
    "RPR030", "RPR031",                    # observability conformance
    "RPR040",                              # benchmark conformance
    "RPR050",                              # scatter discipline
    "RPR100", "RPR101",                    # architecture (whole-program)
    "RPR110", "RPR111", "RPR112",          # API surface (whole-program)
    "RPR120", "RPR121",                    # cross-file contracts
    "RPR130",                              # dataflow
}

#: The four roots the whole-program pass must see together: export-usage
#: accounting is only meaningful over every consumer at once.
ALL_ROOTS = [REPO_ROOT / "src", REPO_ROOT / "tests",
             REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]


class TestSelfHosting:
    def test_full_tree_is_clean(self):
        result = lint_paths(ALL_ROOTS)
        assert result.files_checked > 100
        assert result.errors == []
        assert result.violations == [], "\n".join(
            v.format() for v in result.violations)

    def test_program_rules_alone_are_clean(self):
        # the CI lint-program job's exact selection
        result = lint_paths(ALL_ROOTS, select=sorted(
            c for c in EXPECTED_CODES if c.startswith("RPR1")))
        assert result.errors == []
        assert result.violations == [], "\n".join(
            v.format() for v in result.violations)


class TestRegistryConsistency:
    def test_expected_rules_registered(self):
        assert EXPECTED_CODES <= set(RULES)

    def test_counter_names_track_perfcounters_slots(self):
        assert COUNTER_NAMES == frozenset(PerfCounters.__slots__) - {"stage_seconds"}

    def test_registries_are_disjoint_namespaces(self):
        # a stage accumulates seconds, a counter accumulates events —
        # one name must never be read as both
        assert not STAGE_NAMES & COUNTER_NAMES

    def test_span_names_nonempty_strings(self):
        assert SPAN_NAMES
        assert all(isinstance(n, str) and n for n in SPAN_NAMES)
