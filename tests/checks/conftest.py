"""Shared fixture helpers for the lint-engine tests.

``make_module`` recreates the package nesting the engine's
:func:`repro.checks.engine.module_name` resolver keys on, so a file
written to ``tmp_path/src/repro/flows/x.py`` (with ``__init__.py``
chains) lints exactly like the real tree.
"""

from pathlib import Path

import pytest


@pytest.fixture
def make_module(tmp_path):
    def _make(dotted: str, source: str) -> Path:
        *packages, stem = dotted.split(".")
        directory = tmp_path / "src"
        directory.mkdir(exist_ok=True)
        for part in packages:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            (directory / "__init__.py").touch()
        path = directory / f"{stem}.py"
        path.write_text(source)
        return path

    return _make
