"""The warm-run parse cache: hits, invalidation, and corruption safety."""

import json

from repro.checks import lint_paths
from repro.checks.cache import DEFAULT_CACHE_PATH, LintCache, checks_fingerprint


def run(tmp_path, cache_path):
    return lint_paths([tmp_path / "src"], cache=LintCache(cache_path))


class TestWarmRuns:
    def test_warm_run_serves_every_file_from_cache(self, make_module,
                                                   tmp_path):
        make_module("pkg.mod", "x = 1\n")
        make_module("pkg.other", "y = 2\n")
        cache_path = tmp_path / "cache.json"
        cold = run(tmp_path, cache_path)
        assert cold.files_from_cache == 0
        warm = run(tmp_path, cache_path)
        assert warm.files_checked == cold.files_checked
        assert warm.files_from_cache == warm.files_checked

    def test_cached_violations_survive_the_round_trip(self, make_module,
                                                      tmp_path):
        make_module("repro.flows.bad",
                    "import random\n\nvalue = random.random()\n")
        cache_path = tmp_path / "cache.json"
        cold = run(tmp_path, cache_path)
        warm = run(tmp_path, cache_path)
        assert [v.to_dict() for v in warm.violations] == \
            [v.to_dict() for v in cold.violations]
        assert warm.violations, "seeded RPR001 finding should persist"

    def test_modified_file_is_relinted(self, make_module, tmp_path):
        path = make_module("pkg.mod", "x = 1\n")
        cache_path = tmp_path / "cache.json"
        run(tmp_path, cache_path)
        path.write_text("x = 1\ny = 2\n")  # size change busts the key
        warm = run(tmp_path, cache_path)
        assert warm.files_from_cache == warm.files_checked - 1

    def test_rule_selection_change_busts_the_entry(self, make_module,
                                                   tmp_path):
        make_module("pkg.mod", "x = 1\n")
        cache_path = tmp_path / "cache.json"
        lint_paths([tmp_path / "src"], select=["RPR001"],
                   cache=LintCache(cache_path))
        full = run(tmp_path, cache_path)
        assert full.files_from_cache == 0


class TestInvalidation:
    def test_stale_fingerprint_discards_all_entries(self, make_module,
                                                    tmp_path):
        make_module("pkg.mod", "x = 1\n")
        cache_path = tmp_path / "cache.json"
        run(tmp_path, cache_path)
        payload = json.loads(cache_path.read_text())
        assert payload["fingerprint"] == checks_fingerprint()
        payload["fingerprint"] = "0" * 16
        cache_path.write_text(json.dumps(payload))
        warm = run(tmp_path, cache_path)
        assert warm.files_from_cache == 0

    def test_corrupt_cache_file_is_ignored(self, make_module, tmp_path):
        make_module("pkg.mod", "x = 1\n")
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        result = run(tmp_path, cache_path)
        assert result.errors == []
        assert result.files_checked == 2  # __init__ + mod

    def test_unwritable_save_is_nonfatal(self, make_module, tmp_path):
        make_module("pkg.mod", "x = 1\n")
        missing_dir = tmp_path / "no" / "such" / "dir" / "cache.json"
        result = run(tmp_path, missing_dir)
        assert result.errors == []

    def test_default_path_is_gitignored_name(self):
        assert DEFAULT_CACHE_PATH == ".repro_lint_cache.json"
