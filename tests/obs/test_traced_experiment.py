"""Traced experiment runs: merged traces, manifests, meta linkage.

The acceptance pin for the observability layer: a ``jobs=2`` fidelity
experiment produces ONE merged trace containing spans from both worker
processes, plus a RunManifest whose per-method stage aggregates agree
with the merged PERF counters (spans and counters fire at the same
instrumentation sites, so the two channels must tell the same story).
"""

import multiprocessing as mp
import os

import pytest

from repro.eval import ExperimentConfig
from repro.eval.experiments import run_fidelity_experiment
from repro.execution import ExecutionConfig
from repro.obs import load_manifest, load_trace, summarize_trace, tracing

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="requires fork start method")

CFG = ExperimentConfig(scale=0.12, num_instances=4, effort=0.05,
                       sparsities=(0.5, 0.8), seed=0)
METHODS = ("gradcam", "revelio")


@pytest.fixture(autouse=True)
def fresh_caches():
    """Start from cold flow/context caches so enumerations actually happen
    (forked workers inherit the parent's caches)."""
    from repro.explain.base import clear_context_cache
    from repro.flows import FLOW_CACHE

    FLOW_CACHE.clear()
    clear_context_cache()


def _span_count(manifest, stage):
    return sum(stages.get(stage, {}).get("count", 0)
               for stages in manifest.spans.values())


def _check_trace_and_manifest(result, trace_path):
    records = load_trace(trace_path)
    assert records, "trace is empty"
    assert {r["trace_id"] for r in records} == {result["trace_id"]}
    roots = [r for r in records if r["parent_id"] is None]
    assert [r["name"] for r in roots] == ["experiment"]
    methods_seen = {(r.get("attrs") or {}).get("method") for r in records}
    assert {"gradcam", "revelio"} <= methods_seen

    manifest = load_manifest(result["manifest_path"])
    assert manifest.trace_id == result["trace_id"]
    assert manifest.dataset_fingerprint
    # Spans fire at the same sites as the PERF counters, so the manifest's
    # two channels must agree — including counters/spans merged back from
    # worker processes.
    assert _span_count(manifest, "flow_enumerate") == \
        manifest.perf["flow_enumerations"]
    assert _span_count(manifest, "masked_forward_batch") == \
        manifest.perf["batched_forwards"]
    assert manifest.perf["flow_enumerations"] > 0   # revelio enumerated flows
    assert manifest.perf["batched_forwards"] > 0    # batched fidelity sweeps ran
    assert manifest.stage_seconds("revelio", "explain") > 0.0
    return records, manifest


class TestSerialTracedRun:
    def test_trace_manifest_and_summary(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        out = run_fidelity_experiment(
            "tree_cycles", "gcn", METHODS, config=CFG,
            execution=ExecutionConfig(trace=str(trace_path)))
        assert out["trace_path"] == str(trace_path)
        records, manifest = _check_trace_and_manifest(out, trace_path)
        assert {r["pid"] for r in records} == {os.getpid()}
        assert manifest.run["jobs"] is None
        assert manifest.run["dataset"] == "tree_cycles"
        assert manifest.run["methods"] == list(METHODS)
        # Revelio's optimizer loop is visible at epoch granularity.
        names = {r["name"] for r in records}
        assert {"explain", "method", "optimize", "epoch",
                "fidelity_sweep"} <= names
        rows = summarize_trace(trace_path)
        text = "\n".join(rows)
        assert "revelio" in text and "gradcam" in text

    def test_untraced_run_identical_results(self, tmp_path):
        traced = run_fidelity_experiment(
            "tree_cycles", "gcn", METHODS, config=CFG,
            execution=ExecutionConfig(trace=str(tmp_path / "t.jsonl")))
        plain = run_fidelity_experiment("tree_cycles", "gcn", METHODS,
                                        config=CFG)
        assert traced["rows"] == plain["rows"]
        assert traced["curves"] == plain["curves"]
        assert "trace_path" not in plain


@needs_fork
class TestMergedWorkerTrace:
    def test_jobs2_single_merged_trace(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        out = run_fidelity_experiment(
            "tree_cycles", "gcn", METHODS, config=CFG,
            execution=ExecutionConfig(jobs=2, trace=str(trace_path)))
        assert out["jobs"]["failed"] == 0
        records, manifest = _check_trace_and_manifest(out, trace_path)

        # Spans from both workers landed in the one exported trace.
        worker_pids = {r["pid"] for r in records} - {os.getpid()}
        assert len(worker_pids) == 2
        job_spans = [r for r in records if r["name"] == "job"]
        assert len(job_spans) == 8  # 2 methods x 4 chunks
        # Shipped worker roots were re-parented under the experiment span.
        root_id = next(r["span_id"] for r in records
                       if r["name"] == "experiment")
        assert all(j["parent_id"] == root_id for j in job_spans)

        assert manifest.run["jobs"] == 2
        rows = summarize_trace(trace_path)
        assert rows[-1] == "(spans from 3 processes)"
        text = "\n".join(rows)
        assert "revelio" in text and "gradcam" in text

    def test_traced_rows_match_untraced(self, tmp_path):
        traced = run_fidelity_experiment(
            "tree_cycles", "gcn", METHODS, config=CFG,
            execution=ExecutionConfig(jobs=2, trace=str(tmp_path / "t.jsonl")))
        plain = run_fidelity_experiment(
            "tree_cycles", "gcn", METHODS, config=CFG,
            execution=ExecutionConfig(jobs=2))
        assert traced["rows"] == plain["rows"]


class TestExplanationTraceLinkage:
    def test_meta_records_trace_id_and_seconds(self, node_model, mini_ba_shapes,
                                               good_motif_node):
        from repro.explain import make_explainer

        explainer = make_explainer("gradcam", node_model)
        with tracing() as tracer:
            e = explainer.explain(mini_ba_shapes.graph, target=good_motif_node)
            trace_id = tracer.trace_id
        assert e.meta["trace_id"] == trace_id
        assert e.meta["perf"]["explain_seconds"] > 0.0

    def test_meta_untouched_when_disabled(self, node_model, mini_ba_shapes,
                                          good_motif_node):
        from repro.explain import make_explainer

        e = make_explainer("gradcam", node_model).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        assert "trace_id" not in e.meta
