"""The repro.instrumentation compatibility shim: re-exports + deprecation."""

from __future__ import annotations

import importlib
import sys
import warnings


def test_import_warns_deprecation_and_reexports():
    # The warning fires at import time, so force a fresh import even when
    # an earlier test (or the package itself) already loaded the shim.
    sys.modules.pop("repro.instrumentation", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = importlib.import_module("repro.instrumentation")
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert deprecations, "importing repro.instrumentation must warn"
    assert "repro.obs" in str(deprecations[0].message)

    # The legacy surface keeps pointing at the repro.obs implementations.
    from repro.obs.counters import PERF, PerfCounters, perf_snapshot, reset_perf

    assert module.PERF is PERF
    assert module.PerfCounters is PerfCounters
    assert module.perf_snapshot is perf_snapshot
    assert module.reset_perf is reset_perf
    assert set(module.__all__) == {"PERF", "PerfCounters", "perf_snapshot",
                                   "reset_perf"}
