import pytest

from repro.obs import TRACER


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every obs test starts and ends with a disabled, empty global tracer."""
    TRACER.disable()
    TRACER.reset()
    yield
    TRACER.disable()
    TRACER.reset()
