"""Span/Tracer unit behavior: nesting, buffering, merging, export."""

import json
import threading

import pytest

from repro.obs import (
    TRACER,
    JsonlSink,
    MemorySink,
    Tracer,
    current_span,
    span,
    tracing,
)


class TestSpanNesting:
    def test_disabled_span_is_noop(self):
        with span("explain") as sp:
            assert sp is None
        assert TRACER.records() == []

    def test_disabled_span_reuses_shared_context_manager(self):
        assert span("a") is span("b")

    def test_parent_child_linkage(self):
        with tracing():
            with span("explain") as parent:
                with span("flow_enumerate") as child:
                    assert child.parent_id == parent.span_id
                    assert current_span() is child
                assert current_span() is parent
        records = TRACER.records()
        assert [r["name"] for r in records] == ["flow_enumerate", "explain"]
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert records[0]["trace_id"] == records[1]["trace_id"]

    def test_method_attribute_inherited_from_parent(self):
        with tracing():
            with span("explain", method="revelio"):
                with span("epoch"):
                    pass
                with span("epoch", method="override"):
                    pass
        epochs = [r for r in TRACER.records() if r["name"] == "epoch"]
        assert epochs[0]["attrs"]["method"] == "revelio"
        assert epochs[1]["attrs"]["method"] == "override"

    def test_span_closes_and_records_on_exception(self):
        with tracing():
            with pytest.raises(ValueError):
                with span("explain"):
                    raise ValueError("boom")
            assert current_span() is None
        records = TRACER.records()
        assert len(records) == 1
        assert records[0]["seconds"] >= 0.0

    def test_set_attaches_attrs_before_close(self):
        with tracing():
            with span("flow_enumerate") as sp:
                sp.set(num_flows=17)
        assert TRACER.records()[0]["attrs"]["num_flows"] == 17

    def test_threads_get_independent_current_span(self):
        seen = {}

        def worker():
            seen["in_thread"] = current_span()

        with tracing():
            with span("outer"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        # A fresh thread starts a fresh context: no inherited current span.
        assert seen["in_thread"] is None


class TestBufferAndAggregates:
    def test_buffer_bounded_and_drop_counted(self):
        tracer = Tracer(max_buffer=3)
        tracer.enable()
        for i in range(5):
            with tracer.start_span("s", {"i": i}):
                pass
        assert len(tracer.records()) == 3
        assert tracer.dropped == 2
        # Oldest evicted: the survivors are the last three.
        assert [r["attrs"]["i"] for r in tracer.records()] == [2, 3, 4]

    def test_aggregates_survive_eviction(self):
        tracer = Tracer(max_buffer=2)
        tracer.enable()
        for _ in range(10):
            with tracer.start_span("epoch", {"method": "revelio"}):
                pass
        table = tracer.aggregate_table()
        assert table["revelio"]["epoch"]["count"] == 10

    def test_reset_clears_everything(self):
        tracer = Tracer(max_buffer=2)
        tracer.enable()
        for _ in range(5):
            with tracer.start_span("s", {}):
                pass
        tracer.reset()
        assert tracer.records() == []
        assert tracer.dropped == 0
        assert tracer.aggregate_table() == {}


class TestDrainAbsorb:
    def test_drain_empties_buffer_and_resets_dropped(self):
        tracer = Tracer(max_buffer=2)
        tracer.enable()
        for _ in range(3):
            with tracer.start_span("s", {}):
                pass
        shipment = tracer.drain()
        assert len(shipment["records"]) == 2
        assert shipment["dropped"] == 1
        assert tracer.records() == []
        assert tracer.dropped == 0

    def test_absorb_restamps_trace_id_and_reparents_roots(self):
        worker = Tracer()
        worker.enable(trace_id="worker-id")
        with worker.start_span("job", {"method": "gradcam"}):
            with worker.start_span("explain", {}):
                pass
        shipment = worker.drain()

        with tracing(trace_id="parent-id"):
            with span("experiment") as root:
                TRACER.absorb(shipment)
        records = TRACER.records()
        assert all(r["trace_id"] == "parent-id" for r in records)
        job = next(r for r in records if r["name"] == "job")
        explain = next(r for r in records if r["name"] == "explain")
        assert job["parent_id"] == root.span_id       # orphan root re-parented
        assert explain["parent_id"] == job["span_id"]  # interior edge kept
        # Absorbed spans land in the parent's aggregates too.
        assert TRACER.aggregate_table()["gradcam"]["job"]["count"] == 1

    def test_absorb_accumulates_dropped(self):
        with tracing():
            TRACER.absorb({"records": [], "dropped": 7})
            TRACER.absorb({"records": [], "dropped": 2})
            assert TRACER.dropped == 9

    def test_absorb_none_is_noop(self):
        with tracing():
            TRACER.absorb(None)
            TRACER.absorb({})
        assert TRACER.records() == []


class TestSinksAndExport:
    def test_memory_sink_receives_every_record(self):
        sink = MemorySink()
        with tracing(sink=sink):
            with span("a"):
                pass
            with span("b"):
                pass
        assert [r["name"] for r in sink.records] == ["a", "b"]

    def test_jsonl_sink_streams(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        sink = JsonlSink(path)
        with tracing(sink=sink):
            with span("a", x=1):
                pass
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["name"] == "a"
        assert lines[0]["attrs"] == {"x": 1}

    def test_export_jsonl_round_trips(self, tmp_path):
        with tracing():
            with span("explain", method="flowx"):
                with span("flow_enumerate"):
                    pass
        out = TRACER.export_jsonl(tmp_path / "trace.jsonl")
        from repro.obs import load_trace

        records = load_trace(out)
        assert [r["name"] for r in records] == ["flow_enumerate", "explain"]

    def test_tracing_restores_prior_state(self):
        sink = MemorySink()
        assert not TRACER.enabled
        with tracing(sink=sink, trace_id="tmp"):
            assert TRACER.enabled
            assert TRACER.trace_id == "tmp"
        assert not TRACER.enabled
        assert not isinstance(TRACER.sink, MemorySink)
