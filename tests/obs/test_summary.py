"""Trace summarization: loading, aggregation and table rendering."""

import json

import pytest

from repro.errors import EvaluationError
from repro.obs import format_summary, load_trace, summarize_spans, summarize_trace


def _record(name, seconds, method=None, pid=1):
    attrs = {"method": method} if method else {}
    return {"name": name, "trace_id": "t", "span_id": name, "parent_id": None,
            "pid": pid, "start": 0.0, "seconds": seconds, "attrs": attrs}


class TestLoadTrace:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(EvaluationError, match="no such trace"):
            load_trace(tmp_path / "nope.jsonl")

    def test_bad_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(_record("explain", 1.0)) + "\n"
            + "{not json\n"
            + "\n"
            + json.dumps({"no_name_key": 1}) + "\n"
            + json.dumps(_record("epoch", 0.1)) + "\n")
        records = load_trace(path)
        assert [r["name"] for r in records] == ["explain", "epoch"]


class TestSummarizeSpans:
    def test_aggregates_by_method_and_stage(self):
        records = [_record("explain", 1.0, "revelio"),
                   _record("epoch", 0.25, "revelio"),
                   _record("epoch", 0.75, "revelio"),
                   _record("explain", 0.5, "gradcam"),
                   _record("experiment", 2.0)]
        table = summarize_spans(records)
        assert table["revelio"]["epoch"] == {
            "count": 2, "seconds": 1.0, "mean_seconds": 0.5}
        assert table["gradcam"]["explain"]["count"] == 1
        assert table["-"]["experiment"]["seconds"] == 2.0


class TestFormatSummary:
    def test_ordering_and_share(self):
        table = summarize_spans([
            _record("explain", 2.0, "revelio"),
            _record("flow_enumerate", 0.5, "revelio"),
            _record("explain", 0.1, "gradcam"),
        ])
        rows = format_summary(table)
        # Header first; methods by descending explain time.
        assert rows[0].startswith("method")
        body = rows[1:]
        assert body[0].split()[0] == "revelio"
        assert body[-1].split()[0] == "gradcam"
        # Within revelio, explain (2.0s) before flow_enumerate (0.5s),
        # and flow_enumerate's share is seconds/explain_seconds = 25%.
        assert body[0].split()[1] == "explain"
        assert body[1].split()[1] == "flow_enumerate"
        assert "25.0%" in body[1]

    def test_process_footer(self):
        rows = format_summary({}, processes=3)
        assert rows[-1] == "(spans from 3 processes)"
        rows = format_summary({}, processes=1)
        assert rows[-1] == "(spans from 1 process)"


class TestSummarizeTrace:
    def test_end_to_end(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [_record("explain", 1.0, "revelio", pid=10),
                   _record("explain", 0.5, "revelio", pid=11)]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        rows = summarize_trace(path)
        assert any("revelio" in r for r in rows)
        assert rows[-1] == "(spans from 2 processes)"

    def test_empty_trace_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n")
        with pytest.raises(EvaluationError, match="no span records"):
            summarize_trace(path)
