"""Keyword-only API redesign: legacy shims warn, unknown kwargs explain."""

import pytest

from repro.errors import ReproError
from repro.eval import ExperimentConfig, run_fidelity_experiment
from repro.execution import (
    ExecutionConfig,
    accept_legacy_positionals,
    coerce_execution,
    reject_unknown_kwargs,
    resolve_trace_path,
)
from repro.explain import make_explainer
from repro.explain.batch import explain_instances

CFG = ExperimentConfig(scale=0.12, num_instances=2, effort=0.03, seed=0)


@pytest.fixture
def fake_planned(monkeypatch):
    """Intercept the sharded runner so compat tests never train models."""
    seen = {}

    def fake(artifact, dataset, conv, methods, *, mode="factual", config=None,
             execution=None, **kwargs):
        seen.update(artifact=artifact, mode=mode, config=config,
                    execution=execution)
        return {"rows": [], "curves": {}}

    monkeypatch.setattr("repro.runner.run_planned_experiment", fake)
    return seen


class TestLegacyKwargs:
    def test_flat_jobs_kwarg_warns_and_routes(self, fake_planned, tmp_path):
        journal = str(tmp_path / "fid.jsonl")
        with pytest.warns(DeprecationWarning, match="execution=ExecutionConfig"):
            run_fidelity_experiment(  # repro: noqa[RPR021] — pins the shim
                "tree_cycles", "gcn", ("gradcam",),
                config=CFG, jobs=2, resume=journal)
        execution = fake_planned["execution"]
        assert execution.jobs == 2
        assert execution.resume == journal

    def test_flat_kwargs_overlay_explicit_execution(self, fake_planned):
        base = ExecutionConfig(jobs=1, retries=3)
        with pytest.warns(DeprecationWarning):
            run_fidelity_experiment(  # repro: noqa[RPR021] — pins the shim
                "tree_cycles", "gcn", ("gradcam",),
                config=CFG, execution=base, jobs=4)
        execution = fake_planned["execution"]
        assert execution.jobs == 4      # legacy kwarg wins over the object
        assert execution.retries == 3   # untouched fields survive

    def test_legacy_positional_mode_and_config_warn(self, fake_planned):
        with pytest.warns(DeprecationWarning, match="positionally"):
            run_fidelity_experiment("tree_cycles", "gcn", ("gradcam",),
                                    "counterfactual", CFG,
                                    execution=ExecutionConfig(jobs=1))
        assert fake_planned["mode"] == "counterfactual"
        assert fake_planned["config"] is CFG

    def test_too_many_positionals_is_type_error(self):
        with pytest.raises(TypeError, match="at most 2"):
            run_fidelity_experiment("tree_cycles", "gcn", ("gradcam",),
                                    "factual", CFG, "extra")


class TestUnknownKwargs:
    def test_driver_suggests_nearest_option(self):
        with pytest.raises(ReproError, match="did you mean 'jobs'"):
            run_fidelity_experiment("tree_cycles", "gcn", ("gradcam",),
                                    config=CFG, job=2)

    def test_driver_lists_options_when_no_match(self):
        with pytest.raises(ReproError, match="valid options"):
            run_fidelity_experiment("tree_cycles", "gcn", ("gradcam",),
                                    config=CFG, zzz=1)

    def test_make_explainer_suggests_constructor_kwarg(self):
        with pytest.raises(ReproError, match="did you mean 'epochs'"):
            make_explainer("gnnexplainer", None, epoch=5)

    def test_explain_instances_suggests_mode(self):
        with pytest.raises(ReproError, match="did you mean 'mode'"):
            explain_instances(None, [], mod="factual")


class TestHelpers:
    def test_reject_unknown_noop_on_empty(self):
        reject_unknown_kwargs("f", {}, ("a", "b"))  # must not raise

    def test_coerce_execution_no_legacy_no_warning(self, recwarn):
        config = coerce_execution("f", ExecutionConfig(jobs=2), {})
        assert config.jobs == 2
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_accept_legacy_positionals_empty_is_silent(self, recwarn):
        assert accept_legacy_positionals("f", (), ("mode",)) == {}
        assert not recwarn.list

    def test_resolve_trace_path(self, tmp_path):
        assert resolve_trace_path(None, None, "t.jsonl") is None
        assert resolve_trace_path(False, None, "t.jsonl") is None
        assert str(resolve_trace_path("runs/x.jsonl", None, "t.jsonl")) == \
            "runs/x.jsonl"
        journal = str(tmp_path / "runs" / "fid.jsonl")
        resolved = resolve_trace_path(True, journal, "t.jsonl")
        assert resolved == tmp_path / "runs" / "t.jsonl"
        assert resolve_trace_path(True, None, "t.jsonl").name == "t.jsonl"

    def test_execution_config_sharded_property(self):
        assert not ExecutionConfig().sharded
        assert ExecutionConfig(jobs=2).sharded
        assert ExecutionConfig(resume="runs/j.jsonl").sharded
        assert ExecutionConfig().workers == 1
        assert ExecutionConfig(jobs=3).workers == 3
