"""Unified cache introspection: one snapshot of every process-global cache."""

import numpy as np

from repro.flows import FlowIndex
from repro.graph import Graph
from repro.obs import cache_summary, format_cache_summary


EXPECTED_CACHES = {"flow_cache", "explanation_cache", "context_cache",
                   "sparse_graph", "sparse_edge", "sparse_plan",
                   "sparse_feature"}


def test_summary_covers_every_cache():
    summary = cache_summary()
    assert EXPECTED_CACHES <= set(summary)
    for name, info in summary.items():
        assert {"hits", "misses"} <= set(info), name


def test_flow_cache_counters_move():
    from repro.flows.cache import FLOW_CACHE

    edge_index = np.array([[0, 1, 1, 2], [1, 0, 2, 1]])
    graph = Graph(edge_index=edge_index, x=np.eye(3))
    before = cache_summary()["flow_cache"]
    first = FLOW_CACHE.get_flow_index(graph, 2, target=0)
    second = FLOW_CACHE.get_flow_index(graph, 2, target=0)
    after = cache_summary()["flow_cache"]
    assert isinstance(first, FlowIndex) and second is first
    assert after["misses"] == before["misses"] + 1
    assert after["hits"] == before["hits"] + 1
    assert after["entries"] >= 1


def test_sparse_memo_counters_move():
    from repro.sparse.cache import sparse_cache

    edge_index = np.array([[0, 1, 2], [1, 2, 0]])
    graph = Graph(edge_index=edge_index, x=np.eye(3))
    before = cache_summary()["sparse_graph"]
    sparse_cache(graph)
    sparse_cache(graph)
    after = cache_summary()["sparse_graph"]
    assert after["misses"] == before["misses"] + 1
    assert after["hits"] >= before["hits"] + 1


def test_format_cache_summary_renders_rows():
    rows = format_cache_summary()
    assert len(rows) == 1 + len(cache_summary())
    assert "cache" in rows[0] and "hit_rate" in rows[0]
    assert any("flow_cache" in row for row in rows)


def test_format_accepts_prebuilt_summary():
    rows = format_cache_summary({"demo": {"hits": 3, "misses": 1,
                                          "entries": 2, "maxsize": 8}})
    assert len(rows) == 2
    assert "75.0%" in rows[1]
