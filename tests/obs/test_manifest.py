"""RunManifest build/write/load and dataset fingerprinting."""

import json

from repro.datasets import load_dataset
from repro.obs import (
    build_manifest,
    dataset_fingerprint,
    git_revision,
    load_manifest,
)

RUN = {"artifact": "fidelity", "dataset": "tree_cycles", "conv": "gcn",
       "methods": ["gradcam", "revelio"], "mode": "factual", "seed": 0}
PERF = {"flow_enumerations": 4, "batched_forwards": 12,
        "stage_seconds": {"masked_forward_batch": 0.25}}
SPANS = {"revelio": {"explain": {"count": 4, "seconds": 2.0},
                     "flow_enumerate": {"count": 4, "seconds": 0.5}},
         "-": {"experiment": {"count": 1, "seconds": 3.0}}}


class TestBuild:
    def test_build_fills_environment_fields(self):
        m = build_manifest("tid", RUN, PERF, SPANS, dropped_spans=3,
                           fingerprint="abc123")
        assert m.trace_id == "tid"
        assert m.run["artifact"] == "fidelity"
        assert m.perf["flow_enumerations"] == 4
        assert m.dropped_spans == 3
        assert m.dataset_fingerprint == "abc123"
        assert m.created_unix > 0
        assert m.schema_version == 1
        assert set(m.versions) == {"repro", "python", "numpy"}

    def test_git_sha_resolves_inside_repo(self):
        sha = git_revision()
        assert sha is not None and len(sha) == 40

    def test_stage_seconds_lookup(self):
        m = build_manifest("tid", RUN, PERF, SPANS)
        assert m.stage_seconds("revelio", "flow_enumerate") == 0.5
        assert m.stage_seconds("revelio", "missing") == 0.0
        assert m.stage_seconds("nope", "explain") == 0.0


class TestRoundTrip:
    def test_write_load_round_trip(self, tmp_path):
        m = build_manifest("tid", RUN, PERF, SPANS, fingerprint="abc")
        path = m.write(tmp_path / "runs" / "m.manifest.json")
        assert path.exists()
        back = load_manifest(path)
        assert back.trace_id == m.trace_id
        assert back.run == m.run
        assert back.perf == m.perf
        assert back.spans == m.spans
        assert back.dataset_fingerprint == "abc"
        assert back.git_sha == m.git_sha

    def test_load_ignores_unknown_fields(self, tmp_path):
        m = build_manifest("tid", RUN, PERF, SPANS)
        path = m.write(tmp_path / "m.json")
        data = json.loads(path.read_text())
        data["future_field"] = {"x": 1}
        path.write_text(json.dumps(data))
        back = load_manifest(path)
        assert back.trace_id == "tid"

    def test_write_degrades_numpy_values(self, tmp_path):
        import numpy as np

        m = build_manifest("tid", {"seed": np.int64(7)},
                           {"rows": np.float64(1.5)}, {})
        path = m.write(tmp_path / "m.json")
        data = json.loads(path.read_text())
        assert data["run"]["seed"] == 7
        assert data["perf"]["rows"] == 1.5


class TestDatasetFingerprint:
    def test_node_dataset_stable(self):
        a = dataset_fingerprint(load_dataset("tree_cycles", scale=0.12, seed=0))
        b = dataset_fingerprint(load_dataset("tree_cycles", scale=0.12, seed=0))
        assert a == b

    def test_node_dataset_sensitive_to_seed(self):
        a = dataset_fingerprint(load_dataset("tree_cycles", scale=0.12, seed=0))
        b = dataset_fingerprint(load_dataset("tree_cycles", scale=0.12, seed=1))
        assert a != b

    def test_graph_dataset_fingerprints(self):
        a = dataset_fingerprint(load_dataset("ba_2motifs", scale=0.1, seed=0))
        b = dataset_fingerprint(load_dataset("ba_2motifs", scale=0.1, seed=0))
        assert a == b
        c = dataset_fingerprint(load_dataset("ba_2motifs", scale=0.1, seed=1))
        assert a != c
