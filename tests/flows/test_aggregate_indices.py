"""Precomputed scatter indices in FlowIndex.aggregate_scores.

The index arrays are built lazily once and reused on every mask-learning
epoch; these tests pin down that the cached-index path is bit-identical to
rebuilding, agrees with the numpy aggregation, and keeps gradients exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.grad_check import check_gradients
from repro.flows import enumerate_flows
from repro.graph import Graph


@pytest.fixture
def flow_index():
    edge_index = np.array([[0, 0, 1, 2, 1], [1, 2, 3, 3, 2]])
    graph = Graph(edge_index=edge_index, x=np.eye(4))
    return enumerate_flows(graph, 2, target=3)


def test_reused_indices_match_fresh_build(flow_index):
    rng = np.random.default_rng(0)
    scores = rng.normal(size=flow_index.num_flows)
    cached = flow_index.aggregate_scores(Tensor(scores), reuse_indices=True).numpy()
    rebuilt = flow_index.aggregate_scores(Tensor(scores), reuse_indices=False).numpy()
    np.testing.assert_array_equal(cached, rebuilt)
    # Second cached call reuses the same arrays and stays identical.
    again = flow_index.aggregate_scores(Tensor(scores)).numpy()
    np.testing.assert_array_equal(cached, again)


def test_numpy_aggregation_matches_tensor_path(flow_index):
    rng = np.random.default_rng(1)
    scores = rng.normal(size=flow_index.num_flows)
    np.testing.assert_allclose(
        flow_index.aggregate_scores_np(scores),
        flow_index.aggregate_scores(Tensor(scores)).numpy(),
        atol=1e-12,
    )


def test_gradients_exact_with_precomputed_indices(flow_index):
    rng = np.random.default_rng(2)
    masks = Tensor(rng.normal(size=flow_index.num_flows), requires_grad=True)
    weights = Tensor(rng.normal(size=(flow_index.num_layers, flow_index.num_layer_edges)))

    # Warm the index cache first so the grad check exercises the reuse path.
    flow_index.aggregate_scores(masks)

    def objective():
        omega = flow_index.aggregate_scores(masks.tanh()).sigmoid()
        return (omega * weights).sum()

    check_gradients(objective, [masks])
