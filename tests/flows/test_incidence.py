"""Sparse incidence matrices (Eq. 7's matrix I)."""

import numpy as np
import pytest

from repro.errors import FlowError
from repro.flows import FlowIncidence, enumerate_flows
from repro.graph import Graph


@pytest.fixture
def setup():
    g = Graph(edge_index=np.array([[0, 1, 1, 2], [1, 0, 2, 1]]), x=np.ones((3, 2)))
    fi = enumerate_flows(g, 2, target=1)
    return g, fi, FlowIncidence(fi)


class TestIncidence:
    def test_layer_shapes(self, setup):
        _, fi, inc = setup
        for l in (1, 2):
            assert inc.layer(l).shape == (fi.num_layer_edges, fi.num_flows)

    def test_binary_entries(self, setup):
        _, fi, inc = setup
        assert set(np.unique(inc.layer(1).toarray())) <= {0.0, 1.0}

    def test_each_flow_one_edge_per_layer(self, setup):
        _, fi, inc = setup
        for l in (1, 2):
            col_sums = np.asarray(inc.layer(l).sum(axis=0)).ravel()
            assert np.allclose(col_sums, 1.0)

    def test_aggregate_matches_flow_index(self, setup):
        _, fi, inc = setup
        scores = np.random.default_rng(0).normal(size=fi.num_flows)
        assert np.allclose(inc.aggregate(scores), fi.aggregate_scores_np(scores))

    def test_aggregate_wrong_shape(self, setup):
        _, fi, inc = setup
        with pytest.raises(FlowError):
            inc.aggregate(np.zeros(fi.num_flows + 2))

    def test_bad_layer(self, setup):
        _, _, inc = setup
        with pytest.raises(FlowError):
            inc.layer(3)

    def test_flows_removed_by_edges(self, setup):
        _, fi, inc = setup
        # removing every layer edge removes every flow
        all_edges = np.arange(fi.num_layer_edges)
        assert inc.flows_removed_by_edges(all_edges).all()

    def test_flows_removed_by_single_edge(self, setup):
        _, fi, inc = setup
        hit = inc.flows_removed_by_edges(np.array([0]))
        expected = np.zeros(fi.num_flows, dtype=bool)
        for l in range(fi.num_layers):
            expected |= fi.layer_edges[:, l] == 0
        assert np.array_equal(hit, expected)

    def test_flows_removed_by_nothing(self, setup):
        _, fi, inc = setup
        assert not inc.flows_removed_by_edges(np.array([], dtype=int)).any()
