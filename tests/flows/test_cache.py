"""Cross-explainer flow cache: bit-identity, invalidation, LRU policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FlowError
from repro.flows import (
    FLOW_CACHE,
    FlowCache,
    cached_enumerate_flows,
    enumerate_flows,
    flow_cache_disabled,
    graph_fingerprint,
    invalidate,
)
from repro.graph import Graph
from repro.obs.counters import PERF


@pytest.fixture(autouse=True)
def _clean_cache():
    FLOW_CACHE.clear()
    yield
    FLOW_CACHE.clear()


@pytest.fixture
def diamond_graph():
    edge_index = np.array([[0, 0, 1, 2, 1, 3], [1, 2, 3, 3, 2, 0]])
    return Graph(edge_index=edge_index, x=np.eye(4))


def test_cached_index_is_bit_identical(diamond_graph):
    fresh = enumerate_flows(diamond_graph, 2, target=3)
    first = cached_enumerate_flows(diamond_graph, 2, target=3)
    second = cached_enumerate_flows(diamond_graph, 2, target=3)
    assert second is first  # one shared object, no re-enumeration
    np.testing.assert_array_equal(first.nodes, fresh.nodes)
    np.testing.assert_array_equal(first.layer_edges, fresh.layer_edges)
    assert first.num_edges == fresh.num_edges
    assert first.target == fresh.target


def test_cache_hit_counter_and_enumeration_counter(diamond_graph):
    before = PERF.snapshot()
    cached_enumerate_flows(diamond_graph, 2)
    cached_enumerate_flows(diamond_graph, 2)
    cached_enumerate_flows(diamond_graph, 2)
    after = PERF.snapshot()
    assert after["flow_enumerations"] - before["flow_enumerations"] == 1
    assert after["flow_cache_hits"] - before["flow_cache_hits"] == 2


def test_graph_change_invalidates_implicitly(diamond_graph):
    first = cached_enumerate_flows(diamond_graph, 2, target=3)
    keep = np.ones(diamond_graph.num_edges, dtype=bool)
    keep[0] = False
    pruned = diamond_graph.with_edges(keep)
    assert graph_fingerprint(pruned) != graph_fingerprint(diamond_graph)
    second = cached_enumerate_flows(pruned, 2, target=3)
    assert second is not first
    assert second.num_flows < first.num_flows
    fresh = enumerate_flows(pruned, 2, target=3)
    np.testing.assert_array_equal(second.layer_edges, fresh.layer_edges)


def test_distinct_targets_and_depths_get_distinct_entries(diamond_graph):
    a = cached_enumerate_flows(diamond_graph, 2, target=3)
    b = cached_enumerate_flows(diamond_graph, 2, target=0)
    c = cached_enumerate_flows(diamond_graph, 1, target=3)
    assert a is not b and a is not c
    assert cached_enumerate_flows(diamond_graph, 2, target=3) is a


def test_explicit_invalidation(diamond_graph):
    cached_enumerate_flows(diamond_graph, 1)
    cached_enumerate_flows(diamond_graph, 2)
    assert invalidate(diamond_graph) == 2
    assert FLOW_CACHE.cache_info()["entries"] == 0
    cached_enumerate_flows(diamond_graph, 1)
    assert invalidate() == 1  # None clears everything


def test_cached_entry_respects_caller_max_flows(diamond_graph):
    cached_enumerate_flows(diamond_graph, 2)
    n = cached_enumerate_flows(diamond_graph, 2).num_flows
    with pytest.raises(FlowError):
        cached_enumerate_flows(diamond_graph, 2, max_flows=n - 1)


def test_disabled_cache_bypasses(diamond_graph):
    with flow_cache_disabled():
        a = cached_enumerate_flows(diamond_graph, 2)
        b = cached_enumerate_flows(diamond_graph, 2)
    assert a is not b
    assert FLOW_CACHE.cache_info()["entries"] == 0


def test_lru_eviction():
    cache = FlowCache(maxsize=2)
    graphs = [
        Graph(edge_index=np.array([[0, 1], [1, 0]]), x=np.eye(3)),
        Graph(edge_index=np.array([[0, 2], [2, 0]]), x=np.eye(3)),
        Graph(edge_index=np.array([[1, 2], [2, 1]]), x=np.eye(3)),
    ]
    cache.get_flow_index(graphs[0], 1)
    cache.get_flow_index(graphs[1], 1)
    cache.get_flow_index(graphs[2], 1)  # evicts graphs[0]
    info = cache.cache_info()
    assert info["entries"] == 2
    before = PERF.flow_enumerations
    cache.get_flow_index(graphs[0], 1)  # re-enumerates
    assert PERF.flow_enumerations == before + 1
