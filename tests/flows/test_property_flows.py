"""Property-based flow-enumeration invariants on random graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.flows import FlowIncidence, count_flows, enumerate_flows
from repro.graph import Graph, coalesce_edges
from repro.nn.message_passing import augment_edges


@st.composite
def small_graphs(draw):
    n = draw(st.integers(2, 7))
    m = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    if not keep.any():
        edge_index = np.zeros((2, 0), dtype=np.int64)
    else:
        edge_index = coalesce_edges(np.stack([src[keep], dst[keep]]))
    return Graph(edge_index=edge_index, x=np.ones((n, 2)))


@settings(max_examples=40, deadline=None)
@given(g=small_graphs(), layers=st.integers(1, 3), seed=st.integers(0, 100))
def test_enumeration_count_matches_matrix_power(g, layers, seed):
    rng = np.random.default_rng(seed)
    target = int(rng.integers(g.num_nodes))
    fi = enumerate_flows(g, layers, target=target)
    assert fi.num_flows == count_flows(g, layers, target=target)


@settings(max_examples=30, deadline=None)
@given(g=small_graphs(), layers=st.integers(1, 3))
def test_every_flow_is_a_valid_walk(g, layers):
    fi = enumerate_flows(g, layers)
    src_aug, dst_aug = augment_edges(g.edge_index, g.num_nodes)
    for f in range(min(fi.num_flows, 200)):
        for l in range(layers):
            e = fi.layer_edges[f, l]
            assert src_aug[e] == fi.nodes[f, l]
            assert dst_aug[e] == fi.nodes[f, l + 1]


@settings(max_examples=30, deadline=None)
@given(g=small_graphs(), layers=st.integers(1, 3), seed=st.integers(0, 100))
def test_aggregation_three_ways_agree(g, layers, seed):
    rng = np.random.default_rng(seed)
    target = int(rng.integers(g.num_nodes))
    fi = enumerate_flows(g, layers, target=target)
    scores = rng.normal(size=fi.num_flows)
    via_tensor = fi.aggregate_scores(Tensor(scores)).numpy()
    via_numpy = fi.aggregate_scores_np(scores)
    via_sparse = FlowIncidence(fi).aggregate(scores)
    assert np.allclose(via_tensor, via_numpy)
    assert np.allclose(via_numpy, via_sparse)


@settings(max_examples=30, deadline=None)
@given(g=small_graphs(), layers=st.integers(1, 3))
def test_flow_count_monotone_in_depth(g, layers):
    # Self-loops guarantee at least as many L+1-flows as L-flows.
    shallow = count_flows(g, layers)
    deep = count_flows(g, layers + 1)
    assert deep >= shallow
