"""Flow enumeration: counts, structure, incidence aggregation."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import FlowError
from repro.flows import count_flows, enumerate_flows
from repro.graph import Graph


@pytest.fixture
def triangle():
    return Graph(edge_index=np.array([[0, 1, 1, 2], [1, 0, 2, 1]]), x=np.ones((3, 2)))


@pytest.fixture
def chain():
    return Graph(edge_index=np.array([[0, 1, 2], [1, 2, 3]]), x=np.ones((4, 2)))


class TestEnumeration:
    def test_count_matches_oracle_targeted(self, triangle):
        for target in range(3):
            fi = enumerate_flows(triangle, 2, target=target)
            assert fi.num_flows == count_flows(triangle, 2, target=target)

    def test_count_matches_oracle_all(self, triangle):
        fi = enumerate_flows(triangle, 2)
        assert fi.num_flows == count_flows(triangle, 2)

    def test_one_layer_flows_are_incoming_edges(self, chain):
        fi = enumerate_flows(chain, 1, target=2)
        # incoming: data edge 1->2 and the self-loop 2->2
        seqs = {tuple(s) for s in fi.nodes.tolist()}
        assert seqs == {(1, 2), (2, 2)}

    def test_all_flows_end_at_target(self, triangle):
        fi = enumerate_flows(triangle, 3, target=1)
        assert (fi.nodes[:, -1] == 1).all()

    def test_flow_steps_are_edges(self, triangle):
        fi = enumerate_flows(triangle, 3, target=0)
        src_aug = np.concatenate([triangle.src, np.arange(3)])
        dst_aug = np.concatenate([triangle.dst, np.arange(3)])
        for f in range(fi.num_flows):
            for l in range(3):
                e = fi.layer_edges[f, l]
                assert src_aug[e] == fi.nodes[f, l]
                assert dst_aug[e] == fi.nodes[f, l + 1]

    def test_self_loop_flow_exists(self, chain):
        fi = enumerate_flows(chain, 3, target=3)
        seqs = {tuple(s) for s in fi.nodes.tolist()}
        assert (3, 3, 3, 3) in seqs
        assert (0, 1, 2, 3) in seqs

    def test_flows_unique(self, triangle):
        fi = enumerate_flows(triangle, 3, target=2)
        seqs = [tuple(s) for s in fi.nodes.tolist()]
        assert len(seqs) == len(set(seqs))

    def test_max_flows_guard(self, triangle):
        with pytest.raises(FlowError):
            enumerate_flows(triangle, 3, target=1, max_flows=2)

    def test_bad_layers(self, triangle):
        with pytest.raises(FlowError):
            enumerate_flows(triangle, 0)

    def test_bad_target(self, triangle):
        with pytest.raises(FlowError):
            enumerate_flows(triangle, 2, target=99)

    def test_isolated_node_has_only_self_flows(self):
        g = Graph(edge_index=np.array([[0], [1]]), x=np.ones((3, 1)))
        fi = enumerate_flows(g, 2, target=2)
        assert fi.num_flows == 1
        assert tuple(fi.nodes[0]) == (2, 2, 2)

    def test_graph_task_flow_count_is_sum_over_targets(self, triangle):
        total = enumerate_flows(triangle, 2).num_flows
        per_target = sum(
            enumerate_flows(triangle, 2, target=t).num_flows for t in range(3)
        )
        assert total == per_target


class TestFlowIndexOps:
    def test_aggregate_matches_numpy(self, triangle):
        fi = enumerate_flows(triangle, 2, target=1)
        rng = np.random.default_rng(0)
        scores = rng.normal(size=fi.num_flows)
        auto = fi.aggregate_scores(Tensor(scores)).numpy()
        manual = fi.aggregate_scores_np(scores)
        assert np.allclose(auto, manual)

    def test_aggregate_grad_counts_layers(self, triangle):
        fi = enumerate_flows(triangle, 3, target=0)
        t = Tensor(np.zeros(fi.num_flows), requires_grad=True)
        fi.aggregate_scores(t).sum().backward()
        assert np.allclose(t.grad, 3.0)  # each flow touches 3 layer edges

    def test_aggregate_wrong_size(self, triangle):
        fi = enumerate_flows(triangle, 2, target=1)
        with pytest.raises(FlowError):
            fi.aggregate_scores(Tensor(np.zeros(fi.num_flows + 1)))

    def test_used_layer_edges_cover_flows(self, triangle):
        fi = enumerate_flows(triangle, 2, target=1)
        used = fi.used_layer_edges()
        for f in range(fi.num_flows):
            for l in range(2):
                assert used[l, fi.layer_edges[f, l]]

    def test_flows_per_layer_edge_sums_to_flows(self, triangle):
        fi = enumerate_flows(triangle, 2, target=1)
        counts = fi.flows_per_layer_edge()
        assert counts.sum() == fi.num_flows * 2

    def test_flows_through(self, chain):
        fi = enumerate_flows(chain, 2, target=2)
        # layer-2 edge 1->2 is data edge index 1
        members = fi.flows_through(2, 1)
        for f in members:
            assert fi.layer_edges[f, 1] == 1

    def test_flows_through_bad_layer(self, chain):
        fi = enumerate_flows(chain, 2, target=2)
        with pytest.raises(FlowError):
            fi.flows_through(0, 0)

    def test_is_self_loop(self, chain):
        fi = enumerate_flows(chain, 2, target=2)
        assert fi.is_self_loop(chain.num_edges)
        assert not fi.is_self_loop(0)

    def test_layer_edge_endpoints(self, chain):
        fi = enumerate_flows(chain, 2, target=2)
        assert fi.layer_edge_endpoints(0, chain.edge_index) == (0, 1)
        assert fi.layer_edge_endpoints(chain.num_edges + 3, chain.edge_index) == (3, 3)

    def test_describe_flow(self, chain):
        fi = enumerate_flows(chain, 2, target=2)
        text = fi.describe_flow(0)
        assert "->" in text

    def test_flat_incidence_index_range(self, triangle):
        fi = enumerate_flows(triangle, 2, target=1)
        flat = fi.flat_incidence_index()
        assert flat.shape == (fi.num_flows * 2,)
        assert flat.max() < 2 * fi.num_layer_edges

    def test_repr(self, triangle):
        fi = enumerate_flows(triangle, 2, target=1)
        assert "target=1" in repr(fi)
