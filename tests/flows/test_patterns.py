"""Wildcard flow-pattern queries (paper §III notation)."""

import numpy as np
import pytest

from repro.errors import FlowError
from repro.flows import enumerate_flows, match_flows, parse_pattern
from repro.graph import Graph


@pytest.fixture
def flows():
    g = Graph(edge_index=np.array([[0, 1, 1, 2], [1, 0, 2, 1]]), x=np.ones((3, 2)))
    return enumerate_flows(g, 3, target=1)


class TestParsing:
    def test_ints_and_wildcards(self):
        p = parse_pattern("3 * ? 7")
        assert p.tokens == (3, "*", "?", 7)

    def test_repetition(self):
        p = parse_pattern("?{2} 4 5 *")
        assert p.tokens == (("?", 2), 4, 5, "*")

    def test_bad_token(self):
        with pytest.raises(FlowError):
            parse_pattern("abc")

    def test_empty(self):
        with pytest.raises(FlowError):
            parse_pattern("   ")

    def test_negative_repetition(self):
        with pytest.raises(FlowError):
            parse_pattern("?{-1}")

    def test_str_roundtrip(self):
        p = parse_pattern("?{2} 4 *")
        assert str(p) == "?{2} 4 *"


class TestMatching:
    def test_star_endpoints(self, flows):
        # F_{0*1}: start at 0, end at 1
        hits = match_flows(flows, "0 * 1")
        assert len(hits) > 0
        for f in hits:
            assert flows.nodes[f, 0] == 0
            assert flows.nodes[f, -1] == 1

    def test_exact_sequence(self, flows):
        seq = flows.nodes[0]
        pattern = " ".join(str(int(v)) for v in seq)
        hits = match_flows(flows, pattern)
        assert len(hits) >= 1
        assert 0 in hits

    def test_question_single_node(self, flows):
        # flows whose second node is 2 and ending at 1
        hits = match_flows(flows, "? 2 ? 1")
        for f in hits:
            assert flows.nodes[f, 1] == 2

    def test_repetition_prefix(self, flows):
        # F_{?{2}21}: third step on edge 2->1 (paper's third-step notation)
        hits = match_flows(flows, "?{2} 2 1")
        for f in hits:
            assert flows.nodes[f, 2] == 2 and flows.nodes[f, 3] == 1

    def test_star_matches_empty(self, flows):
        # "* <full sequence>" must still match
        seq = flows.nodes[0]
        pattern = "* " + " ".join(str(int(v)) for v in seq)
        assert 0 in match_flows(flows, pattern)

    def test_too_many_fixed_tokens(self, flows):
        assert match_flows(flows, "1 1 1 1 1 1 1").size == 0

    def test_all_wildcard_matches_everything(self, flows):
        assert match_flows(flows, "*").size == flows.num_flows

    def test_no_match(self, flows):
        # node 99 does not exist
        assert match_flows(flows, "99 * 1").size == 0

    def test_pattern_object_accepted(self, flows):
        p = parse_pattern("* 1")
        assert match_flows(flows, p).size == flows.num_flows  # all end at 1
