"""Flow grouping / aggregation."""

import numpy as np
import pytest

from repro.errors import FlowError
from repro.flows import (
    enumerate_flows,
    group_by_destination,
    group_by_path_length,
    group_by_patterns,
    group_by_source,
)
from repro.graph import Graph


@pytest.fixture
def setup():
    g = Graph(edge_index=np.array([[0, 1, 1, 2], [1, 0, 2, 1]]), x=np.ones((3, 2)))
    fi = enumerate_flows(g, 2, target=1)
    scores = np.arange(fi.num_flows, dtype=float)
    return fi, scores


class TestGroupBySource:
    def test_partition_sums_to_total(self, setup):
        fi, scores = setup
        groups = group_by_source(fi, scores)
        assert sum(groups.values()) == pytest.approx(scores.sum())

    def test_keys_are_sources(self, setup):
        fi, scores = setup
        groups = group_by_source(fi, scores)
        assert set(groups) == set(int(v) for v in fi.nodes[:, 0])

    def test_mean_reduction(self, setup):
        fi, scores = setup
        groups = group_by_source(fi, scores, reduce="mean")
        for src, value in groups.items():
            members = scores[fi.nodes[:, 0] == src]
            assert value == pytest.approx(members.mean())

    def test_max_reduction(self, setup):
        fi, scores = setup
        groups = group_by_source(fi, scores, reduce="max")
        assert max(groups.values()) == scores.max()

    def test_shape_validation(self, setup):
        fi, _ = setup
        with pytest.raises(FlowError):
            group_by_source(fi, np.zeros(fi.num_flows + 1))

    def test_bad_reduction(self, setup):
        fi, scores = setup
        with pytest.raises(FlowError):
            group_by_source(fi, scores, reduce="median")


class TestGroupByDestination:
    def test_single_destination_for_targeted_flows(self, setup):
        fi, scores = setup
        groups = group_by_destination(fi, scores)
        assert set(groups) == {1}  # all flows end at target 1
        assert groups[1] == pytest.approx(scores.sum())


class TestGroupByPathLength:
    def test_self_loop_flow_length_zero(self, setup):
        fi, scores = setup
        groups = group_by_path_length(fi, scores)
        # the pure self-loop flow 1 -> 1 -> 1 has effective length 0
        pure = [f for f in range(fi.num_flows)
                if (fi.nodes[f] == fi.nodes[f][0]).all()]
        assert len(pure) == 1
        assert 0 in groups
        assert groups[0] == pytest.approx(scores[pure[0]])

    def test_lengths_bounded_by_layers(self, setup):
        fi, scores = setup
        groups = group_by_path_length(fi, scores)
        assert max(groups) <= fi.num_layers


class TestGroupByPatterns:
    def test_named_buckets(self, setup):
        fi, scores = setup
        groups = group_by_patterns(fi, scores, {"from_zero": "0 * 1",
                                                "from_two": "2 * 1"})
        from_zero = scores[fi.nodes[:, 0] == 0].sum()
        assert groups["from_zero"] == pytest.approx(from_zero)

    def test_unmatched_bucket(self, setup):
        fi, scores = setup
        groups = group_by_patterns(fi, scores, {"from_zero": "0 * 1"})
        assert "<unmatched>" in groups
        total = groups["from_zero"] + groups["<unmatched>"]
        assert total == pytest.approx(scores.sum())

    def test_overlapping_buckets_allowed(self, setup):
        fi, scores = setup
        groups = group_by_patterns(fi, scores, {"all": "*", "to_one": "* 1"})
        assert groups["all"] == pytest.approx(scores.sum())
        assert groups["to_one"] == pytest.approx(scores.sum())
        assert groups["<unmatched>"] == 0.0
