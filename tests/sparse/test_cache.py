"""Per-graph sparse-structure caching and identity-based invalidation."""

from __future__ import annotations

import numpy as np

from repro.graph import Graph
from repro.sparse import GraphSparseCache, feature_csr, sparse_cache


def _triangle() -> Graph:
    edge_index = np.array([[0, 1, 2], [1, 2, 0]])
    x = np.eye(3)
    return Graph(edge_index=edge_index, x=x)


class TestGraphSparseCache:
    def test_augmented_structure(self):
        g = _triangle()
        cache = GraphSparseCache(g.edge_index, g.num_nodes)
        assert cache.src.shape == (6,)  # 3 data edges + 3 self-loops
        assert cache.dst_plan.num_rows == 3
        # Augmented in-degree of a directed triangle + self-loops is 2.
        np.testing.assert_allclose(cache.dst_plan.counts, 2.0)
        np.testing.assert_allclose(cache.deg_inv_sqrt, 1.0 / np.sqrt(2.0))
        assert cache.deg_inv_sqrt is cache.deg_inv_sqrt  # lazy, then cached

    def test_sparse_cache_reuses_across_calls(self):
        g = _triangle()
        assert sparse_cache(g) is sparse_cache(g)

    def test_with_edges_gets_fresh_cache(self):
        g = _triangle()
        first = sparse_cache(g)
        sub = g.with_edges(np.array([True, False, True]))
        second = sparse_cache(sub)
        assert second is not first
        assert second.src.shape == (5,)
        # The original graph keeps its own cache.
        assert sparse_cache(g) is first

    def test_replaced_edge_index_invalidates(self):
        g = _triangle()
        first = sparse_cache(g)
        g.edge_index = g.edge_index.copy()  # same content, new array
        assert sparse_cache(g) is not first


class TestFeatureCsr:
    def test_sparse_features_get_memoized_twin(self):
        rng = np.random.default_rng(0)
        x = (rng.random((50, 40)) < 0.02).astype(np.float64)
        twin = feature_csr(x)
        assert twin is not None
        matrix, matrix_t = twin
        np.testing.assert_array_equal(matrix.toarray(), x)
        np.testing.assert_array_equal(matrix_t.toarray(), x.T)
        # Identity-keyed: the same array object returns the same twin.
        assert feature_csr(x)[0] is matrix

    def test_dense_or_nonconforming_features_opt_out(self):
        assert feature_csr(np.ones((4, 4))) is None  # density 1.0
        assert feature_csr(np.zeros((4, 4), dtype=np.float32)) is None
        assert feature_csr(np.zeros(8)) is None  # 1-D
        assert feature_csr([[0.0, 1.0]]) is None  # not an ndarray

    def test_too_dense_decision_is_memoized(self):
        x = np.ones((6, 6))
        assert feature_csr(x) is None
        assert feature_csr(x) is None  # second call hits the () sentinel
