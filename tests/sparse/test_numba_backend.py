"""The optional numba backend: gated registration and kernel parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import (
    NUMBA_AVAILABLE,
    SegmentPlan,
    available_backends,
    kernel,
    use_backend,
)
from repro.sparse.numba_backend import register_numba_backend

requires_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba not installed")


class TestGatedRegistration:
    def test_registration_tracks_importability(self):
        """The backend exists exactly where the dependency does."""
        assert ("numba" in available_backends()) == NUMBA_AVAILABLE

    def test_register_reports_availability(self):
        assert register_numba_backend() == NUMBA_AVAILABLE

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed")
    def test_absent_numba_leaves_registry_untouched(self):
        assert "numba" not in available_backends()


@requires_numba
class TestNumbaKernels:
    @pytest.fixture
    def plan(self):
        rng = np.random.default_rng(3)
        return SegmentPlan(rng.integers(0, 11, size=80), 13)

    def test_scatter_add_matches_scipy(self, plan):
        rng = np.random.default_rng(4)
        values = rng.normal(size=(plan.num_items, 5))
        with use_backend("numba"):
            got = kernel("scatter_add")(plan, values)
        with use_backend("scipy"):
            want = kernel("scatter_add")(plan, values)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_segment_max_matches_scipy(self, plan):
        rng = np.random.default_rng(5)
        values = rng.normal(size=(plan.num_items, 4))
        with use_backend("numba"):
            got = kernel("segment_max")(plan, values)
        with use_backend("scipy"):
            want = kernel("segment_max")(plan, values)
        # Exact: max is order-independent, and empty rows are -inf in both.
        assert np.array_equal(got, want)

    def test_empty_plan(self):
        plan = SegmentPlan(np.array([], dtype=np.int64), 4)
        with use_backend("numba"):
            out = kernel("scatter_add")(plan, np.zeros((0, 2)))
            seg = kernel("segment_max")(plan, np.zeros((0, 2)))
        assert out.shape == (4, 2) and not out.any()
        assert np.all(np.isneginf(seg))

    def test_unimplemented_ops_fall_back_to_scipy(self, plan):
        """The plugin contract: partial backends inherit scipy per-op."""
        import scipy.sparse as sp

        matrix = sp.csr_matrix(np.eye(3))
        with use_backend("numba"):
            out = kernel("spmm")(matrix, np.arange(6.0).reshape(3, 2))
        np.testing.assert_allclose(out, np.arange(6.0).reshape(3, 2))
